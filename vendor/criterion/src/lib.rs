//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion 0.7 API its benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::{iter, iter_with_setup}`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it reports min/median/mean wall-clock time per
//! iteration over a fixed number of samples — enough to track the perf
//! trajectory in EXPERIMENTS.md.

use std::time::{Duration, Instant};

pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    // One warm-up sample, then the measured ones.
    for i in 0..=sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if i > 0 && b.iters > 0 {
            samples.push(b.elapsed / b.iters as u32);
        }
    }
    samples.sort_unstable();
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` once per sample; the result is passed to
    /// `black_box` so the optimizer cannot discard the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }

    /// Like `iter`, but setup cost is excluded from the measurement.
    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Re-export matching criterion's public `black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("add", |b| b.iter(|| count += 1));
        group.bench_function("setup", |b| b.iter_with_setup(|| 21u64, |x| x * 2));
        group.finish();
        assert!(count >= 5);
    }
}
