//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a deterministic subset of the proptest 1.x API:
//! strategies (`any`, ranges, tuples, `prop::collection::vec`, regex-ish
//! string patterns, `prop_oneof!`, `Just`, `prop_map`), the `proptest!`
//! macro, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! shim: no shrinking (a failing case reports its inputs but is not
//! minimized), and the RNG is seeded from the test name so runs are
//! reproducible across invocations.

pub mod test_runner {
    /// Subset of proptest's config: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; try another.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic splitmix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Seed derived from the test's name: stable across runs, distinct
        /// across tests.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values. Unlike real proptest there is no
    /// value tree: generation is direct and shrinking is absent.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    // Strategies are used by shared reference inside the proptest! macro.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Bounded rejection sampling; a chronically unsatisfiable
            // filter is a bug in the test, so panic with its reason.
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason);
        }
    }

    /// Type-erased strategy; the arms of `prop_oneof!` are boxed to a
    /// common type. `Rc` so the whole union stays cloneable.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// String literals act as generators for the regex-ish subset the
    /// tests use (character classes with `{m,n}` repetition).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Full-domain strategy for a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub trait Arbitrary: Sized {
        fn generate_any(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate_any(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn generate_any(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + (rng.below(0x5F)) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Element {
        /// A set of candidate characters with a repetition range.
        Class {
            chars: Vec<char>,
            min: usize,
            max: usize,
        },
    }

    /// Generate a string matching a small regex subset: literal characters,
    /// `[...]` classes (with `a-z` ranges and `\n`-style escapes), each
    /// optionally followed by `{m}` or `{m,n}`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let elements = parse(pattern);
        let mut out = String::new();
        for Element::Class { chars, min, max } in &elements {
            let span = (max - min) as u64 + 1;
            let n = min + rng.below(span) as usize;
            for _ in 0..n {
                let pick = rng.below(chars.len() as u64) as usize;
                out.push(chars[pick]);
            }
        }
        out
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut elements = Vec::new();
        let mut it = pattern.chars().peekable();
        while let Some(c) = it.next() {
            let chars = match c {
                '[' => parse_class(&mut it, pattern),
                '\\' => vec![unescape(it.next().unwrap_or('\\'))],
                '.' => (' '..='~').collect(),
                other => vec![other],
            };
            assert!(!chars.is_empty(), "empty character class in {pattern:?}");
            let (min, max) = parse_repeat(&mut it, pattern);
            elements.push(Element::Class { chars, min, max });
        }
        elements
    }

    fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
        let mut chars = Vec::new();
        loop {
            let c = match it.next() {
                Some(']') => break,
                Some('\\') => unescape(it.next().unwrap_or('\\')),
                Some(c) => c,
                None => panic!("unterminated character class in {pattern:?}"),
            };
            // A dash between two characters denotes a range.
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => chars.push(c),
                    Some(_) => {
                        it.next();
                        let hi = match it.next() {
                            Some('\\') => unescape(it.next().unwrap_or('\\')),
                            Some(h) => h,
                            None => panic!("dangling range in {pattern:?}"),
                        };
                        assert!(c <= hi, "inverted range in {pattern:?}");
                        chars.extend(c..=hi);
                    }
                }
            } else {
                chars.push(c);
            }
        }
        chars
    }

    fn parse_repeat(
        it: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        if it.peek() != Some(&'{') {
            return match it.peek() {
                Some(&'*') => {
                    it.next();
                    (0, 8)
                }
                Some(&'+') => {
                    it.next();
                    (1, 8)
                }
                Some(&'?') => {
                    it.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
        }
        it.next();
        let mut spec = String::new();
        for c in it.by_ref() {
            if c == '}' {
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted repeat in {pattern:?}");
                return (min, max);
            }
            spec.push(c);
        }
        panic!("unterminated repetition in {pattern:?}");
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` namespace.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(20).saturating_add(1000),
                            "proptest `{}`: too many rejected cases ({} passed)",
                            stringify!($name),
                            passed,
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` failed after {} cases: {}", stringify!($name), passed, msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::new(5);
        for _ in 0..200 {
            let s = crate::string::generate_matching("[A-Z][a-z0-9]{0,3}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 4, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
            let t = crate::string::generate_matching("[ -~\\n]{0,120}", &mut rng);
            assert!(t.len() <= 120);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_work(
            x in 3u8..9,
            v in prop::collection::vec(any::<u8>(), 0..10),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 10);
            prop_assume!(flag || !flag);
        }

        #[test]
        fn oneof_respects_arms(choice in prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
        }

        #[test]
        fn unweighted_oneof_works(choice in prop_oneof![Just(true), any::<bool>()]) {
            prop_assert!(choice || !choice);
        }
    }
}
