//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the rand 0.9 API it actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], integer
//! [`Rng::random_range`], and [`seq::SliceRandom::shuffle`]. Generation is
//! fully deterministic per seed (splitmix64), which is all the workload
//! generators require — they assert seed-stability, not any particular
//! stream.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` convenience constructor is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between(rng: &mut dyn RngCore, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(rng: &mut dyn RngCore, lo: Self, hi_inclusive: Self) -> Self {
                debug_assert!(lo <= hi_inclusive, "empty sample range");
                // Span fits in u128 for every supported integer width; the
                // modulo bias is irrelevant for test workload generation.
                let span = (hi_inclusive as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

/// Helper so half-open ranges can be converted to inclusive bounds.
pub trait One {
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}
impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generation interface.
pub trait Rng: RngCore + Sized {
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        T::sample_between(self, lo, hi)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Fisher–Yates shuffle, matching the call shape of rand's trait.
    pub trait SliceRandom {
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
