//! Heap files: unordered collections of variable-length records built from
//! slotted pages, the storage representation of every base relation,
//! dictionary relation and runtime temporary in the testbed.

use crate::buffer::BufferPool;
use crate::catalog::DbError;
use crate::disk::{Disk, FileId, PageId};
use crate::page::SlottedPage;

/// Stable address of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    pub page: PageId,
    pub slot: u16,
}

/// A heap file handle. The file's pages live on the [`Disk`]; the handle
/// carries only bookkeeping (insert hint and live-record count).
#[derive(Debug, Clone)]
pub struct HeapFile {
    file: FileId,
    /// Page most likely to have room for the next insert.
    insert_hint: u32,
    tuple_count: u64,
}

impl HeapFile {
    /// Create a fresh heap file on `disk`.
    pub fn create(disk: &mut Disk) -> HeapFile {
        HeapFile {
            file: disk.create_file(),
            insert_hint: 0,
            tuple_count: 0,
        }
    }

    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of live records.
    pub fn tuple_count(&self) -> u64 {
        self.tuple_count
    }

    /// Drop the underlying file, releasing all pages and discarding any
    /// cached frames.
    pub fn destroy(self, disk: &mut Disk, pool: &mut BufferPool) {
        pool.discard_file(self.file);
        disk.drop_file(self.file);
    }

    /// Insert a record, returning its id. Tries the hint page first, then a
    /// fresh page; records must fit on one page.
    pub fn insert(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        payload: &[u8],
    ) -> Result<RecordId, DbError> {
        let page_count = disk.page_count(self.file);
        if self.insert_hint < page_count {
            let pid = PageId(self.insert_hint);
            let slot = pool.with_page(disk, self.file, pid, true, |buf| {
                SlottedPage::new(buf).insert(payload)
            })?;
            if let Some(slot) = slot {
                self.tuple_count += 1;
                return Ok(RecordId { page: pid, slot });
            }
        }
        let pid = disk.allocate_page(self.file)?;
        self.insert_hint = pid.0;
        let slot = pool.with_page(disk, self.file, pid, true, |buf| {
            SlottedPage::init(buf).insert(payload)
        })?;
        let slot = slot
            .unwrap_or_else(|| panic!("record of {} bytes exceeds page capacity", payload.len()));
        self.tuple_count += 1;
        Ok(RecordId { page: pid, slot })
    }

    /// Copy out the payload of `rid`, or `None` if it was deleted.
    pub fn get(
        &self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        rid: RecordId,
    ) -> Result<Option<Vec<u8>>, DbError> {
        if rid.page.0 >= disk.page_count(self.file) {
            return Ok(None);
        }
        pool.with_page(disk, self.file, rid.page, false, |buf| {
            SlottedPage::new(buf).get(rid.slot).map(<[u8]>::to_vec)
        })
    }

    /// Delete `rid`; returns whether it was live.
    pub fn delete(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        rid: RecordId,
    ) -> Result<bool, DbError> {
        if rid.page.0 >= disk.page_count(self.file) {
            return Ok(false);
        }
        let deleted = pool.with_page(disk, self.file, rid.page, true, |buf| {
            SlottedPage::new(buf).delete(rid.slot)
        })?;
        if deleted {
            self.tuple_count -= 1;
            // Deleted space is reclaimable only via new pages, but allow the
            // hint to revisit this page for small records.
            self.insert_hint = self.insert_hint.min(rid.page.0);
        }
        Ok(deleted)
    }

    /// Recount live records and reset the insert hint by scanning the
    /// pages. The handle's bookkeeping is volatile state: after crash
    /// recovery rewrites pages underneath it, the counts must be rebuilt
    /// from what is actually on disk.
    pub fn rebuild_stats(&mut self, disk: &mut Disk, pool: &mut BufferPool) -> Result<(), DbError> {
        let pages = disk.page_count(self.file);
        let mut count: u64 = 0;
        for p in 0..pages {
            count += pool.with_page_cold(disk, self.file, PageId(p), false, |buf| {
                SlottedPage::new(buf).live_slots().len() as u64
            })?;
        }
        self.tuple_count = count;
        self.insert_hint = pages.saturating_sub(1);
        Ok(())
    }

    /// Discard every record in one step by truncating the underlying file
    /// (and dropping its cached frames), keeping the file id so the table
    /// can be refilled without catalog churn. Not WAL-logged — callers must
    /// not use this inside a transaction.
    pub fn clear(&mut self, disk: &mut Disk, pool: &mut BufferPool) -> Result<(), DbError> {
        pool.discard_file(self.file);
        disk.truncate_file(self.file)?;
        self.insert_hint = 0;
        self.tuple_count = 0;
        Ok(())
    }

    /// Start a full scan.
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            file: self.file,
            page: 0,
            slot: 0,
        }
    }
}

/// Cursor over all live records of a heap file, in (page, slot) order.
pub struct HeapScan {
    file: FileId,
    page: u32,
    slot: u16,
}

impl HeapScan {
    /// Advance to the next live record, copying out its payload.
    pub fn next(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
    ) -> Result<Option<(RecordId, Vec<u8>)>, DbError> {
        loop {
            if self.page >= disk.page_count(self.file) {
                return Ok(None);
            }
            let pid = PageId(self.page);
            let start_slot = self.slot;
            // Scans fault pages in cold (see [`BufferPool::with_page_cold`]):
            // each page is visited once, so it must not displace the pool's
            // hot working set on its way through.
            let found = pool.with_page_cold(disk, self.file, pid, false, |buf| {
                let page = SlottedPage::new(buf);
                let count = page.slot_count();
                let mut s = start_slot;
                while s < count {
                    if let Some(payload) = page.get(s) {
                        return Some((s, payload.to_vec()));
                    }
                    s += 1;
                }
                None
            })?;
            match found {
                Some((slot, payload)) => {
                    self.slot = slot + 1;
                    return Ok(Some((RecordId { page: pid, slot }, payload)));
                }
                None => {
                    self.page += 1;
                    self.slot = 0;
                }
            }
        }
    }

    /// Advance by up to `max` live records in one step, copying a whole
    /// page's records per buffer-pool visit instead of re-latching the
    /// page once per record. Returns an empty vector at end of file.
    /// Records come out in the same (page, slot) order as repeated
    /// [`HeapScan::next`] calls — batching changes the latch cadence,
    /// never the sequence.
    pub fn next_batch(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        max: usize,
    ) -> Result<Vec<(RecordId, Vec<u8>)>, DbError> {
        let mut out = Vec::new();
        while out.len() < max {
            if self.page >= disk.page_count(self.file) {
                break;
            }
            let pid = PageId(self.page);
            let start_slot = self.slot;
            let room = max - out.len();
            let (taken, exhausted) = pool.with_page_cold(disk, self.file, pid, false, |buf| {
                let page = SlottedPage::new(buf);
                let count = page.slot_count();
                let mut batch = Vec::new();
                let mut s = start_slot;
                while s < count && batch.len() < room {
                    if let Some(payload) = page.get(s) {
                        batch.push((s, payload.to_vec()));
                    }
                    s += 1;
                }
                (batch, s >= count)
            })?;
            let last = taken.last().map(|(s, _)| *s);
            out.extend(
                taken
                    .into_iter()
                    .map(|(slot, payload)| (RecordId { page: pid, slot }, payload)),
            );
            if exhausted {
                self.page += 1;
                self.slot = 0;
            } else {
                // Stopped mid-page because the batch filled.
                self.slot = last.map_or(start_slot, |s| s + 1);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;

    fn setup() -> (Disk, BufferPool) {
        (Disk::new(), BufferPool::new(8))
    }

    fn collect_all(heap: &HeapFile, disk: &mut Disk, pool: &mut BufferPool) -> Vec<Vec<u8>> {
        let mut scan = heap.scan();
        let mut out = Vec::new();
        while let Some((_, payload)) = scan.next(disk, pool).unwrap() {
            out.push(payload);
        }
        out
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        let rid = heap.insert(&mut disk, &mut pool, b"tuple-1").unwrap();
        assert_eq!(
            heap.get(&mut disk, &mut pool, rid).unwrap(),
            Some(b"tuple-1".to_vec())
        );
        assert_eq!(heap.tuple_count(), 1);
    }

    #[test]
    fn scan_sees_inserts_across_many_pages() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        let payload = vec![7u8; 500];
        let n = 100; // ~13 pages at 500B + slot overhead
        for _ in 0..n {
            heap.insert(&mut disk, &mut pool, &payload).unwrap();
        }
        assert!(disk.page_count(heap.file_id()) > 1);
        let all = collect_all(&heap, &mut disk, &mut pool);
        assert_eq!(all.len(), n);
        assert!(all.iter().all(|p| *p == payload));
    }

    #[test]
    fn delete_removes_from_scan_and_count() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        let r0 = heap.insert(&mut disk, &mut pool, b"a").unwrap();
        let _r1 = heap.insert(&mut disk, &mut pool, b"b").unwrap();
        assert!(heap.delete(&mut disk, &mut pool, r0).unwrap());
        assert!(!heap.delete(&mut disk, &mut pool, r0).unwrap());
        assert_eq!(heap.tuple_count(), 1);
        assert_eq!(
            collect_all(&heap, &mut disk, &mut pool),
            vec![b"b".to_vec()]
        );
        assert_eq!(heap.get(&mut disk, &mut pool, r0).unwrap(), None);
    }

    #[test]
    fn scan_of_empty_heap_is_empty() {
        let (mut disk, mut pool) = setup();
        let heap = HeapFile::create(&mut disk);
        assert!(collect_all(&heap, &mut disk, &mut pool).is_empty());
    }

    #[test]
    fn clear_empties_heap_but_keeps_file() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        let payload = vec![9u8; 600];
        for _ in 0..50 {
            heap.insert(&mut disk, &mut pool, &payload).unwrap();
        }
        assert!(disk.page_count(heap.file_id()) > 1);
        heap.clear(&mut disk, &mut pool).unwrap();
        assert_eq!(heap.tuple_count(), 0);
        assert_eq!(disk.page_count(heap.file_id()), 0);
        assert!(disk.file_exists(heap.file_id()));
        assert!(collect_all(&heap, &mut disk, &mut pool).is_empty());
        // The heap is immediately reusable.
        heap.insert(&mut disk, &mut pool, b"fresh").unwrap();
        assert_eq!(
            collect_all(&heap, &mut disk, &mut pool),
            vec![b"fresh".to_vec()]
        );
    }

    #[test]
    fn destroy_releases_pages() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        heap.insert(&mut disk, &mut pool, b"x").unwrap();
        let fid = heap.file_id();
        heap.destroy(&mut disk, &mut pool);
        assert!(!disk.file_exists(fid));
    }

    #[test]
    fn batch_scan_matches_record_scan() {
        let (mut disk, mut pool) = setup();
        let mut heap = HeapFile::create(&mut disk);
        for i in 0..500u32 {
            let payload = vec![(i % 251) as u8; 20 + (i as usize * 13) % 300];
            heap.insert(&mut disk, &mut pool, &payload).unwrap();
        }
        // Knock holes in the file so batches skip dead slots.
        let mut scan = heap.scan();
        let mut rids = Vec::new();
        while let Some((rid, _)) = scan.next(&mut disk, &mut pool).unwrap() {
            rids.push(rid);
        }
        for rid in rids.iter().step_by(7) {
            heap.delete(&mut disk, &mut pool, *rid).unwrap();
        }
        let serial = collect_all(&heap, &mut disk, &mut pool);
        for batch_size in [1, 3, 64, 10_000] {
            let mut scan = heap.scan();
            let mut batched = Vec::new();
            loop {
                let b = scan.next_batch(&mut disk, &mut pool, batch_size).unwrap();
                if b.is_empty() {
                    break;
                }
                batched.extend(b.into_iter().map(|(_, p)| p));
            }
            assert_eq!(batched, serial, "batch_size={batch_size}");
        }
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // Pool smaller than the file forces eviction during scan.
        let mut disk = Disk::new();
        let mut pool = BufferPool::new(2);
        let mut heap = HeapFile::create(&mut disk);
        let payload = vec![3u8; 1000];
        for _ in 0..20 {
            heap.insert(&mut disk, &mut pool, &payload).unwrap();
        }
        let all = collect_all(&heap, &mut disk, &mut pool);
        assert_eq!(all.len(), 20);
        assert!(pool.stats().evictions > 0);
    }
}
