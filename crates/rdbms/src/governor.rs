//! Per-statement execution governor: deadline, cooperative cancellation,
//! and row/memory budgets.
//!
//! A [`QueryGovernor`] is created by the engine for each statement it
//! executes and handed to the executor by reference. Operators call
//! [`QueryGovernor::check`] at batch boundaries (roughly every
//! [`GOVERNOR_CHECK_INTERVAL`] rows) and [`QueryGovernor::charge_rows`] /
//! [`QueryGovernor::charge_bytes`] as they materialize intermediate
//! results. All state is atomic, so a single governor can be shared by
//! the partitioned-operator worker threads without locking: the first
//! worker to observe a breach returns an error, the scoped-thread join
//! propagates it in chunk order, and no partial state escapes.
//!
//! Cancellation is a plain `Arc<AtomicBool>` flag. The engine hands out
//! clones (see `Engine::cancel_handle`) so another thread — or a
//! fault-injection hook — can flip it while a statement runs; the flag
//! is reset when the next statement begins.

use crate::catalog::DbError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many rows an operator may process between governor checks.
/// Small enough that a breach is observed within microseconds, large
/// enough that the atomic loads never show up in a profile.
pub const GOVERNOR_CHECK_INTERVAL: usize = 256;

/// Which budget a statement ran over. Carried inside
/// [`DbError::Budget`] so callers can distinguish "the user hit ^C"
/// from "the optimizer picked a plan that materializes too much".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The cooperative cancellation flag was set.
    Canceled,
    /// The wall-clock deadline passed.
    Deadline,
    /// More rows were produced/processed than the row budget allows.
    Rows,
    /// Materialized intermediate state exceeded the byte budget.
    Memory,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetKind::Canceled => write!(f, "canceled"),
            BudgetKind::Deadline => write!(f, "deadline"),
            BudgetKind::Rows => write!(f, "rows"),
            BudgetKind::Memory => write!(f, "memory"),
        }
    }
}

/// Details of a budget breach, embedded in [`DbError::Budget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetBreach {
    pub kind: BudgetKind,
    /// The configured limit (0 for cancellation/deadline, where no
    /// numeric limit applies).
    pub limit: u64,
    /// How much was consumed when the breach was observed.
    pub used: u64,
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            BudgetKind::Canceled => write!(f, "statement canceled"),
            BudgetKind::Deadline => write!(f, "statement deadline exceeded"),
            BudgetKind::Rows => write!(
                f,
                "row budget exceeded: {} rows processed, limit {}",
                self.used, self.limit
            ),
            BudgetKind::Memory => write!(
                f,
                "memory budget exceeded: {} bytes materialized, limit {}",
                self.used, self.limit
            ),
        }
    }
}

/// Engine-level execution limits applied to every statement. All fields
/// default to "unlimited"; `statement_deadline` is an absolute instant
/// (the engine computes it from a per-statement duration or from the
/// knowledge layer's per-evaluation deadline, whichever is sooner).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecLimits {
    pub deadline: Option<Instant>,
    pub max_rows: Option<u64>,
    pub max_bytes: Option<u64>,
}

/// The per-statement governor. Created fresh for each statement so row
/// and byte counters start at zero; the cancellation flag is shared
/// with the engine (and through `Engine::cancel_handle` with the
/// outside world).
#[derive(Debug)]
pub struct QueryGovernor {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    max_rows: Option<u64>,
    max_bytes: Option<u64>,
    rows: AtomicU64,
    bytes: AtomicU64,
}

impl QueryGovernor {
    pub fn new(limits: ExecLimits, cancel: Arc<AtomicBool>) -> QueryGovernor {
        QueryGovernor {
            deadline: limits.deadline,
            cancel,
            max_rows: limits.max_rows,
            max_bytes: limits.max_bytes,
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// An unlimited governor with a private cancellation flag. Used by
    /// code paths that need a governor value but no policy (tests,
    /// internal maintenance statements).
    pub fn unlimited() -> QueryGovernor {
        QueryGovernor::new(ExecLimits::default(), Arc::new(AtomicBool::new(false)))
    }

    /// Cheap cooperative check: cancellation flag, then deadline, then
    /// accumulated budgets. Called at operator batch boundaries and
    /// inside partitioned workers.
    pub fn check(&self) -> Result<(), DbError> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(DbError::Budget(BudgetBreach {
                kind: BudgetKind::Canceled,
                limit: 0,
                used: 0,
            }));
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(DbError::Budget(BudgetBreach {
                    kind: BudgetKind::Deadline,
                    limit: 0,
                    used: 0,
                }));
            }
        }
        if let Some(max) = self.max_rows {
            let used = self.rows.load(Ordering::Relaxed);
            if used > max {
                return Err(DbError::Budget(BudgetBreach {
                    kind: BudgetKind::Rows,
                    limit: max,
                    used,
                }));
            }
        }
        if let Some(max) = self.max_bytes {
            let used = self.bytes.load(Ordering::Relaxed);
            if used > max {
                return Err(DbError::Budget(BudgetBreach {
                    kind: BudgetKind::Memory,
                    limit: max,
                    used,
                }));
            }
        }
        Ok(())
    }

    /// Charge `n` processed/produced rows against the row budget and
    /// immediately check it. Returns the breach as an error so callers
    /// can `?` straight through.
    pub fn charge_rows(&self, n: u64) -> Result<(), DbError> {
        if n > 0 {
            self.rows.fetch_add(n, Ordering::Relaxed);
        }
        if let Some(max) = self.max_rows {
            let used = self.rows.load(Ordering::Relaxed);
            if used > max {
                return Err(DbError::Budget(BudgetBreach {
                    kind: BudgetKind::Rows,
                    limit: max,
                    used,
                }));
            }
        }
        Ok(())
    }

    /// Charge `n` bytes of materialized intermediate state (hash-join
    /// build sides, sort buffers) against the memory budget.
    pub fn charge_bytes(&self, n: u64) -> Result<(), DbError> {
        if n > 0 {
            self.bytes.fetch_add(n, Ordering::Relaxed);
        }
        if let Some(max) = self.max_bytes {
            let used = self.bytes.load(Ordering::Relaxed);
            if used > max {
                return Err(DbError::Budget(BudgetBreach {
                    kind: BudgetKind::Memory,
                    limit: max,
                    used,
                }));
            }
        }
        Ok(())
    }

    /// How many bytes of the memory budget remain unclaimed, or `None`
    /// when no byte budget is set. The spill machinery uses this to
    /// decide whether a hash build (or sort buffer) still fits in
    /// memory and, when it does not, how large each spill partition may
    /// be while staying under the budget.
    pub fn bytes_remaining(&self) -> Option<u64> {
        self.max_bytes
            .map(|max| max.saturating_sub(self.bytes.load(Ordering::Relaxed)))
    }

    /// Rows charged so far (for stats / partial-progress reporting).
    pub fn rows_used(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// Bytes charged so far.
    pub fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_breaches() {
        let g = QueryGovernor::unlimited();
        g.check().unwrap();
        g.charge_rows(1_000_000).unwrap();
        g.charge_bytes(1 << 30).unwrap();
        g.check().unwrap();
    }

    #[test]
    fn row_budget_breaches() {
        let g = QueryGovernor::new(
            ExecLimits {
                max_rows: Some(100),
                ..ExecLimits::default()
            },
            Arc::new(AtomicBool::new(false)),
        );
        g.charge_rows(100).unwrap();
        let err = g.charge_rows(1).unwrap_err();
        match err {
            DbError::Budget(b) => {
                assert_eq!(b.kind, BudgetKind::Rows);
                assert_eq!(b.limit, 100);
                assert_eq!(b.used, 101);
            }
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_flag_observed() {
        let cancel = Arc::new(AtomicBool::new(false));
        let g = QueryGovernor::new(ExecLimits::default(), cancel.clone());
        g.check().unwrap();
        cancel.store(true, Ordering::Relaxed);
        match g.check().unwrap_err() {
            DbError::Budget(b) => assert_eq!(b.kind, BudgetKind::Canceled),
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn deadline_breaches() {
        let g = QueryGovernor::new(
            ExecLimits {
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                ..ExecLimits::default()
            },
            Arc::new(AtomicBool::new(false)),
        );
        match g.check().unwrap_err() {
            DbError::Budget(b) => assert_eq!(b.kind, BudgetKind::Deadline),
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn memory_budget_breaches() {
        let g = QueryGovernor::new(
            ExecLimits {
                max_bytes: Some(1024),
                ..ExecLimits::default()
            },
            Arc::new(AtomicBool::new(false)),
        );
        g.charge_bytes(1024).unwrap();
        match g.charge_bytes(1).unwrap_err() {
            DbError::Budget(b) => assert_eq!(b.kind, BudgetKind::Memory),
            other => panic!("expected Budget, got {other:?}"),
        }
    }
}
