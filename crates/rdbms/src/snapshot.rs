//! Database snapshots: save the catalog and all (non-temporary) table
//! contents to a file and load them back. Rows are re-inserted on load, so
//! heap files compact and indexes rebuild — a snapshot is also a
//! defragmentation pass.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic   "DKBMSNAP"            8 bytes
//! version u32                   currently 2 (v2 added the index kind byte)
//! tables  u32
//! per table:
//!   name      u32 len + bytes
//!   columns   u32 count, per column: u8 type tag, u32 len + name bytes
//!   indexes   u32 count, per index: u32 len + name bytes, u8 ordered,
//!             u32 key-col count + u32 positions
//!   rows      u64 count, per row: u32 payload len + tuple bytes
//! ```

use crate::catalog::DbError;
use crate::engine::Engine;
use crate::schema::{deserialize_tuple, serialize_tuple};
use crate::value::ColType;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DKBMSNAP";
const VERSION: u32 = 2;

fn io_err(e: io::Error) -> DbError {
    DbError::Io(format!("snapshot: {e}"))
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| DbError::Parse("snapshot truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8], DbError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, DbError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| DbError::Parse("snapshot: invalid UTF-8".into()))
    }
}

impl Engine {
    /// Serialize every non-temporary table (schema, indexes, rows) into a
    /// byte buffer.
    pub fn snapshot_bytes(&mut self) -> Result<Vec<u8>, DbError> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());

        let names: Vec<String> = self.table_names();
        let mut persisted = Vec::new();
        for name in names {
            let (schema, is_temp, indexes) = self.table_info(&name)?;
            if is_temp {
                continue;
            }
            persisted.push((name, schema, indexes));
        }
        out.extend_from_slice(&(persisted.len() as u32).to_le_bytes());

        for (name, schema, indexes) in persisted {
            put_bytes(&mut out, name.as_bytes());
            out.extend_from_slice(&(schema.arity() as u32).to_le_bytes());
            for col in schema.columns() {
                out.push(match col.ty {
                    ColType::Int => 0,
                    ColType::Str => 1,
                });
                put_bytes(&mut out, col.name.as_bytes());
            }
            out.extend_from_slice(&(indexes.len() as u32).to_le_bytes());
            for (iname, key_cols, ordered) in &indexes {
                put_bytes(&mut out, iname.as_bytes());
                out.push(u8::from(*ordered));
                out.extend_from_slice(&(key_cols.len() as u32).to_le_bytes());
                for &k in key_cols {
                    out.extend_from_slice(&(k as u32).to_le_bytes());
                }
            }
            let rows = self.scan_all(&name)?;
            out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
            for row in rows {
                put_bytes(&mut out, &serialize_tuple(&row));
            }
        }
        Ok(out)
    }

    /// Write a snapshot to `path` atomically: the bytes go to a sibling
    /// temp file first and replace the destination with a rename, so a
    /// failed write can never destroy the previous good snapshot.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), DbError> {
        let path = path.as_ref();
        let bytes = self.snapshot_bytes()?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(&bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(e)
        })?;
        Ok(())
    }

    /// Build a fresh engine from snapshot bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Engine, DbError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(DbError::Parse("not a dkbms snapshot".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(DbError::Parse(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let mut engine = Engine::new();
        let n_tables = r.u32()?;
        for _ in 0..n_tables {
            let name = r.string()?;
            let n_cols = r.u32()?;
            let mut cols = Vec::with_capacity(n_cols as usize);
            for _ in 0..n_cols {
                let ty = match r.u8()? {
                    0 => ColType::Int,
                    1 => ColType::Str,
                    other => return Err(DbError::Parse(format!("snapshot: bad type tag {other}"))),
                };
                cols.push((r.string()?, ty));
            }
            let col_sql: Vec<String> = cols.iter().map(|(n, t)| format!("{n} {t}")).collect();
            engine.execute(&format!("CREATE TABLE {name} ({})", col_sql.join(", ")))?;

            let n_indexes = r.u32()?;
            let mut index_specs = Vec::with_capacity(n_indexes as usize);
            for _ in 0..n_indexes {
                let iname = r.string()?;
                let ordered = r.u8()? != 0;
                let n_keys = r.u32()?;
                let mut keys = Vec::with_capacity(n_keys as usize);
                for _ in 0..n_keys {
                    let pos = r.u32()? as usize;
                    let col = cols
                        .get(pos)
                        .map(|(n, _)| n.clone())
                        .ok_or_else(|| DbError::Parse("snapshot: bad key col".into()))?;
                    keys.push(col);
                }
                index_specs.push((iname, keys, ordered));
            }

            let n_rows = r.u64()?;
            let mut rows = Vec::with_capacity(n_rows.min(1 << 20) as usize);
            for _ in 0..n_rows {
                let payload = r.bytes()?;
                rows.push(
                    deserialize_tuple(payload)
                        .ok_or_else(|| DbError::Parse("snapshot: bad tuple".into()))?,
                );
            }
            engine.insert_rows(&name, rows)?;
            // Indexes created after load backfill in one pass.
            for (iname, keys, ordered) in index_specs {
                let kind = if ordered { "ORDERED INDEX" } else { "INDEX" };
                engine.execute(&format!(
                    "CREATE {kind} {iname} ON {name} ({})",
                    keys.join(", ")
                ))?;
            }
        }
        if r.pos != bytes.len() {
            return Err(DbError::Parse("snapshot: trailing bytes".into()));
        }
        Ok(engine)
    }

    /// Load a snapshot from `path`.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Engine, DbError> {
        let mut f = std::fs::File::open(path).map_err(io_err)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes).map_err(io_err)?;
        Engine::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn populated_engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE parent (par char, child char)")
            .unwrap();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        e.execute("CREATE TABLE nums (n integer)").unwrap();
        e.execute("INSERT INTO parent VALUES ('adam','bob'), ('bob','cay'), ('it''s','x')")
            .unwrap();
        e.execute("INSERT INTO nums VALUES (1), (-5), (9000000000)")
            .unwrap();
        e.execute("CREATE TEMP TABLE scratch (x integer)").unwrap();
        e
    }

    #[test]
    fn snapshot_roundtrip_preserves_data_and_indexes() {
        let mut e = populated_engine();
        let bytes = e.snapshot_bytes().unwrap();
        let mut restored = Engine::from_snapshot_bytes(&bytes).unwrap();

        assert_eq!(restored.table_len("parent").unwrap(), 3);
        assert_eq!(restored.table_len("nums").unwrap(), 3);
        assert!(!restored.has_table("scratch"), "temp tables not persisted");

        // Data survives, including escapes and big integers.
        let rs = restored
            .execute("SELECT child FROM parent WHERE par = 'it''s'")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("x")]]);
        let rs = restored.execute("SELECT n FROM nums ORDER BY n").unwrap();
        assert_eq!(rs.rows[2], vec![Value::Int(9000000000)]);

        // The index exists and is used (no scan for the point query).
        let before = restored.stats().exec.tuples_scanned;
        restored
            .execute("SELECT * FROM parent WHERE par = 'adam'")
            .unwrap();
        assert_eq!(restored.stats().exec.tuples_scanned, before);
    }

    #[test]
    fn snapshot_roundtrip_through_a_file() {
        let mut e = populated_engine();
        let path =
            std::env::temp_dir().join(format!("dkbms_snapshot_test_{}.bin", std::process::id()));
        e.save_snapshot(&path).unwrap();
        let mut restored = Engine::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            restored
                .execute("SELECT COUNT(*) FROM parent")
                .unwrap()
                .scalar_int(),
            Some(3)
        );
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let mut e = populated_engine();
        let bytes = e.snapshot_bytes().unwrap();
        // Bad magic.
        assert!(Engine::from_snapshot_bytes(b"NOTASNAP").is_err());
        // Truncations at every prefix must error, never panic.
        for cut in 0..bytes.len().min(200) {
            assert!(Engine::from_snapshot_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Engine::from_snapshot_bytes(&extended).is_err());
    }

    #[test]
    fn empty_engine_roundtrips() {
        let mut e = Engine::new();
        let bytes = e.snapshot_bytes().unwrap();
        let restored = Engine::from_snapshot_bytes(&bytes).unwrap();
        assert!(restored.table_names().is_empty());
    }
}
