//! Buffer pool with clock (second-chance) replacement.
//!
//! All page access from the engine goes through [`BufferPool::with_page`],
//! which faults the page in from the [`Disk`] on a miss, possibly evicting
//! (and writing back) a dirty victim. Hit/miss counters let experiments
//! separate logical from physical page traffic.
//!
//! The pool is deliberately single-writer: `with_page` takes `&mut self`
//! and `&mut Disk`, so all page I/O happens on the thread driving the
//! executor. The partitioned parallel operators (see `exec.rs`) respect
//! this by gathering raw payloads serially through the pool and handing
//! worker threads only materialized rows and read-only index directories —
//! workers never fault pages, so no frame latching is needed and WAL
//! writes stay serialized.

use crate::catalog::DbError;
use crate::disk::{Disk, FileId, PageId};
use crate::page::PAGE_SIZE;
use std::collections::{HashMap, VecDeque};

/// Default number of frames. 256 frames x 4 KiB = 1 MiB of buffer, small
/// enough that the larger experiment relations actually overflow it and
/// exercise eviction.
pub const DEFAULT_POOL_FRAMES: usize = 256;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

impl BufferStats {
    /// Fraction of page requests served from the pool, in [0, 1];
    /// 1.0 when no request has been made yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    key: Option<(FileId, PageId)>,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
    /// Faulted in by scan traffic and never touched since. Cold frames
    /// are the preferred eviction victims (see [`BufferPool::find_victim`]),
    /// so a sequential scan recycles its own frames instead of sweeping
    /// the clock — and clearing the reference bits — of the hot set.
    cold: bool,
}

/// A fixed-capacity page cache over the simulated disk.
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    clock_hand: usize,
    /// Frames faulted in cold, oldest first. Entries go stale when the
    /// frame is promoted or evicted; `find_victim` validates on pop.
    cold_queue: VecDeque<usize>,
    stats: BufferStats,
}

impl BufferPool {
    pub fn new(capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            frames: (0..capacity)
                .map(|_| Frame {
                    key: None,
                    data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                    dirty: false,
                    referenced: false,
                    cold: false,
                })
                .collect(),
            map: HashMap::new(),
            clock_hand: 0,
            cold_queue: VecDeque::new(),
            stats: BufferStats::default(),
        }
    }

    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Run `f` over the cached bytes of `(file, page)`, faulting the page in
    /// if necessary. If `mark_dirty` is set the frame is flagged for
    /// write-back on eviction or flush.
    pub fn with_page<R>(
        &mut self,
        disk: &mut Disk,
        file: FileId,
        page: PageId,
        mark_dirty: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, DbError> {
        self.with_page_at(disk, file, page, mark_dirty, true, f)
    }

    /// [`BufferPool::with_page`] for scan traffic: a miss faults the page
    /// in *cold* (reference bit clear), so the next clock sweep reclaims
    /// it unless something touches it again first. Large sequential scans
    /// routed through this path recycle a handful of frames instead of
    /// flushing the pool's hot working set.
    pub fn with_page_cold<R>(
        &mut self,
        disk: &mut Disk,
        file: FileId,
        page: PageId,
        mark_dirty: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, DbError> {
        self.with_page_at(disk, file, page, mark_dirty, false, f)
    }

    fn with_page_at<R>(
        &mut self,
        disk: &mut Disk,
        file: FileId,
        page: PageId,
        mark_dirty: bool,
        hot: bool,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, DbError> {
        let (frame_idx, was_hit) = match self.map.get(&(file, page)) {
            Some(&idx) => {
                self.stats.hits += 1;
                (idx, true)
            }
            None => {
                self.stats.misses += 1;
                let idx = self.find_victim(disk)?;
                disk.read_page(file, page, &mut self.frames[idx].data)?;
                self.frames[idx].key = Some((file, page));
                self.frames[idx].dirty = false;
                self.map.insert((file, page), idx);
                if !hot {
                    self.frames[idx].cold = true;
                    self.cold_queue.push_back(idx);
                }
                (idx, false)
            }
        };
        let frame = &mut self.frames[frame_idx];
        // Any hit promotes: a page touched twice is part of the working
        // set no matter which access class touched it. Only a cold miss
        // enters unreferenced.
        if hot || was_hit {
            frame.referenced = true;
            frame.cold = false;
        }
        frame.dirty |= mark_dirty;
        Ok(f(&mut frame.data))
    }

    /// Pick a frame to reuse, writing back its contents if dirty.
    fn find_victim(&mut self, disk: &mut Disk) -> Result<usize, DbError> {
        // Free frame first.
        if let Some(idx) = self.frames.iter().position(|fr| fr.key.is_none()) {
            return Ok(idx);
        }
        // Unpromoted cold frames next, oldest first: scan traffic then
        // recycles its own frames without ever advancing the clock, so a
        // scan of any length costs the hot set nothing.
        while let Some(idx) = self.cold_queue.pop_front() {
            let frame = &mut self.frames[idx];
            if !frame.cold {
                continue; // stale: promoted or evicted since it was queued
            }
            let (file, page) = frame.key.expect("cold frame has a key");
            if frame.dirty {
                self.stats.dirty_writebacks += 1;
                disk.write_page(file, page, &frame.data)?;
            }
            self.stats.evictions += 1;
            self.map.remove(&(file, page));
            let frame = &mut self.frames[idx];
            frame.key = None;
            frame.dirty = false;
            frame.cold = false;
            frame.referenced = false;
            return Ok(idx);
        }
        // Clock sweep: skip referenced frames once, clearing the bit.
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            let frame = &mut self.frames[idx];
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let (file, page) = frame.key.expect("occupied frame has a key");
            if frame.dirty {
                self.stats.dirty_writebacks += 1;
                disk.write_page(file, page, &frame.data)?;
            }
            self.stats.evictions += 1;
            self.map.remove(&(file, page));
            frame.key = None;
            frame.cold = false;
            return Ok(idx);
        }
    }

    /// Write back every dirty frame. On error (an injected crash) some
    /// dirty frames remain unflushed; the caller is expected to discard
    /// the pool and recover.
    pub fn flush_all(&mut self, disk: &mut Disk) -> Result<(), DbError> {
        for frame in &mut self.frames {
            if let (Some((file, page)), true) = (frame.key, frame.dirty) {
                self.stats.dirty_writebacks += 1;
                disk.write_page(file, page, &frame.data)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every cached page without write-back. Models losing the
    /// buffer cache in a crash; also used before rebuilding state after
    /// recovery.
    pub fn discard_all(&mut self) {
        self.map.clear();
        self.cold_queue.clear();
        for frame in &mut self.frames {
            frame.key = None;
            frame.dirty = false;
            frame.referenced = false;
            frame.cold = false;
        }
    }

    /// Discard (without write-back) every cached page of `file`. Called when
    /// a file is dropped so stale frames cannot leak into a reused file id.
    pub fn discard_file(&mut self, file: FileId) {
        let mut removed = Vec::new();
        for (key, &idx) in &self.map {
            if key.0 == file {
                removed.push((*key, idx));
            }
        }
        for (key, idx) in removed {
            self.map.remove(&key);
            let frame = &mut self.frames[idx];
            frame.key = None;
            frame.dirty = false;
            frame.referenced = false;
            frame.cold = false;
        }
    }

    /// Resize the pool to `capacity` frames, flushing every dirty frame
    /// and dropping all cached pages first. Lets experiments shrink (or
    /// grow) the cache between workload tiers without rebuilding the
    /// engine; counters carry over so hit rates can still be compared
    /// per-phase via deltas.
    pub fn resize(&mut self, disk: &mut Disk, capacity: usize) -> Result<(), DbError> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        self.flush_all(disk)?;
        self.map.clear();
        self.clock_hand = 0;
        self.cold_queue.clear();
        self.frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                referenced: false,
                cold: false,
            })
            .collect();
        Ok(())
    }

    /// Number of frames currently caching a page.
    pub fn occupied(&self) -> usize {
        self.map.len()
    }

    pub fn capacity(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(frames: usize) -> (Disk, BufferPool, FileId) {
        let mut disk = Disk::new();
        let file = disk.create_file();
        (disk, BufferPool::new(frames), file)
    }

    #[test]
    fn repeated_access_hits_cache() {
        let (mut disk, mut pool, file) = setup(4);
        let page = disk.allocate_page(file).unwrap();
        pool.with_page(&mut disk, file, page, true, |buf| buf[0] = 42)
            .unwrap();
        let val = pool
            .with_page(&mut disk, file, page, false, |buf| buf[0])
            .unwrap();
        assert_eq!(val, 42);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 1);
        // Only the initial fault touched the disk.
        assert_eq!(disk.stats().pages_read, 1);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (mut disk, mut pool, file) = setup(2);
        let pages: Vec<PageId> = (0..4).map(|_| disk.allocate_page(file).unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            pool.with_page(&mut disk, file, p, true, |buf| buf[0] = i as u8 + 1)
                .unwrap();
        }
        assert!(pool.stats().evictions >= 2);
        // Re-reading the evicted pages must observe the written data.
        for (i, &p) in pages.iter().enumerate() {
            let v = pool
                .with_page(&mut disk, file, p, false, |buf| buf[0])
                .unwrap();
            assert_eq!(v, i as u8 + 1);
        }
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (mut disk, mut pool, file) = setup(4);
        let page = disk.allocate_page(file).unwrap();
        pool.with_page(&mut disk, file, page, true, |buf| buf[7] = 9)
            .unwrap();
        pool.flush_all(&mut disk).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        disk.read_page(file, page, &mut out).unwrap();
        assert_eq!(out[7], 9);
    }

    #[test]
    fn discard_file_drops_cached_frames() {
        let (mut disk, mut pool, file) = setup(4);
        let page = disk.allocate_page(file).unwrap();
        pool.with_page(&mut disk, file, page, true, |buf| buf[0] = 1)
            .unwrap();
        assert_eq!(pool.occupied(), 1);
        pool.discard_file(file);
        assert_eq!(pool.occupied(), 0);
        // The dirty write was discarded, not flushed.
        let mut out = vec![0u8; PAGE_SIZE];
        disk.read_page(file, page, &mut out).unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn cold_scan_does_not_evict_hot_working_set() {
        let (mut disk, mut pool, file) = setup(4);
        let hot: Vec<PageId> = (0..3).map(|_| disk.allocate_page(file).unwrap()).collect();
        let scan: Vec<PageId> = (0..32).map(|_| disk.allocate_page(file).unwrap()).collect();
        // Establish the working set: every hot page referenced.
        for &p in &hot {
            pool.with_page(&mut disk, file, p, false, |_| ()).unwrap();
            pool.with_page(&mut disk, file, p, false, |_| ()).unwrap();
        }
        // A scan 8x the pool size streams through cold.
        for &p in &scan {
            pool.with_page_cold(&mut disk, file, p, false, |_| ())
                .unwrap();
        }
        // The hot set survived: re-touching it is all hits.
        let misses_before = pool.stats().misses;
        for &p in &hot {
            pool.with_page(&mut disk, file, p, false, |_| ()).unwrap();
        }
        assert_eq!(
            pool.stats().misses,
            misses_before,
            "cold scan evicted the hot working set"
        );
    }

    #[test]
    fn cold_hit_promotes_to_hot() {
        let (mut disk, mut pool, file) = setup(2);
        let p0 = disk.allocate_page(file).unwrap();
        let p1 = disk.allocate_page(file).unwrap();
        let p2 = disk.allocate_page(file).unwrap();
        // p0 enters cold, then a second cold access promotes it.
        pool.with_page_cold(&mut disk, file, p0, false, |_| ())
            .unwrap();
        pool.with_page_cold(&mut disk, file, p0, false, |_| ())
            .unwrap();
        // p1 enters cold and stays cold; faulting p2 must pick p1.
        pool.with_page_cold(&mut disk, file, p1, false, |_| ())
            .unwrap();
        pool.with_page_cold(&mut disk, file, p2, false, |_| ())
            .unwrap();
        let misses_before = pool.stats().misses;
        pool.with_page(&mut disk, file, p0, false, |_| ()).unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before,
            "promoted page was evicted"
        );
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_frames() {
        let (mut disk, mut pool, file) = setup(2);
        let p0 = disk.allocate_page(file).unwrap();
        let p1 = disk.allocate_page(file).unwrap();
        let p2 = disk.allocate_page(file).unwrap();
        pool.with_page(&mut disk, file, p0, false, |_| ()).unwrap();
        pool.with_page(&mut disk, file, p1, false, |_| ()).unwrap();
        // Fault p2: the sweep clears both reference bits and evicts p0.
        pool.with_page(&mut disk, file, p2, false, |_| ()).unwrap();
        // Touch p2 (sets its bit), then fault p0: the unreferenced p1 is the
        // victim and the freshly referenced p2 survives.
        pool.with_page(&mut disk, file, p2, false, |_| ()).unwrap();
        pool.with_page(&mut disk, file, p0, false, |_| ()).unwrap();
        let before = pool.stats().misses;
        pool.with_page(&mut disk, file, p2, false, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, before, "p2 survived the sweep");
    }
}
