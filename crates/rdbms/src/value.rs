//! Runtime values and column types.
//!
//! The testbed's data model follows the paper: base and derived relations
//! carry columns of type `integer` or `char` (string). Values are totally
//! ordered within a type; cross-type comparison orders all integers before
//! all strings so that sorting mixed columns is deterministic rather than a
//! panic.

use std::cmp::Ordering;
use std::fmt;

/// Column type of a relation attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit signed integer (the paper's `integer`).
    Int,
    /// Variable-length string (the paper's `char`).
    Str,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "integer"),
            ColType::Str => write!(f, "char"),
        }
    }
}

impl ColType {
    /// Parse a type name as it appears in `CREATE TABLE`.
    pub fn parse(s: &str) -> Option<ColType> {
        match s.to_ascii_lowercase().as_str() {
            "integer" | "int" => Some(ColType::Int),
            "char" | "varchar" | "string" | "text" => Some(ColType::Str),
            _ => None,
        }
    }
}

/// A runtime value stored in a tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    /// The type of this value.
    pub fn col_type(&self) -> ColType {
        match self {
            Value::Int(_) => ColType::Int,
            Value::Str(_) => ColType::Str,
        }
    }

    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Number of bytes this value occupies when serialized into a page
    /// (1 tag byte plus the payload).
    pub fn serialized_len(&self) -> usize {
        match self {
            Value::Int(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Append the serialized form to `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
    /// Returns `None` on malformed input.
    pub fn deserialize_from(buf: &[u8], pos: &mut usize) -> Option<Value> {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        match tag {
            0 => {
                let bytes: [u8; 8] = buf.get(*pos..*pos + 8)?.try_into().ok()?;
                *pos += 8;
                Some(Value::Int(i64::from_le_bytes(bytes)))
            }
            1 => {
                let len_bytes: [u8; 4] = buf.get(*pos..*pos + 4)?.try_into().ok()?;
                *pos += 4;
                let len = u32::from_le_bytes(len_bytes) as usize;
                let s = buf.get(*pos..*pos + len)?;
                *pos += len;
                Some(Value::Str(String::from_utf8(s.to_vec()).ok()?))
            }
            _ => None,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_type_parse_and_display() {
        assert_eq!(ColType::parse("integer"), Some(ColType::Int));
        assert_eq!(ColType::parse("INT"), Some(ColType::Int));
        assert_eq!(ColType::parse("char"), Some(ColType::Str));
        assert_eq!(ColType::parse("VarChar"), Some(ColType::Str));
        assert_eq!(ColType::parse("blob"), None);
        assert_eq!(ColType::Int.to_string(), "integer");
        assert_eq!(ColType::Str.to_string(), "char");
    }

    #[test]
    fn value_type_accessors() {
        let i = Value::Int(42);
        let s = Value::from("hello");
        assert_eq!(i.col_type(), ColType::Int);
        assert_eq!(s.col_type(), ColType::Str);
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
        assert_eq!(s.as_str(), Some("hello"));
        assert_eq!(s.as_int(), None);
    }

    #[test]
    fn value_ordering_within_and_across_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::Int(i64::MAX) < Value::from(""));
    }

    #[test]
    fn serialize_roundtrip_int() {
        let v = Value::Int(-123456789);
        let mut buf = Vec::new();
        v.serialize_into(&mut buf);
        assert_eq!(buf.len(), v.serialized_len());
        let mut pos = 0;
        assert_eq!(Value::deserialize_from(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn serialize_roundtrip_str() {
        let v = Value::from("ancêtre");
        let mut buf = Vec::new();
        v.serialize_into(&mut buf);
        assert_eq!(buf.len(), v.serialized_len());
        let mut pos = 0;
        assert_eq!(Value::deserialize_from(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn deserialize_rejects_truncated_input() {
        let v = Value::from("hello world");
        let mut buf = Vec::new();
        v.serialize_into(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(
                Value::deserialize_from(&buf[..cut], &mut pos),
                None,
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn deserialize_rejects_bad_tag() {
        let buf = [7u8, 0, 0, 0];
        let mut pos = 0;
        assert_eq!(Value::deserialize_from(&buf, &mut pos), None);
    }

    #[test]
    fn display_matches_payload() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("x").to_string(), "x");
    }
}
