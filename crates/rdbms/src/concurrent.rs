//! Multi-session concurrency: MVCC snapshot reads and a group-commit WAL.
//!
//! The engine itself is single-threaded by design — one [`Engine`], one
//! buffer pool, one WAL. This module turns it into a concurrent,
//! multi-session system without giving up that simplicity:
//!
//! * **Snapshot reads.** Every [`DbSession`] owns a copy-on-write fork of
//!   the live engine ([`Engine::fork`]): disk pages and catalog entries
//!   are `Arc`-shared, so taking a snapshot is O(#tables + #pages)
//!   pointer copies and readers — including long LFP evaluations in the
//!   Knowledge Manager — run entirely on their fork. They never take the
//!   live-engine lock, never block a writer, and never observe a partial
//!   commit: their snapshot is immutable by construction.
//!
//! * **Deferred-apply writes with first-committer-wins validation.**
//!   Write statements execute against the session's private fork (so the
//!   session reads its own writes) *and* are recorded. At commit the
//!   recorded statements are replayed on the live engine inside a WAL
//!   transaction. Validation runs over the transaction's read ∪ write
//!   footprint: reads and state-dependent writes (DDL, `TRUNCATE`,
//!   multi-row `DELETE`, `INSERT ... SELECT`, transitive closure) are
//!   validated at table granularity — any commit that touched the table
//!   after this transaction's snapshot kills it with
//!   [`DbError::WriteConflict`] and nothing is applied. Literal-row
//!   inserts (`INSERT ... VALUES`, [`DbSession::insert_rows`]) are
//!   validated at *key* granularity: the inserted rows are recorded as
//!   keys, and the commit fails only when a concurrent commit coarsely
//!   rewrote the table or inserted an overlapping key. Point deletes
//!   (`DELETE ... WHERE col = literal`) are key-granular too: the
//!   `(column, value)` atom conflicts only with a coarse write, a
//!   concurrent insert of a matching row, or a concurrent point delete
//!   not provably disjoint (same column, different value). Commuting
//!   inserts and point deletes therefore take a conflict-free fast path.
//!   This is sound because their replays preserve the serial outcome:
//!   a literal insert is state-independent, and a point delete's matched
//!   row set is unchanged by any commit it is allowed to overlap with.
//!   Because validation covers the *read* set too, the replay runs
//!   against exactly the table states the fork execution saw — the
//!   committed history is serializable in commit order.
//!   [`SharedEngine::set_key_granular`] reverts to pure table
//!   granularity, the ablation baseline of `experiments concurrency`.
//!
//! * **Group commit.** Commits funnel through a queue: a committing
//!   session enqueues its transaction, then contends for the live-engine
//!   lock. Whoever acquires it becomes the *leader* and drains every
//!   queued transaction — its own and any that piled up behind the
//!   previous leader — applying each in arrival order with per-commit
//!   fsyncs deferred, then flushing the WAL **once** for the whole batch
//!   ([`Engine::fsync_wal`]). Followers find their result already
//!   recorded when they get the lock and return without applying
//!   anything. Under contention the fsyncs-per-commit ratio drops below
//!   1; the `wal.fsyncs` / `wal.group_commits` /
//!   `wal.group_committed_txns` counters prove it. The
//!   `RDBMS_FSYNC_MICROS` environment variable adds a simulated
//!   per-fsync latency so the batching also shows up in throughput, not
//!   only in counters.

use crate::catalog::DbError;
use crate::engine::{Engine, ResultSet};
use crate::metrics::{Metric, Registry};
use crate::schema::{Schema, Tuple};
use crate::sql::ast::{CmpOp, Condition, Query, Stmt};
use crate::sql::parser::{parse_script, parse_stmt_params};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A statement recorded on a session's fork, to be replayed on the live
/// engine at commit.
#[derive(Debug, Clone)]
enum ReplayOp {
    Sql(String),
    Prepared {
        sql: String,
        params: Vec<Value>,
    },
    /// A literal row batch ([`DbSession::insert_rows`]) — the bulk-load
    /// path the Knowledge Manager's stored-D/KB loads go through.
    Rows {
        table: String,
        rows: Vec<Tuple>,
    },
    /// A multi-statement script ([`DbSession::execute_script`]), replayed
    /// as one unit; its footprint is the merge of its statements'.
    Script(String),
}

/// How a transaction wrote one table, for validation purposes.
#[derive(Debug, Clone)]
enum TableWrite {
    /// A state-dependent write (DDL, `TRUNCATE`, `DELETE`,
    /// `INSERT ... SELECT`, transitive closure): conflicts with any
    /// concurrent write to the table, exactly as in pure table
    /// granularity.
    Coarse,
    /// Literal-row inserts only: replay is state-independent, so the
    /// write conflicts only with a concurrent coarse write or an
    /// overlapping inserted key (the key is the full row — the engine
    /// has no primary-key constraints, so equal rows are the only
    /// overlap that could distinguish commit orders to a key-level
    /// observer).
    Keys(BTreeSet<Tuple>),
    /// Point deletes (`DELETE ... WHERE col = literal`): each atom is a
    /// `(column, value)` pair naming exactly the rows the delete targets.
    /// Replay after a commuting commit is serial, so the delete conflicts
    /// only with a coarse write, a concurrent insert of a matching row
    /// (the replay would delete a row the fork never saw), or a
    /// concurrent delete that cannot be proven disjoint (same column +
    /// different value is the only provable case — one row holds one
    /// value per column). Multi-conjunct and non-equality DELETEs stay
    /// [`TableWrite::Coarse`].
    DeleteKeys(BTreeSet<(usize, Value)>),
}

/// Merge another statement's write of `table` into a transaction's
/// accumulated write set. `Coarse` absorbs keys in both directions.
fn merge_write(set: &mut BTreeMap<String, TableWrite>, table: String, write: TableWrite) {
    match set.entry(table) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(write);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), write) {
            (TableWrite::Coarse, _) => {}
            (slot, TableWrite::Coarse) => *slot = TableWrite::Coarse,
            (TableWrite::Keys(a), TableWrite::Keys(b)) => a.extend(b),
            (TableWrite::DeleteKeys(a), TableWrite::DeleteKeys(b)) => a.extend(b),
            // Inserts and deletes mixed on one table inside a transaction:
            // the delete's outcome may depend on the insert, so the pair
            // degrades to a coarse write (conservative, never unsound).
            (slot, _) => *slot = TableWrite::Coarse,
        },
    }
}

/// A transaction waiting in the commit queue.
struct Pending {
    ticket: u64,
    /// The global commit sequence number the session's snapshot was
    /// taken at; first-committer-wins validates against it.
    snapshot_seq: u64,
    ops: Vec<ReplayOp>,
    read_set: BTreeSet<String>,
    write_set: BTreeMap<String, TableWrite>,
}

/// Keys remembered per table before the FIFO history starts pruning.
/// Far above what the bench workloads insert between any two snapshots;
/// the `pruned_floor` fallback keeps validation sound past the cap.
const KEY_HISTORY_CAP: usize = 65_536;

/// Per-table commit history: the last-writer sequence numbers key-granular
/// validation checks against.
#[derive(Default)]
struct TableHistory {
    /// Seq of the last commit that wrote the table at all (reads and
    /// coarse writes validate against this — unchanged table semantics).
    last_seq: u64,
    /// Seq of the last *coarse* write; literal inserts conflict with it.
    coarse_seq: u64,
    /// Last-writer seq per inserted key, FIFO-capped at
    /// [`KEY_HISTORY_CAP`].
    keys: BTreeMap<Tuple, u64>,
    /// Insertion order of `keys` entries, for pruning.
    order: VecDeque<(Tuple, u64)>,
    /// Highest seq ever pruned from `keys`: an absent key may have been
    /// written at or below this, so validation treats "absent but floor
    /// past snapshot" as a conflict (conservative, never unsound).
    pruned_floor: u64,
    /// Last-writer seq per point-delete atom `(column, value)`, FIFO-capped
    /// at [`KEY_HISTORY_CAP`] like the insert keys.
    deletes: BTreeMap<(usize, Value), u64>,
    /// Insertion order of `deletes` entries, for pruning.
    delete_order: VecDeque<((usize, Value), u64)>,
    /// Highest seq ever pruned from `deletes`.
    delete_floor: u64,
}

impl TableHistory {
    /// Record a coarse write at `seq`. Key history before a coarse write
    /// is irrelevant: any snapshot that predates it already conflicts on
    /// `coarse_seq` alone.
    fn record_coarse(&mut self, seq: u64) {
        self.last_seq = seq;
        self.coarse_seq = seq;
        self.keys.clear();
        self.order.clear();
        self.pruned_floor = 0;
        self.deletes.clear();
        self.delete_order.clear();
        self.delete_floor = 0;
    }

    /// Record a literal-insert write of `keys` at `seq`.
    fn record_keys(&mut self, keys: &BTreeSet<Tuple>, seq: u64) {
        self.last_seq = seq;
        for k in keys {
            self.keys.insert(k.clone(), seq);
            self.order.push_back((k.clone(), seq));
        }
        while self.order.len() > KEY_HISTORY_CAP {
            let (k, s) = self.order.pop_front().expect("len checked");
            // Only drop the map entry if it still belongs to this
            // insertion; a re-inserted key owns a newer seq.
            if self.keys.get(&k) == Some(&s) {
                self.keys.remove(&k);
            }
            self.pruned_floor = self.pruned_floor.max(s);
        }
    }

    /// Record a point-delete write of `atoms` at `seq`.
    fn record_delete_keys(&mut self, atoms: &BTreeSet<(usize, Value)>, seq: u64) {
        self.last_seq = seq;
        for a in atoms {
            self.deletes.insert(a.clone(), seq);
            self.delete_order.push_back((a.clone(), seq));
        }
        while self.delete_order.len() > KEY_HISTORY_CAP {
            let (a, s) = self.delete_order.pop_front().expect("len checked");
            if self.deletes.get(&a) == Some(&s) {
                self.deletes.remove(&a);
            }
            self.delete_floor = self.delete_floor.max(s);
        }
    }
}

/// The single mutable heart of the system: the live engine plus the
/// version bookkeeping the commit protocol needs.
struct Live {
    engine: Engine,
    /// Bumped once per applied transaction.
    commit_seq: u64,
    /// Per-table commit history (last write, last coarse write, recent
    /// insert keys).
    history: BTreeMap<String, TableHistory>,
    /// Outcomes of transactions a leader applied on behalf of other
    /// sessions, keyed by ticket; each owner removes its own entry.
    results: BTreeMap<u64, Result<(), DbError>>,
}

struct Shared {
    queue: Mutex<Vec<Pending>>,
    live: Mutex<Live>,
    /// Signaled after a leader drains a batch, so followers whose result
    /// is ready wake promptly even while the next leader holds `live`.
    batch_done: Condvar,
    /// When on (the default), leaders defer per-commit fsyncs and flush
    /// once per drained batch; when off every commit fsyncs itself —
    /// the ablation baseline for `experiments concurrency`.
    group_commit: AtomicBool,
    /// When on (the default), literal-row inserts validate at key
    /// granularity; off restores PR-8 table granularity (the ablation
    /// baseline).
    key_granular: AtomicBool,
    next_session: AtomicU64,
    next_ticket: AtomicU64,
    /// Simulated fsync latency (µs), from `RDBMS_FSYNC_MICROS`.
    fsync_micros: u64,
}

/// A thread-safe, multi-session handle over one [`Engine`]. Cloning is
/// cheap (an `Arc` bump); every clone talks to the same live engine.
#[derive(Clone)]
pub struct SharedEngine {
    shared: Arc<Shared>,
}

fn fsync_micros_env() -> u64 {
    std::env::var("RDBMS_FSYNC_MICROS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

impl SharedEngine {
    /// Wrap `engine` for concurrent use. WAL is enabled (commits replay
    /// through transactions) and the engine must not be mid-transaction.
    pub fn new(mut engine: Engine) -> SharedEngine {
        assert!(
            !engine.in_transaction(),
            "SharedEngine requires an engine with no open transaction"
        );
        engine.enable_wal();
        SharedEngine {
            shared: Arc::new(Shared {
                queue: Mutex::new(Vec::new()),
                live: Mutex::new(Live {
                    engine,
                    commit_seq: 0,
                    history: BTreeMap::new(),
                    results: BTreeMap::new(),
                }),
                batch_done: Condvar::new(),
                group_commit: AtomicBool::new(true),
                key_granular: AtomicBool::new(true),
                next_session: AtomicU64::new(0),
                next_ticket: AtomicU64::new(0),
                fsync_micros: fsync_micros_env(),
            }),
        }
    }

    /// Toggle group commit (on by default). Off = every commit fsyncs
    /// individually, the baseline the concurrency bench compares against.
    pub fn set_group_commit(&self, on: bool) {
        self.shared.group_commit.store(on, Ordering::Relaxed);
    }

    /// Toggle key-granular validation of literal-row inserts (on by
    /// default). Off = every write validates at table granularity, the
    /// PR-8 baseline `experiments concurrency` compares conflict rates
    /// against.
    pub fn set_key_granular(&self, on: bool) {
        self.shared.key_granular.store(on, Ordering::Relaxed);
    }

    /// Open a new session on the current committed state.
    pub fn session(&self) -> DbSession {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let mut live = self.shared.live.lock().unwrap();
        let snap = live
            .engine
            .fork()
            .expect("live engine is never mid-transaction between commits");
        let snapshot_seq = live.commit_seq;
        drop(live);
        DbSession {
            shared: Arc::clone(&self.shared),
            id,
            snap,
            snapshot_seq,
            fork_gen: 0,
            txn: None,
            commits: 0,
            conflicts: 0,
        }
    }

    /// Run `f` against the live engine under the commit lock. Tests use
    /// this to arm fault injectors, inspect durable state, and drive
    /// recovery; it is also the seam for maintenance (checkpointing).
    pub fn with_live<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        let mut live = self.shared.live.lock().unwrap();
        f(&mut live.engine)
    }

    /// Crash recovery on the live engine. Every table's version is
    /// bumped past every open snapshot, so transactions that straddled
    /// the crash fail validation instead of committing over a recovered
    /// state, and queued-but-unapplied transactions are failed outright.
    pub fn recover(&self) -> Result<crate::disk::RecoveryReport, DbError> {
        let mut queued = std::mem::take(&mut *self.shared.queue.lock().unwrap());
        let mut live = self.shared.live.lock().unwrap();
        let report = live.engine.recover()?;
        live.commit_seq += 1;
        let seq = live.commit_seq;
        for name in live.engine.table_names() {
            live.history
                .entry(name.to_ascii_lowercase())
                .or_default()
                .record_coarse(seq);
        }
        for p in queued.drain(..) {
            live.results.insert(
                p.ticket,
                Err(DbError::Txn(
                    "transaction discarded: the engine crashed and recovered before it was applied"
                        .into(),
                )),
            );
        }
        self.shared.batch_done.notify_all();
        Ok(report)
    }

    /// Metrics of the live engine (the durable side; sessions report
    /// their fork-local metrics via [`DbSession::metrics`]).
    pub fn metrics(&self) -> Registry {
        let live = self.shared.live.lock().unwrap();
        live.engine.metrics()
    }
}

/// Recording state of an open session transaction.
#[derive(Default)]
struct TxnRecording {
    ops: Vec<ReplayOp>,
    read_set: BTreeSet<String>,
    write_set: BTreeMap<String, TableWrite>,
    /// A statement failed mid-transaction; only rollback is accepted
    /// (the fork may hold that statement's partial effects).
    poisoned: bool,
}

/// One session over a [`SharedEngine`]: a private MVCC snapshot plus the
/// recording/commit machinery. Sessions are `Send` — park one per thread.
pub struct DbSession {
    shared: Arc<Shared>,
    id: u64,
    /// The session's snapshot: a copy-on-write fork of the live engine.
    snap: Engine,
    snapshot_seq: u64,
    /// Bumped every time `snap` is replaced; prepared handles remember
    /// the generation they were built on and re-prepare when it moved.
    fork_gen: u64,
    txn: Option<TxnRecording>,
    commits: u64,
    conflicts: u64,
}

impl DbSession {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Transactions this session successfully committed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commits this session lost to first-committer-wins validation.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// The session's snapshot engine. Reads run here without any lock;
    /// the per-session governor, budgets, and spill mode are configured
    /// through it ([`Engine::set_statement_timeout`] etc.).
    pub fn engine(&mut self) -> &mut Engine {
        &mut self.snap
    }

    /// Immutable view of the session's snapshot engine.
    pub fn snapshot(&self) -> &Engine {
        &self.snap
    }

    /// A handle to the shared engine this session runs on — the way to
    /// open sibling sessions against the same live state.
    pub fn shared_engine(&self) -> SharedEngine {
        SharedEngine {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Discard the current snapshot (and any open transaction) and fork
    /// the latest committed state. Fails when the live engine cannot be
    /// forked — in practice only after a crash; run
    /// [`SharedEngine::recover`] and refresh again. On failure the old
    /// snapshot is kept, so reads keep working against the stale state.
    pub fn refresh(&mut self) -> Result<(), DbError> {
        self.txn = None;
        let mut live = self.shared.live.lock().unwrap();
        self.snap = live.engine.fork()?;
        self.snapshot_seq = live.commit_seq;
        self.fork_gen += 1;
        Ok(())
    }

    /// Begin an explicit transaction. The snapshot is refreshed first so
    /// the transaction validates against the freshest possible baseline.
    pub fn begin(&mut self) -> Result<(), DbError> {
        if self.txn.is_some() {
            return Err(DbError::Txn("a transaction is already active".into()));
        }
        self.refresh()?;
        self.txn = Some(TxnRecording::default());
        Ok(())
    }

    /// Abandon the open transaction and re-snapshot. The transaction is
    /// gone even if the re-snapshot fails (crashed live engine): the
    /// error then reports the stale snapshot, not a live transaction.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        if self.txn.is_none() {
            return Err(DbError::Txn(
                "rollback without an active transaction".into(),
            ));
        }
        self.refresh()
    }

    /// Commit the open transaction through the group-commit queue. On
    /// [`DbError::WriteConflict`] nothing was applied; retry the whole
    /// transaction on the fresh snapshot this call leaves behind.
    pub fn commit(&mut self) -> Result<(), DbError> {
        let rec = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("commit without an active transaction".into()))?;
        if rec.poisoned {
            let _ = self.refresh();
            return Err(DbError::Txn(
                "transaction aborted by an earlier statement error".into(),
            ));
        }
        if rec.ops.is_empty() {
            // Read-only: the snapshot is the transaction. Nothing to
            // validate or apply.
            return Ok(());
        }
        self.submit(rec.ops, rec.read_set, rec.write_set)
    }

    /// Execute one SQL statement. Reads run on the snapshot; writes run
    /// on the snapshot *and* are recorded for replay at commit (or, in
    /// autocommit, committed through the queue immediately).
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let (stmt, n_params) = parse_stmt_params(sql)?;
        if n_params > 0 {
            return Err(DbError::Plan(
                "statement contains `?` parameters; use prepare/execute_prepared".into(),
            ));
        }
        self.run(sql, None, &stmt)
    }

    /// Prepare a statement on this session. The handle is fork-local;
    /// the SQL text is kept so commits can replay it on the live engine.
    pub fn prepare(&mut self, sql: &str) -> Result<SessionStmt, DbError> {
        let id = self.snap.prepare(sql)?;
        let (stmt, _) = parse_stmt_params(sql)?;
        Ok(SessionStmt {
            id,
            sql: sql.to_string(),
            stmt,
            fork_gen: self.fork_gen,
        })
    }

    /// Execute a prepared handle with bound parameters.
    pub fn execute_prepared(
        &mut self,
        stmt: &SessionStmt,
        params: &[Value],
    ) -> Result<ResultSet, DbError> {
        self.run(&stmt.sql, Some((stmt, params)), &stmt.stmt.clone())
    }

    /// Insert literal rows through the MVCC write path: executed on the
    /// snapshot (the session reads its own writes) and recorded for
    /// key-granular replay at commit — the bulk-load fast path of the
    /// Knowledge Manager's stored D/KB. In autocommit a write conflict is
    /// retried transparently, like [`DbSession::execute`].
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Tuple>) -> Result<u64, DbError> {
        if self.txn.as_ref().is_some_and(|t| t.poisoned) {
            return Err(DbError::Txn(
                "transaction aborted by an earlier statement error; rollback first".into(),
            ));
        }
        let keys: BTreeSet<Tuple> = rows.iter().cloned().collect();
        let op = ReplayOp::Rows {
            table: table.to_string(),
            rows: rows.clone(),
        };
        if self.txn.is_some() {
            let result = self.snap.insert_rows(table, rows);
            if let Some(t) = self.txn.as_mut() {
                match &result {
                    Ok(_) => {
                        t.ops.push(op);
                        merge_write(&mut t.write_set, norm(table), TableWrite::Keys(keys));
                    }
                    Err(_) => t.poisoned = true,
                }
            }
            return result;
        }
        loop {
            let n = match self.snap.insert_rows(table, rows.clone()) {
                Ok(n) => n,
                Err(e) => {
                    let _ = self.refresh();
                    return Err(e);
                }
            };
            let writes = BTreeMap::from([(norm(table), TableWrite::Keys(keys.clone()))]);
            match self.submit(vec![op.clone()], BTreeSet::new(), writes) {
                Ok(()) => return Ok(n),
                Err(DbError::WriteConflict(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Execute a multi-statement script through the MVCC path. The script
    /// runs on the snapshot and is recorded as a single replay unit whose
    /// validation footprint is the merge of its statements' footprints —
    /// the stored-D/KB bootstrap DDL goes through here.
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        if self.txn.as_ref().is_some_and(|t| t.poisoned) {
            return Err(DbError::Txn(
                "transaction aborted by an earlier statement error; rollback first".into(),
            ));
        }
        let stmts = parse_script(sql)?;
        let mut reads = BTreeSet::new();
        let mut writes = BTreeMap::new();
        for stmt in &stmts {
            let (r, w) = self.stmt_tables(stmt, None);
            reads.extend(r);
            for (table, write) in w {
                merge_write(&mut writes, table, write);
            }
        }
        if writes.is_empty() {
            let result = self.snap.execute_script(sql);
            if let (Some(t), Ok(_)) = (self.txn.as_mut(), &result) {
                t.read_set.extend(reads);
            }
            return result;
        }
        let op = ReplayOp::Script(sql.to_string());
        if self.txn.is_some() {
            let result = self.snap.execute_script(sql);
            if let Some(t) = self.txn.as_mut() {
                match &result {
                    Ok(_) => {
                        t.ops.push(op);
                        t.read_set.extend(reads);
                        for (table, write) in writes {
                            merge_write(&mut t.write_set, table, write);
                        }
                    }
                    Err(_) => t.poisoned = true,
                }
            }
            return result;
        }
        loop {
            let rs = match self.snap.execute_script(sql) {
                Ok(rs) => rs,
                Err(e) => {
                    let _ = self.refresh();
                    return Err(e);
                }
            };
            match self.submit(vec![op.clone()], reads.clone(), writes.clone()) {
                Ok(()) => return Ok(rs),
                Err(DbError::WriteConflict(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether the snapshot has `table`.
    pub fn has_table(&self, table: &str) -> bool {
        self.snap.has_table(table)
    }

    /// Schema of `table` on the snapshot.
    pub fn table_schema(&self, table: &str) -> Result<Schema, DbError> {
        self.snap.table_schema(table)
    }

    /// Row count of `table` on the snapshot, recorded as a read when a
    /// transaction is open (decisions derived from the count must not
    /// survive a concurrent write to the table).
    pub fn table_len(&mut self, table: &str) -> Result<u64, DbError> {
        if let Some(t) = self.txn.as_mut() {
            t.read_set.insert(norm(table));
        }
        self.snap.table_len(table)
    }

    /// All rows of `table` on the snapshot, recorded as a read when a
    /// transaction is open.
    pub fn scan_all(&mut self, table: &str) -> Result<Vec<Tuple>, DbError> {
        if let Some(t) = self.txn.as_mut() {
            t.read_set.insert(norm(table));
        }
        self.snap.scan_all(table)
    }

    fn run(
        &mut self,
        sql: &str,
        prepared: Option<(&SessionStmt, &[Value])>,
        stmt: &Stmt,
    ) -> Result<ResultSet, DbError> {
        if self.txn.as_ref().is_some_and(|t| t.poisoned) {
            return Err(DbError::Txn(
                "transaction aborted by an earlier statement error; rollback first".into(),
            ));
        }
        let (reads, writes) = self.stmt_tables(stmt, prepared.map(|(_, p)| p));
        if writes.is_empty() {
            // Pure read: run on the snapshot; record the footprint when
            // a transaction is open (reads participate in validation).
            let result = self.exec_on_snap(sql, prepared);
            if let (Some(t), Ok(_)) = (self.txn.as_mut(), &result) {
                t.read_set.extend(reads);
            }
            return result;
        }
        let op = match prepared {
            Some((handle, params)) => ReplayOp::Prepared {
                sql: handle.sql.clone(),
                params: params.to_vec(),
            },
            None => ReplayOp::Sql(sql.to_string()),
        };
        if self.txn.is_some() {
            let result = self.exec_on_snap(sql, prepared);
            let t = self.txn.as_mut().expect("txn checked above");
            match &result {
                Ok(_) => {
                    t.ops.push(op);
                    t.read_set.extend(reads);
                    for (table, w) in writes {
                        merge_write(&mut t.write_set, table, w);
                    }
                }
                Err(_) => t.poisoned = true,
            }
            return result;
        }
        // Autocommit: a one-statement transaction through the queue. A
        // write conflict is retried transparently — the statement re-runs
        // on the fresh snapshot `submit` left behind, exactly as a new
        // single-statement transaction would. Progress is guaranteed:
        // every conflict means some other session's commit landed.
        loop {
            let result = self.exec_on_snap(sql, prepared);
            let rs = match result {
                Ok(rs) => rs,
                Err(e) => {
                    // The fork may hold the failed statement's partial
                    // effects; discard it (best-effort if the live
                    // engine is crashed).
                    let _ = self.refresh();
                    return Err(e);
                }
            };
            match self.submit(vec![op.clone()], reads.clone(), writes.clone()) {
                Ok(()) => return Ok(rs),
                Err(DbError::WriteConflict(_)) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Run the statement on the snapshot engine. Prepared handles from
    /// an older fork generation are transparently re-prepared.
    fn exec_on_snap(
        &mut self,
        sql: &str,
        prepared: Option<(&SessionStmt, &[Value])>,
    ) -> Result<ResultSet, DbError> {
        match prepared {
            Some((handle, params)) => {
                if handle.fork_gen != self.fork_gen {
                    let id = self.snap.prepare(&handle.sql)?;
                    let r = self.snap.execute_prepared(id, params);
                    let _ = self.snap.deallocate(id);
                    r
                } else {
                    self.snap.execute_prepared(handle.id, params)
                }
            }
            None => self.snap.execute(sql),
        }
    }

    /// Enqueue a transaction and see it through the group-commit
    /// protocol. Always leaves the session on a fresh snapshot.
    fn submit(
        &mut self,
        ops: Vec<ReplayOp>,
        read_set: BTreeSet<String>,
        write_set: BTreeMap<String, TableWrite>,
    ) -> Result<(), DbError> {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::Relaxed);
        self.shared.queue.lock().unwrap().push(Pending {
            ticket,
            snapshot_seq: self.snapshot_seq,
            ops,
            read_set,
            write_set,
        });
        let mut live = self.shared.live.lock().unwrap();
        let result = loop {
            if let Some(r) = live.results.remove(&ticket) {
                // A previous leader applied (or failed) this transaction.
                break r;
            }
            // Become the leader: drain everything queued right now and
            // apply it in arrival order with one fsync for the batch.
            let batch: Vec<Pending> = {
                let mut q = self.shared.queue.lock().unwrap();
                std::mem::take(&mut *q)
            };
            if batch.is_empty() {
                // Our entry is gone but no result yet: another leader is
                // mid-batch with it. Wait for that batch to land.
                live = self.shared.batch_done.wait(live).unwrap();
                continue;
            }
            let defer = self.shared.group_commit.load(Ordering::Relaxed);
            let key_granular = self.shared.key_granular.load(Ordering::Relaxed);
            live.engine.set_defer_fsync(defer);
            let mut mine = None;
            for p in batch {
                let p_ticket = p.ticket;
                let r = apply_one(&mut live, p, key_granular);
                if !defer && r.is_ok() {
                    simulate_fsync(self.shared.fsync_micros);
                }
                if p_ticket == ticket {
                    mine = Some(r);
                } else {
                    live.results.insert(p_ticket, r);
                }
            }
            if defer {
                live.engine.set_defer_fsync(false);
                if live.engine.fsync_wal() > 0 {
                    simulate_fsync(self.shared.fsync_micros);
                }
            }
            self.shared.batch_done.notify_all();
            if let Some(r) = mine {
                break r;
            }
            // Keep looping: our entry must have been drained by someone
            // else (can't happen — we just drained it — but stay safe).
        };
        // Re-snapshot under the lock we already hold: the fresh fork is
        // consistent with whatever batch just committed. The generation
        // bump invalidates prepared handles compiled on the old fork —
        // their statement ids do not exist in the new engine.
        if !live.engine.crashed() {
            if let Ok(fork) = live.engine.fork() {
                self.snap = fork;
                self.snapshot_seq = live.commit_seq;
                self.fork_gen += 1;
                self.txn = None;
            }
        }
        if result.is_ok() {
            self.commits += 1;
        } else if matches!(result, Err(DbError::WriteConflict(_))) {
            self.conflicts += 1;
        }
        result
    }

    /// Fork-local metrics, each name prefixed with `session<id>.` so
    /// several sessions' registries merge without colliding, plus the
    /// session-level commit/conflict counters.
    pub fn metrics(&self) -> Registry {
        let mut out = Registry::new();
        let prefix = format!("session{}.", self.id);
        for (name, m) in self.snap.metrics().iter() {
            let name = format!("{prefix}{name}");
            match m {
                Metric::Counter(v) => out.counter(&name, *v),
                Metric::Gauge(v) => out.gauge(&name, *v),
                Metric::Histogram(_) => {}
            }
        }
        out.counter(&format!("{prefix}txn.commits"), self.commits);
        out.counter(&format!("{prefix}txn.conflicts"), self.conflicts);
        out
    }

    /// Tables a statement reads / writes (lower-cased), the footprint
    /// first-committer-wins validation runs over. `params` binds `?`
    /// placeholders of a prepared statement so literal inserts can list
    /// their keys.
    fn stmt_tables(
        &self,
        stmt: &Stmt,
        params: Option<&[Value]>,
    ) -> (BTreeSet<String>, BTreeMap<String, TableWrite>) {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeMap::new();
        match stmt {
            Stmt::CreateTable { name, .. } | Stmt::DropTable { name, .. } => {
                writes.insert(norm(name), TableWrite::Coarse);
            }
            Stmt::CreateIndex { table, .. } => {
                writes.insert(norm(table), TableWrite::Coarse);
            }
            Stmt::DropIndex { name } => {
                // Resolve the owning table on the snapshot; if the index
                // is unknown the statement will fail there anyway.
                let key = name.to_ascii_lowercase();
                for t in self.snap.table_names() {
                    if let Ok((_, _, indexes)) = self.snap.table_info(&t) {
                        if indexes.iter().any(|(n, _, _)| *n == key) {
                            writes.insert(norm(&t), TableWrite::Coarse);
                        }
                    }
                }
            }
            Stmt::InsertValues { table, rows } => {
                writes.insert(norm(table), insert_keys(rows, params));
            }
            Stmt::Truncate { table } => {
                writes.insert(norm(table), TableWrite::Coarse);
            }
            Stmt::InsertSelect { table, query } => {
                writes.insert(norm(table), TableWrite::Coarse);
                query_tables(query, &mut reads);
            }
            Stmt::InsertTransitiveClosure { table, source } => {
                writes.insert(norm(table), TableWrite::Coarse);
                reads.insert(norm(source));
            }
            Stmt::Delete { table, predicate } => {
                writes.insert(norm(table), self.delete_write(table, predicate, params));
                conds_tables(predicate, &mut reads);
            }
            Stmt::Select(query) | Stmt::Explain(query) | Stmt::ExplainAnalyze(query) => {
                query_tables(query, &mut reads);
            }
        }
        (reads, writes)
    }

    /// The write-set entry for a `DELETE`. A *point* delete — exactly one
    /// `col = literal` (or bound-parameter) conjunct over the target
    /// table — yields a key-granular [`TableWrite::DeleteKeys`] atom;
    /// every other shape (multi-conjunct, range, `NOT EXISTS`,
    /// column-to-column, unresolvable column) stays coarse.
    fn delete_write(
        &self,
        table: &str,
        predicate: &[Condition],
        params: Option<&[Value]>,
    ) -> TableWrite {
        use crate::sql::ast::Scalar;
        let [Condition::Cmp {
            left,
            op: CmpOp::Eq,
            right,
        }] = predicate
        else {
            return TableWrite::Coarse;
        };
        let (col, lit) = match (left, right) {
            (Scalar::Col(c), other) | (other, Scalar::Col(c)) => (c, other),
            _ => return TableWrite::Coarse,
        };
        if col
            .table
            .as_ref()
            .is_some_and(|t| !t.eq_ignore_ascii_case(table))
        {
            return TableWrite::Coarse;
        }
        let value = match lit {
            Scalar::Lit(v) => v.clone(),
            Scalar::Param(i) => match params.and_then(|p| p.get(*i)) {
                Some(v) => v.clone(),
                None => return TableWrite::Coarse,
            },
            Scalar::Col(_) => return TableWrite::Coarse,
        };
        let Ok(schema) = self.snap.table_schema(table) else {
            return TableWrite::Coarse;
        };
        match schema.index_of(&col.column) {
            Some(idx) => TableWrite::DeleteKeys(BTreeSet::from([(idx, value)])),
            None => TableWrite::Coarse,
        }
    }
}

/// The write-set entry for an `INSERT ... VALUES` statement: the inserted
/// rows as keys. Any scalar that cannot be resolved to a literal (an
/// unbound parameter, a column reference the parser should have rejected)
/// degrades the whole statement to a coarse write — conservative, never
/// unsound.
fn insert_keys(rows: &[Vec<crate::sql::ast::Scalar>], params: Option<&[Value]>) -> TableWrite {
    use crate::sql::ast::Scalar;
    let mut keys = BTreeSet::new();
    for row in rows {
        let mut key = Vec::with_capacity(row.len());
        for scalar in row {
            match scalar {
                Scalar::Lit(v) => key.push(v.clone()),
                Scalar::Param(i) => match params.and_then(|p| p.get(*i)) {
                    Some(v) => key.push(v.clone()),
                    None => return TableWrite::Coarse,
                },
                Scalar::Col(_) => return TableWrite::Coarse,
            }
        }
        keys.insert(key);
    }
    TableWrite::Keys(keys)
}

/// A statement prepared on a [`DbSession`]: the fork-local handle plus
/// the SQL text for commit-time replay.
pub struct SessionStmt {
    id: crate::engine::StmtId,
    sql: String,
    stmt: Stmt,
    /// Fork generation the handle was prepared on; execution on a newer
    /// fork transparently re-prepares there.
    fork_gen: u64,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

fn query_tables(query: &Query, out: &mut BTreeSet<String>) {
    match query {
        Query::Select(b) => {
            for t in &b.from {
                out.insert(norm(&t.table));
            }
            conds_tables(&b.where_clause, out);
        }
        Query::Union { left, right, .. } | Query::Except { left, right } => {
            query_tables(left, out);
            query_tables(right, out);
        }
    }
}

fn conds_tables(conds: &[Condition], out: &mut BTreeSet<String>) {
    for c in conds {
        if let Condition::NotExists { table, conds } = c {
            out.insert(norm(&table.table));
            conds_tables(conds, out);
        }
    }
}

fn simulate_fsync(micros: u64) {
    if micros > 0 {
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

/// Validate and apply one queued transaction on the live engine.
///
/// First-committer-wins over the read ∪ write footprint. Reads and coarse
/// writes conflict with *any* commit that wrote the table past this
/// transaction's snapshot; key-listed literal inserts conflict only with
/// a coarse write, an overlapping key, or a key history pruned past the
/// snapshot. With `key_granular` off every write validates coarsely (the
/// PR-8 baseline).
fn apply_one(live: &mut Live, p: Pending, key_granular: bool) -> Result<(), DbError> {
    let conflict = |table: &str, seq: u64, what: &str| {
        Err(DbError::WriteConflict(format!(
            "table '{table}' {what} by a concurrent commit \
             (snapshot at seq {}, table at seq {seq}); retry the transaction",
            p.snapshot_seq
        )))
    };
    for table in &p.read_set {
        if let Some(h) = live.history.get(table) {
            if h.last_seq > p.snapshot_seq {
                return conflict(table, h.last_seq, "was modified");
            }
        }
    }
    for (table, write) in &p.write_set {
        let Some(h) = live.history.get(table) else {
            continue;
        };
        match write {
            TableWrite::Keys(keys) if key_granular => {
                if h.coarse_seq > p.snapshot_seq {
                    return conflict(table, h.coarse_seq, "was rewritten");
                }
                if h.pruned_floor > p.snapshot_seq {
                    return conflict(table, h.pruned_floor, "key history was pruned");
                }
                for key in keys {
                    let seq = h.keys.get(key).copied().unwrap_or(0);
                    if seq > p.snapshot_seq {
                        return conflict(table, seq, "had an overlapping key inserted");
                    }
                }
            }
            TableWrite::DeleteKeys(atoms) if key_granular => {
                if h.coarse_seq > p.snapshot_seq {
                    return conflict(table, h.coarse_seq, "was rewritten");
                }
                // A pruned insert-key history may hide a matching insert;
                // a pruned delete history may hide an overlapping delete.
                if h.pruned_floor > p.snapshot_seq {
                    return conflict(table, h.pruned_floor, "key history was pruned");
                }
                if h.delete_floor > p.snapshot_seq {
                    return conflict(table, h.delete_floor, "delete history was pruned");
                }
                for (col, value) in atoms {
                    // A concurrent insert of a matching row: replaying the
                    // delete would remove a row its fork never saw.
                    for (key, &seq) in &h.keys {
                        if seq > p.snapshot_seq && key.get(*col) == Some(value) {
                            return conflict(table, seq, "had a matching row inserted");
                        }
                    }
                    // A concurrent point delete is disjoint only when it
                    // names the same column with a different value.
                    for ((dcol, dval), &seq) in &h.deletes {
                        if seq > p.snapshot_seq && (dcol != col || dval == value) {
                            return conflict(table, seq, "had an overlapping delete");
                        }
                    }
                }
            }
            _ => {
                if h.last_seq > p.snapshot_seq {
                    return conflict(table, h.last_seq, "was modified");
                }
            }
        }
    }
    apply_ops(&mut live.engine, &p.ops)?;
    live.commit_seq += 1;
    let seq = live.commit_seq;
    for (table, write) in &p.write_set {
        let h = live.history.entry(table.clone()).or_default();
        match write {
            TableWrite::Keys(keys) if key_granular => h.record_keys(keys, seq),
            TableWrite::DeleteKeys(atoms) if key_granular => h.record_delete_keys(atoms, seq),
            _ => h.record_coarse(seq),
        }
    }
    Ok(())
}

/// Replay a transaction's statements inside a WAL transaction on the
/// live engine. On any statement error the transaction is rolled back
/// (best-effort on a crashed disk — recovery handles the rest).
fn apply_ops(engine: &mut Engine, ops: &[ReplayOp]) -> Result<(), DbError> {
    engine.begin()?;
    for op in ops {
        let r = match op {
            ReplayOp::Sql(sql) => engine.execute(sql).map(|_| ()),
            ReplayOp::Prepared { sql, params } => {
                let id = engine.prepare(sql)?;
                let r = engine.execute_prepared(id, params).map(|_| ());
                let _ = engine.deallocate(id);
                r
            }
            ReplayOp::Rows { table, rows } => engine.insert_rows(table, rows.clone()).map(|_| ()),
            ReplayOp::Script(sql) => engine.execute_script(sql).map(|_| ()),
        };
        if let Err(e) = r {
            let _ = engine.rollback();
            return Err(e);
        }
    }
    engine.commit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> SharedEngine {
        let mut db = Engine::new();
        db.execute("CREATE TABLE kv (k int, v int)").unwrap();
        db.execute("INSERT INTO kv VALUES (1, 10), (2, 20)")
            .unwrap();
        SharedEngine::new(db)
    }

    fn dump(s: &mut DbSession) -> Vec<Vec<Value>> {
        s.execute("SELECT k, v FROM kv ORDER BY k").unwrap().rows
    }

    #[test]
    fn snapshot_reader_does_not_see_concurrent_commit() {
        let shared = seeded();
        let mut reader = shared.session();
        let mut writer = shared.session();
        let before = dump(&mut reader);
        writer.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        assert_eq!(
            dump(&mut reader),
            before,
            "snapshot must not see the new row"
        );
        assert_eq!(dump(&mut writer).len(), 3, "writer sees its own commit");
        reader.refresh().unwrap();
        assert_eq!(dump(&mut reader).len(), 3, "refresh picks up the commit");
    }

    #[test]
    fn first_committer_wins_on_the_same_table() {
        // A state-dependent write (a multi-conjunct DELETE stays coarse)
        // races a literal insert: the second committer must lose at table
        // granularity.
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        b.execute("DELETE FROM kv WHERE k = 1 AND v = 10").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(
            matches!(err, DbError::WriteConflict(_)),
            "second committer must lose: {err}"
        );
        assert_eq!(b.conflicts(), 1);
        // Retry on the fresh snapshot succeeds.
        b.begin().unwrap();
        b.execute("DELETE FROM kv WHERE k = 1 AND v = 10").unwrap();
        b.commit().unwrap();
        assert_eq!(dump(&mut b).len(), 2);
    }

    /// A point delete and a literal insert of a non-matching row commute:
    /// neither commit may conflict, and both effects land.
    #[test]
    fn point_delete_commutes_with_disjoint_insert() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        b.execute("DELETE FROM kv WHERE k = 1").unwrap();
        a.commit().unwrap();
        b.commit().expect("k=3 insert and k=1 delete commute");
        let mut check = shared.session();
        assert_eq!(
            dump(&mut check),
            vec![
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(3), Value::Int(30)],
            ]
        );
    }

    /// A point delete must lose to a concurrent insert of a matching row:
    /// replaying the delete would remove a row its fork never saw.
    #[test]
    fn point_delete_conflicts_with_matching_insert() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (1, 99)").unwrap();
        b.execute("DELETE FROM kv WHERE k = 1").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// Point deletes naming the same column with different values target
    /// provably disjoint rows and commute.
    #[test]
    fn point_deletes_on_distinct_values_commute() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("DELETE FROM kv WHERE k = 1").unwrap();
        b.execute("DELETE FROM kv WHERE k = 2").unwrap();
        a.commit().unwrap();
        b.commit().expect("k=1 and k=2 deletes commute");
        let mut check = shared.session();
        assert!(dump(&mut check).is_empty());
    }

    /// Point deletes on *different* columns may target the same row, so
    /// they cannot be proven disjoint and must conflict.
    #[test]
    fn point_deletes_on_different_columns_conflict() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("DELETE FROM kv WHERE k = 1").unwrap();
        b.execute("DELETE FROM kv WHERE v = 20").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// The ablation toggle also coarsens point deletes.
    #[test]
    fn table_granularity_toggle_coarsens_point_deletes() {
        let shared = seeded();
        shared.set_key_granular(false);
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("DELETE FROM kv WHERE k = 1").unwrap();
        b.execute("DELETE FROM kv WHERE k = 2").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// Regression (key-granular validation): commuting literal inserts
    /// into the same table no longer raise `WriteConflict`.
    #[test]
    fn commuting_inserts_into_same_table_do_not_conflict() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        b.execute("INSERT INTO kv VALUES (4, 40)").unwrap();
        a.commit().unwrap();
        b.commit().expect("disjoint-key inserts commute");
        assert_eq!(a.conflicts() + b.conflicts(), 0);
        let mut check = shared.session();
        assert_eq!(dump(&mut check).len(), 4);
    }

    /// The ablation toggle restores PR-8 table granularity: the same
    /// disjoint-key schedule conflicts again.
    #[test]
    fn table_granularity_toggle_restores_old_conflicts() {
        let shared = seeded();
        shared.set_key_granular(false);
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        b.execute("INSERT INTO kv VALUES (4, 40)").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// Overlapping keys still conflict: a key-level observer could
    /// otherwise distinguish commit orders.
    #[test]
    fn overlapping_keys_conflict() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        b.execute("INSERT INTO kv VALUES (3, 30)").unwrap();
        a.commit().unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// A coarse rewrite (TRUNCATE) since the snapshot kills a literal
    /// insert even under key granularity: replaying the insert after the
    /// rewrite is serial, but the coarse writer's own validation story
    /// depends on the table version, so inserts stay conservative here.
    #[test]
    fn coarse_write_conflicts_literal_insert() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        b.begin().unwrap();
        b.execute("INSERT INTO kv VALUES (5, 50)").unwrap();
        a.execute("TRUNCATE TABLE kv").unwrap();
        let err = b.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// Reads stay table-granular: a snapshot read of a table invalidates
    /// against even a commuting insert into it (the replayed transaction
    /// must see exactly the table states its fork saw).
    #[test]
    fn reads_invalidate_against_commuting_inserts() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        a.execute("SELECT k, v FROM kv").unwrap();
        a.execute("INSERT INTO kv VALUES (7, 70)").unwrap();
        b.execute("INSERT INTO kv VALUES (8, 80)").unwrap();
        let err = a.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)), "{err}");
    }

    /// `insert_rows` batches ride the same key-granular path as SQL
    /// inserts, in transactions and in autocommit.
    #[test]
    fn insert_rows_batches_commute() {
        let shared = seeded();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        let rows_a: Vec<Tuple> = (0..10)
            .map(|i| vec![Value::Int(100 + i), Value::Int(i)])
            .collect();
        let rows_b: Vec<Tuple> = (0..10)
            .map(|i| vec![Value::Int(200 + i), Value::Int(i)])
            .collect();
        assert_eq!(a.insert_rows("kv", rows_a).unwrap(), 10);
        assert_eq!(b.insert_rows("kv", rows_b).unwrap(), 10);
        a.commit().unwrap();
        b.commit().expect("disjoint insert_rows batches commute");
        let mut check = shared.session();
        assert_eq!(dump(&mut check).len(), 22);
    }

    /// A pruned key history fails conservative, never unsound: after the
    /// FIFO cap evicts entries, an insert from a pre-pruning snapshot
    /// conflicts even with keys nobody touched.
    #[test]
    fn pruned_key_history_is_conservative() {
        let mut h = TableHistory::default();
        let keys: BTreeSet<Tuple> = (0..KEY_HISTORY_CAP as i64 + 10)
            .map(|i| vec![Value::Int(i)])
            .collect();
        h.record_keys(&keys, 5);
        assert!(h.pruned_floor >= 5, "cap exceeded, floor must rise");
        assert!(h.keys.len() <= KEY_HISTORY_CAP);
    }

    #[test]
    fn read_set_participates_in_validation() {
        let shared = seeded();
        let mut db = shared.session();
        db.execute("CREATE TABLE sums (total int)").unwrap();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        // a reads kv, then writes a derived value into sums.
        a.execute("SELECT k, v FROM kv").unwrap();
        a.execute("INSERT INTO sums VALUES (30)").unwrap();
        // b commits a change to kv first: a's read is now stale.
        b.execute("INSERT INTO kv VALUES (9, 90)").unwrap();
        let err = a.commit().unwrap_err();
        assert!(matches!(err, DbError::WriteConflict(_)));
    }

    #[test]
    fn disjoint_tables_commit_without_conflict() {
        let shared = seeded();
        let mut setup = shared.session();
        setup.execute("CREATE TABLE other (x int)").unwrap();
        let mut a = shared.session();
        let mut b = shared.session();
        a.begin().unwrap();
        b.begin().unwrap();
        a.execute("INSERT INTO kv VALUES (5, 50)").unwrap();
        b.execute("INSERT INTO other VALUES (1)").unwrap();
        a.commit().unwrap();
        b.commit().unwrap();
        assert_eq!(a.conflicts() + b.conflicts(), 0);
    }

    #[test]
    fn poisoned_transaction_requires_rollback() {
        let shared = seeded();
        let mut s = shared.session();
        s.begin().unwrap();
        assert!(s.execute("INSERT INTO nosuch VALUES (1)").is_err());
        assert!(matches!(
            s.execute("SELECT k FROM kv"),
            Err(DbError::Txn(_))
        ));
        assert!(matches!(s.commit(), Err(DbError::Txn(_))));
        // After the failed commit the session is usable again.
        assert_eq!(dump(&mut s).len(), 2);
    }

    #[test]
    fn prepared_statements_replay_at_commit() {
        let shared = seeded();
        let mut s = shared.session();
        let ins = s.prepare("INSERT INTO kv VALUES (?, ?)").unwrap();
        s.begin().unwrap();
        s.execute_prepared(&ins, &[Value::Int(7), Value::Int(70)])
            .unwrap();
        s.execute_prepared(&ins, &[Value::Int(8), Value::Int(80)])
            .unwrap();
        s.commit().unwrap();
        let mut check = shared.session();
        assert_eq!(dump(&mut check).len(), 4);
    }

    #[test]
    fn group_commit_batches_fsyncs_under_contention() {
        let shared = seeded();
        const SESSIONS: usize = 4;
        const TXNS: usize = 25;
        std::thread::scope(|scope| {
            for t in 0..SESSIONS {
                let shared = shared.clone();
                scope.spawn(move || {
                    let mut s = shared.session();
                    for i in 0..TXNS {
                        let k = 1000 + (t * TXNS + i) as i64;
                        s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)"))
                            .unwrap();
                    }
                });
            }
        });
        let m = shared.metrics();
        let commits = SESSIONS as u64 * TXNS as u64;
        let fsyncs = m.counter_value("wal.fsyncs");
        assert_eq!(m.counter_value("wal.group_committed_txns"), commits);
        assert!(
            fsyncs <= commits,
            "group commit must never fsync more than once per commit \
             ({fsyncs} fsyncs for {commits} commits)"
        );
        let mut check = shared.session();
        assert_eq!(dump(&mut check).len(), 2 + commits as usize);
    }

    #[test]
    fn session_metrics_are_labelled() {
        let shared = seeded();
        let mut s = shared.session();
        let id = s.id();
        dump(&mut s);
        let m = s.metrics();
        assert!(m.counter_value(&format!("session{id}.exec.tuples_scanned")) > 0);
    }
}
