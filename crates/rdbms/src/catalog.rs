//! Table and index catalog.

use crate::buffer::BufferPool;
use crate::disk::Disk;
use crate::heap::HeapFile;
use crate::index::HashIndex;
use crate::schema::Schema;
use crate::stats::TableStats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything the engine knows about one table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub heap: HeapFile,
    pub indexes: Vec<HashIndex>,
    /// Temporary tables are runtime scratch relations (the LFP loop's
    /// per-iteration deltas); they are listed separately in stats and
    /// dropped wholesale by `drop_temp_tables`.
    pub is_temp: bool,
    /// Planner statistics. Stored inside the `Arc<Table>` entry, so an
    /// MVCC fork snapshots them together with the data they describe.
    pub stats: TableStats,
}

/// Errors surfaced by catalog operations (and re-used by the SQL layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    TableExists(String),
    NoSuchTable(String),
    NoSuchColumn(String),
    NoSuchIndex(String),
    IndexExists(String),
    TypeMismatch(String),
    Parse(String),
    Plan(String),
    Io(String),
    /// A stored page or tuple failed to decode: the database is damaged
    /// (or a fault-injection test tore a write). Surfaced as an error so
    /// callers can attempt recovery instead of aborting the process.
    Corruption(String),
    /// Transaction-protocol misuse (nested begin, commit without begin).
    Txn(String),
    /// The statement's execution governor tripped: canceled, past its
    /// deadline, or over a row/memory budget. The engine itself is
    /// healthy; the statement was abandoned cooperatively.
    Budget(crate::governor::BudgetBreach),
    /// First-committer-wins validation failed: another session committed
    /// a change to a table in this transaction's read/write set after
    /// the transaction took its snapshot. The transaction was rolled
    /// back; the caller should retry it on a fresh snapshot.
    WriteConflict(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            DbError::IndexExists(i) => write!(f, "index already exists: {i}"),
            DbError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Plan(m) => write!(f, "planning error: {m}"),
            DbError::Io(m) => write!(f, "I/O error: {m}"),
            DbError::Corruption(m) => write!(f, "corruption detected: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Budget(b) => write!(f, "budget exceeded: {b}"),
            DbError::WriteConflict(m) => write!(f, "write conflict: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// The catalog maps lower-cased table names to [`Table`] entries. A
/// `BTreeMap` keeps listing deterministic.
///
/// Entries are `Arc`-shared so cloning the catalog for an MVCC snapshot
/// ([`crate::engine::Engine::fork`]) costs O(#tables) pointer copies;
/// mutating a table on either side copies just that entry on write.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn create_table(
        &mut self,
        disk: &mut Disk,
        name: &str,
        schema: Schema,
        is_temp: bool,
    ) -> Result<(), DbError> {
        let key = norm(name);
        if self.tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let heap = HeapFile::create(disk);
        self.tables.insert(
            key,
            Arc::new(Table {
                name: name.to_string(),
                schema,
                heap,
                indexes: Vec::new(),
                is_temp,
                stats: TableStats::default(),
            }),
        );
        Ok(())
    }

    pub fn drop_table(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        name: &str,
    ) -> Result<(), DbError> {
        match self.tables.remove(&norm(name)) {
            Some(table) => {
                table.heap.clone().destroy(disk, pool);
                Ok(())
            }
            None => Err(DbError::NoSuchTable(name.to_string())),
        }
    }

    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(&norm(name))
            .map(|t| &**t)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(&norm(name))
            .map(Arc::make_mut)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Remove a table entry *without* destroying its heap file. Used by
    /// the transaction layer: a `DROP TABLE` inside a transaction keeps
    /// the `Table` alive so rollback can put it back.
    pub fn take_table(&mut self, name: &str) -> Result<Table, DbError> {
        self.tables
            .remove(&norm(name))
            .map(|t| Arc::try_unwrap(t).unwrap_or_else(|t| (*t).clone()))
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Re-insert a table previously removed with [`Catalog::take_table`].
    pub fn restore_table(&mut self, table: Table) {
        self.tables.insert(norm(&table.name), Arc::new(table));
    }

    /// Mutable iteration over all tables (used to rebuild volatile state
    /// after recovery).
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Table> {
        self.tables.values_mut().map(Arc::make_mut)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&norm(name))
    }

    /// Create an index on `table` over `columns` and backfill it from the
    /// current table contents. `ordered` selects the range-capable
    /// directory.
    pub fn create_index(
        &mut self,
        disk: &mut Disk,
        pool: &mut BufferPool,
        index_name: &str,
        table_name: &str,
        columns: &[String],
        ordered: bool,
    ) -> Result<(), DbError> {
        if self.find_index(index_name).is_some() {
            return Err(DbError::IndexExists(index_name.to_string()));
        }
        let table = self.table_mut(table_name)?;
        let mut key_cols = Vec::with_capacity(columns.len());
        for c in columns {
            key_cols.push(
                table
                    .schema
                    .index_of(c)
                    .ok_or_else(|| DbError::NoSuchColumn(c.clone()))?,
            );
        }
        let mut index = if ordered {
            HashIndex::new_ordered(index_name.to_ascii_lowercase(), key_cols)
        } else {
            HashIndex::new(index_name.to_ascii_lowercase(), key_cols)
        };
        let mut scan = table.heap.scan();
        while let Some((rid, payload)) = scan.next(disk, pool)? {
            let tuple = crate::schema::deserialize_tuple(&payload).ok_or_else(|| {
                DbError::Corruption(format!(
                    "table {table_name}: stored tuple at {rid:?} does not deserialize"
                ))
            })?;
            index.insert(&tuple, rid);
        }
        table.indexes.push(index);
        Ok(())
    }

    pub fn drop_index(&mut self, index_name: &str) -> Result<(), DbError> {
        let key = index_name.to_ascii_lowercase();
        for table in self.tables.values_mut() {
            if let Some(pos) = table.indexes.iter().position(|i| i.name() == key) {
                Arc::make_mut(table).indexes.remove(pos);
                return Ok(());
            }
        }
        Err(DbError::NoSuchIndex(index_name.to_string()))
    }

    /// The table owning the named index, if any.
    pub fn find_index(&self, index_name: &str) -> Option<&Table> {
        let key = index_name.to_ascii_lowercase();
        self.tables
            .values()
            .find(|t| t.indexes.iter().any(|i| i.name() == key))
            .map(|t| &**t)
    }

    /// Names of all tables (deterministic order).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name.as_str()).collect()
    }

    /// Drop every temp table, returning how many were dropped.
    pub fn drop_temp_tables(&mut self, disk: &mut Disk, pool: &mut BufferPool) -> usize {
        let names: Vec<String> = self
            .tables
            .values()
            .filter(|t| t.is_temp)
            .map(|t| t.name.clone())
            .collect();
        for name in &names {
            let _ = self.drop_table(disk, pool, name);
        }
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::serialize_tuple;
    use crate::value::{ColType, Value};

    fn setup() -> (Disk, BufferPool, Catalog) {
        (Disk::new(), BufferPool::new(8), Catalog::new())
    }

    fn two_col_schema() -> Schema {
        Schema::from_pairs(&[("a", ColType::Int), ("b", ColType::Str)])
    }

    #[test]
    fn create_and_lookup_table() {
        let (mut disk, _pool, mut cat) = setup();
        cat.create_table(&mut disk, "Parent", two_col_schema(), false)
            .unwrap();
        assert!(cat.has_table("parent"));
        assert!(cat.has_table("PARENT"));
        assert_eq!(cat.table("parent").unwrap().name, "Parent");
        assert_eq!(
            cat.create_table(&mut disk, "parent", two_col_schema(), false),
            Err(DbError::TableExists("parent".to_string()))
        );
    }

    #[test]
    fn drop_table_removes_and_errors_when_missing() {
        let (mut disk, mut pool, mut cat) = setup();
        cat.create_table(&mut disk, "t", two_col_schema(), false)
            .unwrap();
        cat.drop_table(&mut disk, &mut pool, "T").unwrap();
        assert!(!cat.has_table("t"));
        assert!(matches!(
            cat.drop_table(&mut disk, &mut pool, "t"),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let (mut disk, mut pool, mut cat) = setup();
        cat.create_table(&mut disk, "t", two_col_schema(), false)
            .unwrap();
        {
            let t = cat.table_mut("t").unwrap();
            let rows = [
                vec![Value::Int(1), Value::from("x")],
                vec![Value::Int(1), Value::from("y")],
                vec![Value::Int(2), Value::from("z")],
            ];
            for row in &rows {
                let payload = serialize_tuple(row);
                t.heap.insert(&mut disk, &mut pool, &payload).unwrap();
            }
        }
        cat.create_index(&mut disk, &mut pool, "t_a", "t", &["a".to_string()], false)
            .unwrap();
        let t = cat.table_mut("t").unwrap();
        assert_eq!(t.indexes.len(), 1);
        assert_eq!(t.indexes[0].lookup(&[Value::Int(1)]).len(), 2);
        assert_eq!(t.indexes[0].lookup(&[Value::Int(2)]).len(), 1);
    }

    #[test]
    fn duplicate_or_bad_index_rejected() {
        let (mut disk, mut pool, mut cat) = setup();
        cat.create_table(&mut disk, "t", two_col_schema(), false)
            .unwrap();
        cat.create_index(&mut disk, &mut pool, "i", "t", &["a".to_string()], false)
            .unwrap();
        assert!(matches!(
            cat.create_index(&mut disk, &mut pool, "i", "t", &["b".to_string()], false),
            Err(DbError::IndexExists(_))
        ));
        assert!(matches!(
            cat.create_index(&mut disk, &mut pool, "j", "t", &["zz".to_string()], false),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn drop_index_by_name() {
        let (mut disk, mut pool, mut cat) = setup();
        cat.create_table(&mut disk, "t", two_col_schema(), false)
            .unwrap();
        cat.create_index(&mut disk, &mut pool, "i", "t", &["a".to_string()], false)
            .unwrap();
        assert!(cat.find_index("I").is_some());
        cat.drop_index("i").unwrap();
        assert!(cat.find_index("i").is_none());
        assert!(matches!(cat.drop_index("i"), Err(DbError::NoSuchIndex(_))));
    }

    #[test]
    fn drop_temp_tables_only_touches_temps() {
        let (mut disk, mut pool, mut cat) = setup();
        cat.create_table(&mut disk, "base", two_col_schema(), false)
            .unwrap();
        cat.create_table(&mut disk, "tmp1", two_col_schema(), true)
            .unwrap();
        cat.create_table(&mut disk, "tmp2", two_col_schema(), true)
            .unwrap();
        assert_eq!(cat.drop_temp_tables(&mut disk, &mut pool), 2);
        assert!(cat.has_table("base"));
        assert!(!cat.has_table("tmp1"));
    }
}
