//! Physical planner: consumes the bound, rewritten query block produced by
//! [`crate::rewrite`] and makes the physical decisions — join order, join
//! method, access path — from the cost model in [`crate::cost`].
//!
//! The planner implements the access-path and join decisions the paper's
//! experiments depend on:
//!
//! * **Index selection** — a relation restricted by constant equalities on
//!   all key columns of some index is read with an index lookup instead of a
//!   scan. This is why `t_extract` and `t_read` stay flat as the stored rule
//!   base / dictionary grows (Figures 7 and 9).
//! * **Index nested-loop vs hash joins** — when the relation being joined in
//!   has an index covering the join columns, the planner costs probing that
//!   index per outer row against building the inner side into a hash table,
//!   using live cardinality estimates (Figure 8's join-selectivity
//!   sensitivity; Figure 12's accumulated-relation joins).
//! * **Cost-based join ordering** — exhaustive for 2–3 way joins, greedy
//!   beyond, driven by per-column statistics instead of flat selectivity
//!   constants.
//!
//! [`PlannerMode::Heuristic`] reproduces the legacy planner (flat `1/20`
//! selectivities, greedy smallest-first order, index-if-usable joins) as the
//! ablation baseline for `experiments optimizer`.

use crate::catalog::{Catalog, DbError};
use crate::cost::{self, PlannerMode};
use crate::rewrite::{
    self, resolve_col, Binding, LocalCond, Resolved, ResolvedCond, RewriteReport,
};
use crate::sql::ast::*;
use crate::value::{ColType, Value};

/// A resolved condition over a flat row layout (column positions are
/// absolute offsets into the combined row).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecCond {
    ColCmpCol(usize, CmpOp, usize),
    ColCmpLit(usize, CmpOp, Value),
    /// Column compared against the `?` placeholder with the given ordinal;
    /// the value is taken from the parameter vector at execution time.
    ColCmpParam(usize, CmpOp, usize),
    InList(usize, Vec<Value>),
}

/// One component of an index-lookup key: a literal fixed at plan time, or a
/// parameter resolved against the bind vector at execution time. Keeping
/// parameters in keys lets `col = ?` predicates retain their index access
/// path across executions of a cached plan.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyExpr {
    Lit(Value),
    Param(usize),
}

impl std::fmt::Display for KeyExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyExpr::Lit(v) => write!(f, "{v}"),
            KeyExpr::Param(p) => write!(f, "?{p}"),
        }
    }
}

/// A resolved projection expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjExpr {
    Col(usize),
    Lit(Value),
}

/// Physical plan operators.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Full scan of a base table with pushed-down filters (positions are
    /// local to the table's schema).
    SeqScan {
        table: String,
        filters: Vec<ExecCond>,
    },
    /// Exact-match index lookup; `residual` filters run on fetched rows.
    IndexLookup {
        table: String,
        index_pos: usize,
        key: Vec<KeyExpr>,
        residual: Vec<ExecCond>,
    },
    /// Hash join on equi-key columns; `residual` runs on joined rows using
    /// combined-layout positions.
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Vec<ExecCond>,
    },
    /// Index nested-loop join: rows from `left` probe `index_pos` on
    /// `table`; `left_keys` are positions in the left layout, aligned with
    /// the index key columns. `inner_filters` use the inner table's local
    /// positions; `residual` uses combined positions.
    IndexNlJoin {
        left: Box<PhysPlan>,
        table: String,
        index_pos: usize,
        left_keys: Vec<usize>,
        inner_filters: Vec<ExecCond>,
        residual: Vec<ExecCond>,
    },
    /// Cartesian product with post-filters (combined positions).
    CrossJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        residual: Vec<ExecCond>,
    },
    /// Range scan over an ordered index: record ids whose key is within
    /// the bounds, with residual filters on fetched rows (local positions).
    IndexRange {
        table: String,
        index_pos: usize,
        lo: std::ops::Bound<Value>,
        hi: std::ops::Bound<Value>,
        residual: Vec<ExecCond>,
    },
    /// Anti-join implementing `NOT EXISTS`: child rows survive iff no row
    /// of `table` (after `inner_filters`, local positions) matches them on
    /// `outer_keys` = `inner_keys`. With no correlation keys the semantics
    /// degenerate to "inner relation empty". When `index_pos` is set, the
    /// correlation keys cover exactly that index's key and there are no
    /// inner filters: the executor probes the index per outer row instead
    /// of materializing the inner side.
    AntiJoin {
        child: Box<PhysPlan>,
        table: String,
        inner_filters: Vec<ExecCond>,
        outer_keys: Vec<usize>,
        inner_keys: Vec<usize>,
        index_pos: Option<usize>,
    },
    /// Row filter over any child (combined positions) — the fallback for
    /// residual conditions whose child operator has no residual slot.
    Filter {
        child: Box<PhysPlan>,
        conds: Vec<ExecCond>,
    },
    Project {
        child: Box<PhysPlan>,
        exprs: Vec<ProjExpr>,
    },
    Distinct {
        child: Box<PhysPlan>,
    },
    Sort {
        child: Box<PhysPlan>,
        keys: Vec<usize>,
    },
    CountStar {
        child: Box<PhysPlan>,
    },
    /// Hash aggregation for `SELECT <cols>, COUNT(*) ... GROUP BY <cols>`:
    /// emits one row per distinct key (combined-layout positions) with the
    /// group count appended.
    GroupCount {
        child: Box<PhysPlan>,
        keys: Vec<usize>,
    },
    UnionAll {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
    },
    UnionDistinct {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
    },
    Except {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// Render the operator tree as an indented EXPLAIN listing.
    pub fn explain(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut Vec<String>) {
        out.push(format!("{}{}", "  ".repeat(depth), self.label()));
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// One-line operator description — the unindented EXPLAIN line, also
    /// used to label nodes in the EXPLAIN ANALYZE profile.
    pub fn label(&self) -> String {
        let fmt_conds = |conds: &[ExecCond]| -> String {
            if conds.is_empty() {
                String::new()
            } else {
                format!(" [{} cond(s)]", conds.len())
            }
        };
        match self {
            PhysPlan::SeqScan { table, filters } => {
                format!("SeqScan {table}{}", fmt_conds(filters))
            }
            PhysPlan::IndexLookup {
                table,
                key,
                residual,
                ..
            } => {
                let key_str: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                format!(
                    "IndexLookup {table} key=({}){}",
                    key_str.join(", "),
                    fmt_conds(residual)
                )
            }
            PhysPlan::IndexRange {
                table,
                lo,
                hi,
                residual,
                ..
            } => {
                format!("IndexRange {table} {lo:?}..{hi:?}{}", fmt_conds(residual))
            }
            PhysPlan::HashJoin {
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                format!(
                    "HashJoin on {left_keys:?}={right_keys:?}{}",
                    fmt_conds(residual)
                )
            }
            PhysPlan::IndexNlJoin {
                table,
                left_keys,
                residual,
                ..
            } => {
                format!(
                    "IndexNlJoin probe {table} keys={left_keys:?}{}",
                    fmt_conds(residual)
                )
            }
            PhysPlan::CrossJoin { residual, .. } => format!("CrossJoin{}", fmt_conds(residual)),
            PhysPlan::AntiJoin {
                table,
                outer_keys,
                inner_keys,
                inner_filters,
                index_pos,
                ..
            } => {
                let via = match index_pos {
                    Some(i) => format!(" probe index #{i}"),
                    None => String::new(),
                };
                format!(
                    "AntiJoin {table} on {outer_keys:?}={inner_keys:?}{via}{}",
                    fmt_conds(inner_filters)
                )
            }
            PhysPlan::Filter { conds, .. } => format!("Filter{}", fmt_conds(conds)),
            PhysPlan::Project { exprs, .. } => format!("Project [{} col(s)]", exprs.len()),
            PhysPlan::Distinct { .. } => "Distinct".to_string(),
            PhysPlan::Sort { keys, .. } => format!("Sort by {keys:?}"),
            PhysPlan::CountStar { .. } => "CountStar".to_string(),
            PhysPlan::GroupCount { keys, .. } => format!("GroupCount by {keys:?}"),
            PhysPlan::UnionAll { .. } => "UnionAll".to_string(),
            PhysPlan::UnionDistinct { .. } => "UnionDistinct".to_string(),
            PhysPlan::Except { .. } => "Except".to_string(),
        }
    }

    /// The operator's direct inputs, in execution order.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::SeqScan { .. }
            | PhysPlan::IndexLookup { .. }
            | PhysPlan::IndexRange { .. } => Vec::new(),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::CrossJoin { left, right, .. }
            | PhysPlan::UnionAll { left, right }
            | PhysPlan::UnionDistinct { left, right }
            | PhysPlan::Except { left, right } => vec![left, right],
            PhysPlan::IndexNlJoin { left, .. } => vec![left],
            PhysPlan::AntiJoin { child, .. }
            | PhysPlan::Filter { child, .. }
            | PhysPlan::Project { child, .. }
            | PhysPlan::Distinct { child }
            | PhysPlan::Sort { child, .. }
            | PhysPlan::CountStar { child }
            | PhysPlan::GroupCount { child, .. } => vec![child],
        }
    }
}

/// One statistics dependency of a plan: what the planner believed about a
/// referenced table when it made its decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatDep {
    /// Canonical table name.
    pub table: String,
    /// Live tuple count at plan time.
    pub rows: u64,
    /// [`crate::stats::TableStats::version`] at plan time.
    pub stats_version: u64,
}

/// A planned query: the operator tree plus output column names, the
/// statistics snapshot the plan was derived from, and per-operator row
/// estimates.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    pub plan: PhysPlan,
    pub columns: Vec<String>,
    /// One entry per referenced table (FROM relations and `NOT EXISTS`
    /// inner tables, deduplicated), snapshotted at plan time. The engine
    /// compares these against live state before reusing a cached plan and
    /// re-plans when the tuple count drifts ≥2× in either direction or the
    /// table's statistics version changed — the fix for join orders frozen
    /// while LFP temporaries were still empty.
    pub stat_deps: Vec<StatDep>,
    /// Estimated output rows per operator in pre-order — the order
    /// [`PhysPlan::explain`] lists operators and the EXPLAIN ANALYZE
    /// profiler records them, so estimate and measurement zip by index.
    pub est_rows: Vec<u64>,
    /// Rewrite-rule application counts for this plan (summed over the arms
    /// of compound queries).
    pub rewrites: RewriteReport,
}

impl PlannedQuery {
    fn new(plan: PhysPlan, columns: Vec<String>) -> Self {
        PlannedQuery {
            plan,
            columns,
            stat_deps: Vec::new(),
            est_rows: Vec::new(),
            rewrites: RewriteReport::default(),
        }
    }
}

/// Plan a (possibly compound) query.
pub fn plan_query(
    catalog: &Catalog,
    query: &Query,
    mode: PlannerMode,
) -> Result<PlannedQuery, DbError> {
    let mut planned = plan_query_inner(catalog, query, mode)?;
    planned.est_rows = cost::estimate_plan(catalog, &planned.plan);
    Ok(planned)
}

fn plan_query_inner(
    catalog: &Catalog,
    query: &Query,
    mode: PlannerMode,
) -> Result<PlannedQuery, DbError> {
    match query {
        Query::Select(block) => plan_select(catalog, block, mode),
        Query::Union { left, right, all } => {
            let l = plan_query_inner(catalog, left, mode)?;
            let r = plan_query_inner(catalog, right, mode)?;
            check_compatible(&l, &r, "UNION")?;
            let (lp, rp) = (l.plan.clone(), r.plan.clone());
            let plan = if *all {
                PhysPlan::UnionAll {
                    left: Box::new(lp),
                    right: Box::new(rp),
                }
            } else {
                PhysPlan::UnionDistinct {
                    left: Box::new(lp),
                    right: Box::new(rp),
                }
            };
            Ok(merge_compound(plan, l, r))
        }
        Query::Except { left, right } => {
            let l = plan_query_inner(catalog, left, mode)?;
            let r = plan_query_inner(catalog, right, mode)?;
            check_compatible(&l, &r, "EXCEPT")?;
            let plan = PhysPlan::Except {
                left: Box::new(l.plan.clone()),
                right: Box::new(r.plan.clone()),
            };
            Ok(merge_compound(plan, l, r))
        }
    }
}

/// Combine the planned arms of a compound query: union their statistics
/// dependencies (deduplicated by table) and sum their rewrite reports.
fn merge_compound(plan: PhysPlan, l: PlannedQuery, r: PlannedQuery) -> PlannedQuery {
    let mut out = PlannedQuery::new(plan, l.columns);
    out.stat_deps = l.stat_deps;
    for d in r.stat_deps {
        if !out.stat_deps.iter().any(|e| e.table == d.table) {
            out.stat_deps.push(d);
        }
    }
    out.rewrites = l.rewrites;
    out.rewrites.absorb(r.rewrites);
    out
}

fn check_compatible(l: &PlannedQuery, r: &PlannedQuery, op: &str) -> Result<(), DbError> {
    if l.columns.len() != r.columns.len() {
        return Err(DbError::Plan(format!(
            "{op} arms have different arities ({} vs {})",
            l.columns.len(),
            r.columns.len()
        )));
    }
    Ok(())
}

/// One relation's contribution to the combined row layout of the join
/// pipeline: which FROM relation, and which of its columns survive (in
/// order). Projection pruning narrows `cols`; without pruning it is the
/// full `0..arity` range.
struct LayoutEntry {
    rel: usize,
    cols: Vec<usize>,
}

/// Absolute position of a resolved column in the current join layout.
fn pos_of(layout: &[LayoutEntry], r: Resolved) -> usize {
    let mut offset = 0;
    for e in layout {
        if e.rel == r.rel {
            let within = e
                .cols
                .iter()
                .position(|&c| c == r.col)
                .expect("column preserved by projection pruning");
            return offset + within;
        }
        offset += e.cols.len();
    }
    unreachable!("column's relation not yet in layout")
}

fn plan_select(
    catalog: &Catalog,
    block: &SelectBlock,
    mode: PlannerMode,
) -> Result<PlannedQuery, DbError> {
    // 1/2. Bind the FROM list and run the rewrite rules (predicate
    // pushdown, projection pruning).
    let rewrite::QueryBlock {
        bindings,
        local,
        joins,
        cross,
        anti,
        needed,
        report,
    } = rewrite::build_block(catalog, block)?;

    // Statistics snapshot for every referenced table.
    let mut stat_deps: Vec<StatDep> = Vec::new();
    for b in &bindings {
        push_stat_dep(catalog, &mut stat_deps, &b.table)?;
    }
    for (tref, _) in &anti {
        let name = catalog.table(&tref.table)?.name.clone();
        push_stat_dep(catalog, &mut stat_deps, &name)?;
    }

    // 3. Join order.
    let local_exec: Vec<Vec<ExecCond>> = local
        .iter()
        .map(|v| v.iter().map(local_to_exec).collect())
        .collect();
    let order = match mode {
        PlannerMode::Heuristic => join_order_heuristic(&bindings, &local, &joins),
        PlannerMode::CostBased => cost::join_order(catalog, &bindings, &local_exec, &joins),
    };

    // Columns each relation feeds into the join pipeline. Pruning is a
    // cost-mode rewrite; heuristic mode reproduces the legacy full-width
    // layouts.
    let kept_cols = |rel: usize| -> Vec<usize> {
        match (mode, &needed[rel]) {
            (PlannerMode::CostBased, Some(cols)) => cols.clone(),
            _ => (0..bindings[rel].schema.arity()).collect(),
        }
    };
    let prune_wrap = |rel: usize, p: PhysPlan| -> PhysPlan {
        match (mode, &needed[rel]) {
            (PlannerMode::CostBased, Some(cols)) => PhysPlan::Project {
                child: Box::new(p),
                exprs: cols.iter().map(|&c| ProjExpr::Col(c)).collect(),
            },
            _ => p,
        }
    };

    // 4/5/6. Build the join tree with access paths.
    let mut layout: Vec<LayoutEntry> = Vec::new();
    let mut plan: Option<PhysPlan> = None;
    let mut pending_joins = joins.clone();
    let mut pending_cross = cross;
    // Running cardinality estimate of the built side; drives the
    // index-NL-vs-hash choice in cost mode.
    let mut cur_est: f64 = 0.0;

    for &rel in &order {
        let rel_est = cost::est_table_rows(catalog, &bindings[rel].table, &local_exec[rel]);
        let next = if let Some(current) = plan.take() {
            // Join predicates between the current layout and `rel`, as
            // (outer, inner) resolved pairs.
            let mut pairs: Vec<(Resolved, Resolved)> = Vec::new();
            pending_joins.retain(|(a, b)| {
                let (inner, outer) = if a.rel == rel && layout.iter().any(|e| e.rel == b.rel) {
                    (a, b)
                } else if b.rel == rel && layout.iter().any(|e| e.rel == a.rel) {
                    (b, a)
                } else {
                    return true;
                };
                pairs.push((*outer, *inner));
                false
            });
            let left_keys: Vec<usize> = pairs.iter().map(|&(o, _)| pos_of(&layout, o)).collect();
            let right_keys: Vec<usize> = pairs.iter().map(|&(_, i)| i.col).collect();

            if left_keys.is_empty() {
                let right = prune_wrap(
                    rel,
                    access_path(catalog, &bindings, rel, &local[rel], mode)?,
                );
                cur_est = cur_est.max(0.05) * rel_est.max(0.05);
                layout.push(LayoutEntry {
                    rel,
                    cols: kept_cols(rel),
                });
                PhysPlan::CrossJoin {
                    left: Box::new(current),
                    right: Box::new(right),
                    residual: Vec::new(),
                }
            } else {
                let join_sel: f64 = pairs
                    .iter()
                    .map(|&(o, i)| {
                        cost::join_selectivity(
                            catalog,
                            (&bindings[o.rel].table, o.col),
                            (&bindings[i.rel].table, i.col),
                        )
                    })
                    .product();
                let index_choice = match usable_join_index(catalog, &bindings[rel], &right_keys) {
                    Some(pos) => {
                        let keep = match mode {
                            // Legacy behavior: probe whenever an index covers
                            // the join columns.
                            PlannerMode::Heuristic => true,
                            PlannerMode::CostBased => cost::prefer_index_nl(
                                catalog.table(&bindings[rel].table)?,
                                pos,
                                cur_est,
                                rel_est,
                            ),
                        };
                        keep.then_some(pos)
                    }
                    None => None,
                };
                cur_est = (cur_est.max(0.05) * rel_est.max(0.05) * join_sel).max(0.05);
                if let Some(index_pos) = index_choice {
                    // Reorder left keys to match the index key-column order,
                    // consuming one join pair per index key column.
                    let idx_cols = catalog.table(&bindings[rel].table)?.indexes[index_pos]
                        .key_cols()
                        .to_vec();
                    let mut used = vec![false; right_keys.len()];
                    let mut ordered_left = Vec::with_capacity(idx_cols.len());
                    for kc in &idx_cols {
                        let at = right_keys
                            .iter()
                            .enumerate()
                            .position(|(i, c)| !used[i] && c == kc)
                            .expect("covered");
                        used[at] = true;
                        ordered_left.push(left_keys[at]);
                    }
                    // Duplicate join predicates on the same inner column are
                    // not part of the probe key; they must still hold on the
                    // joined row, so they survive as residual equalities over
                    // the combined layout.
                    let left_width: usize = layout.iter().map(|e| e.cols.len()).sum();
                    let residual: Vec<ExecCond> = used
                        .iter()
                        .enumerate()
                        .filter(|&(_, consumed)| !consumed)
                        .map(|(i, _)| {
                            ExecCond::ColCmpCol(left_keys[i], CmpOp::Eq, left_width + right_keys[i])
                        })
                        .collect();
                    // The executor emits full inner tuples on a probe, so the
                    // inner side of an index NL join is never pruned.
                    layout.push(LayoutEntry {
                        rel,
                        cols: (0..bindings[rel].schema.arity()).collect(),
                    });
                    PhysPlan::IndexNlJoin {
                        left: Box::new(current),
                        table: bindings[rel].table.clone(),
                        index_pos,
                        left_keys: ordered_left,
                        inner_filters: local[rel].iter().map(local_to_exec).collect(),
                        residual,
                    }
                } else {
                    let right = prune_wrap(
                        rel,
                        access_path(catalog, &bindings, rel, &local[rel], mode)?,
                    );
                    let kept = kept_cols(rel);
                    // Probe keys are positions in the (possibly pruned) right
                    // layout; pruning always keeps join columns.
                    let right_keys: Vec<usize> = right_keys
                        .iter()
                        .map(|c| {
                            kept.iter()
                                .position(|k| k == c)
                                .expect("join key preserved by pruning")
                        })
                        .collect();
                    layout.push(LayoutEntry { rel, cols: kept });
                    PhysPlan::HashJoin {
                        left: Box::new(current),
                        right: Box::new(right),
                        left_keys,
                        right_keys,
                        residual: Vec::new(),
                    }
                }
            }
        } else {
            cur_est = rel_est;
            let base = prune_wrap(
                rel,
                access_path(catalog, &bindings, rel, &local[rel], mode)?,
            );
            layout.push(LayoutEntry {
                rel,
                cols: kept_cols(rel),
            });
            base
        };
        plan = Some(next);

        // Attach any cross-residual conditions that are now fully bound.
        let bound: Vec<ResolvedCond> = {
            let mut now = Vec::new();
            pending_cross.retain(|c| {
                let ResolvedCond::ColCmpCol(a, _, b) = c;
                if layout.iter().any(|e| e.rel == a.rel) && layout.iter().any(|e| e.rel == b.rel) {
                    now.push(c.clone());
                    false
                } else {
                    true
                }
            });
            now
        };
        if !bound.is_empty() {
            let conds: Vec<ExecCond> = bound
                .iter()
                .map(|ResolvedCond::ColCmpCol(a, op, b)| {
                    ExecCond::ColCmpCol(pos_of(&layout, *a), *op, pos_of(&layout, *b))
                })
                .collect();
            plan = Some(attach_residual(plan.take().expect("plan built"), conds));
        }
    }
    debug_assert!(pending_joins.is_empty(), "all equi-joins consumed");
    let mut plan = plan.expect("FROM list is non-empty");

    // Anti-joins for each NOT EXISTS conjunct.
    for (tref, conds) in anti {
        plan = plan_anti_join(catalog, &bindings, &layout, plan, tref, conds)?;
    }

    // 7/8. Grouped aggregation, or projection + DISTINCT + ORDER BY.
    let mut planned = if !block.group_by.is_empty() {
        plan_group_count(&bindings, &layout, block, plan)?
    } else {
        plan_select_output(&bindings, &layout, block, plan)?
    };
    planned.stat_deps = stat_deps;
    planned.rewrites = report;
    Ok(planned)
}

fn push_stat_dep(catalog: &Catalog, deps: &mut Vec<StatDep>, table: &str) -> Result<(), DbError> {
    if deps.iter().any(|d| d.table == table) {
        return Ok(());
    }
    let t = catalog.table(table)?;
    deps.push(StatDep {
        table: t.name.clone(),
        rows: t.heap.tuple_count(),
        stats_version: t.stats.version,
    });
    Ok(())
}

/// Sections 7'/8 of `plan_select`: projection, DISTINCT, ORDER BY.
fn plan_select_output(
    bindings: &[Binding],
    layout: &[LayoutEntry],
    block: &SelectBlock,
    mut plan: PhysPlan,
) -> Result<PlannedQuery, DbError> {
    let (exprs, columns, count_star) = resolve_projection(bindings, layout, &block.projections)?;
    if count_star {
        plan = PhysPlan::CountStar {
            child: Box::new(plan),
        };
        return Ok(PlannedQuery::new(plan, columns));
    }
    plan = PhysPlan::Project {
        child: Box::new(plan),
        exprs,
    };

    if block.distinct {
        plan = PhysPlan::Distinct {
            child: Box::new(plan),
        };
    }
    if !block.order_by.is_empty() {
        let mut keys = Vec::with_capacity(block.order_by.len());
        for cref in &block.order_by {
            let pos = columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&cref.column))
                .ok_or_else(|| {
                    DbError::Plan(format!("ORDER BY column not in output: {}", cref.column))
                })?;
            keys.push(pos);
        }
        plan = PhysPlan::Sort {
            child: Box::new(plan),
            keys,
        };
    }
    Ok(PlannedQuery::new(plan, columns))
}

fn local_to_exec(c: &LocalCond) -> ExecCond {
    match c {
        LocalCond::ColCmpCol(a, op, b) => ExecCond::ColCmpCol(*a, *op, *b),
        LocalCond::ColCmpLit(a, op, v) => ExecCond::ColCmpLit(*a, *op, v.clone()),
        LocalCond::ColCmpParam(a, op, p) => ExecCond::ColCmpParam(*a, *op, *p),
        LocalCond::InList(a, vs) => ExecCond::InList(*a, vs.clone()),
    }
}

fn attach_residual(plan: PhysPlan, mut conds: Vec<ExecCond>) -> PhysPlan {
    match plan {
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            mut residual,
        } => {
            residual.append(&mut conds);
            PhysPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
            }
        }
        PhysPlan::IndexNlJoin {
            left,
            table,
            index_pos,
            left_keys,
            inner_filters,
            mut residual,
        } => {
            residual.append(&mut conds);
            PhysPlan::IndexNlJoin {
                left,
                table,
                index_pos,
                left_keys,
                inner_filters,
                residual,
            }
        }
        PhysPlan::CrossJoin {
            left,
            right,
            mut residual,
        } => {
            residual.append(&mut conds);
            PhysPlan::CrossJoin {
                left,
                right,
                residual,
            }
        }
        // Single-relation query with a same-relation residual: wrap in a
        // degenerate cross join is overkill; push into the scan instead.
        PhysPlan::SeqScan { table, mut filters } => {
            filters.append(&mut conds);
            PhysPlan::SeqScan { table, filters }
        }
        PhysPlan::IndexLookup {
            table,
            index_pos,
            key,
            mut residual,
        } => {
            residual.append(&mut conds);
            PhysPlan::IndexLookup {
                table,
                index_pos,
                key,
                residual,
            }
        }
        // Any other shape (e.g. the UnionAll an IN-list index expansion
        // produces, or a pruning Project) keeps its semantics under a
        // generic filter — never silently drop a condition.
        other => PhysPlan::Filter {
            child: Box::new(other),
            conds,
        },
    }
}

/// Pick the access path for one relation given its local filters.
fn access_path(
    catalog: &Catalog,
    bindings: &[Binding],
    rel: usize,
    local: &[LocalCond],
    mode: PlannerMode,
) -> Result<PhysPlan, DbError> {
    let b = &bindings[rel];
    let table = catalog.table(&b.table)?;
    // Constant- or parameter-equality columns available for index keys.
    let mut eq_cols: Vec<(usize, KeyExpr)> = Vec::new();
    for c in local {
        match c {
            LocalCond::ColCmpLit(col, CmpOp::Eq, v) => {
                eq_cols.push((*col, KeyExpr::Lit(v.clone())));
            }
            LocalCond::ColCmpParam(col, CmpOp::Eq, p) => {
                eq_cols.push((*col, KeyExpr::Param(*p)));
            }
            _ => {}
        }
    }
    for (pos, index) in table.indexes.iter().enumerate() {
        let covered: Option<Vec<KeyExpr>> = index
            .key_cols()
            .iter()
            .map(|kc| {
                eq_cols
                    .iter()
                    .find(|(c, _)| c == kc)
                    .map(|(_, k)| k.clone())
            })
            .collect();
        if let Some(key) = covered {
            // Exactly the (column, key-expr) pairs consumed by the key; any
            // other filter — including a conflicting equality on the same
            // column — stays residual.
            let consumed: Vec<(usize, &KeyExpr)> =
                index.key_cols().iter().copied().zip(key.iter()).collect();
            let residual: Vec<ExecCond> = local
                .iter()
                .filter(|c| match c {
                    LocalCond::ColCmpLit(col, CmpOp::Eq, v) => {
                        !consumed.contains(&(*col, &KeyExpr::Lit(v.clone())))
                    }
                    LocalCond::ColCmpParam(col, CmpOp::Eq, p) => {
                        !consumed.contains(&(*col, &KeyExpr::Param(*p)))
                    }
                    _ => true,
                })
                .map(local_to_exec)
                .collect();
            return Ok(PhysPlan::IndexLookup {
                table: b.table.clone(),
                index_pos: pos,
                key,
                residual,
            });
        }
    }
    // An IN-list over a single-column index expands to a union of index
    // lookups — this is what keeps the Stored D/KB extraction query flat in
    // the total rule count (Figure 7).
    for (pos, index) in table.indexes.iter().enumerate() {
        let [key_col] = index.key_cols() else {
            continue;
        };
        let in_list = local.iter().find_map(|c| match c {
            LocalCond::InList(col, vs) if col == key_col => Some(vs),
            _ => None,
        });
        let Some(values) = in_list else { continue };
        let residual: Vec<ExecCond> = local
            .iter()
            .filter(|c| !matches!(c, LocalCond::InList(col, vs) if col == key_col && vs == values))
            .map(local_to_exec)
            .collect();
        // Dedupe list values so a row cannot match through two arms.
        let mut distinct: Vec<&Value> = Vec::new();
        for v in values {
            if !distinct.contains(&v) {
                distinct.push(v);
            }
        }
        let mut arms = distinct.into_iter().map(|v| PhysPlan::IndexLookup {
            table: b.table.clone(),
            index_pos: pos,
            key: vec![KeyExpr::Lit(v.clone())],
            residual: residual.clone(),
        });
        let first = arms.next().expect("IN list is non-empty");
        return Ok(arms.fold(first, |acc, arm| PhysPlan::UnionAll {
            left: Box::new(acc),
            right: Box::new(arm),
        }));
    }
    // Range predicates over a single-column ordered index.
    for (pos, index) in table.indexes.iter().enumerate() {
        if !index.is_ordered() {
            continue;
        }
        let [key_col] = index.key_cols() else {
            continue;
        };
        let mut lo: std::ops::Bound<Value> = std::ops::Bound::Unbounded;
        let mut hi: std::ops::Bound<Value> = std::ops::Bound::Unbounded;
        let mut used = 0usize;
        for c in local {
            if let LocalCond::ColCmpLit(col, op, v) = c {
                if col != key_col {
                    continue;
                }
                match op {
                    CmpOp::Gt => {
                        lo = tighten_lo(lo, std::ops::Bound::Excluded(v.clone()));
                        used += 1;
                    }
                    CmpOp::Ge => {
                        lo = tighten_lo(lo, std::ops::Bound::Included(v.clone()));
                        used += 1;
                    }
                    CmpOp::Lt => {
                        hi = tighten_hi(hi, std::ops::Bound::Excluded(v.clone()));
                        used += 1;
                    }
                    CmpOp::Le => {
                        hi = tighten_hi(hi, std::ops::Bound::Included(v.clone()));
                        used += 1;
                    }
                    _ => {}
                }
            }
        }
        if used == 0 {
            continue;
        }
        // A wide range fetches most of the table through the index — each
        // hit a random access — where a sequential scan is cheaper. With
        // histogram statistics the estimated fraction gates the choice;
        // without them the flat fallback (≤1/3) always takes the index,
        // matching the legacy heuristic.
        if mode == PlannerMode::CostBased && cost::range_scan_pays(table, *key_col, &lo, &hi) >= 0.5
        {
            continue;
        }
        // Everything stays as a residual check (bounds may overlap several
        // conjuncts); the index only narrows the scan.
        let residual: Vec<ExecCond> = local.iter().map(local_to_exec).collect();
        return Ok(PhysPlan::IndexRange {
            table: b.table.clone(),
            index_pos: pos,
            lo,
            hi,
            residual,
        });
    }
    Ok(PhysPlan::SeqScan {
        table: b.table.clone(),
        filters: local.iter().map(local_to_exec).collect(),
    })
}

/// Keep the tighter of two lower bounds.
fn tighten_lo(a: std::ops::Bound<Value>, b: std::ops::Bound<Value>) -> std::ops::Bound<Value> {
    use std::ops::Bound::*;
    match (&a, &b) {
        (Unbounded, _) => b,
        (_, Unbounded) => a,
        (Included(x) | Excluded(x), Included(y) | Excluded(y)) => {
            if y > x || (y == x && matches!(b, Excluded(_))) {
                b
            } else {
                a
            }
        }
    }
}

/// Keep the tighter of two upper bounds.
fn tighten_hi(a: std::ops::Bound<Value>, b: std::ops::Bound<Value>) -> std::ops::Bound<Value> {
    use std::ops::Bound::*;
    match (&a, &b) {
        (Unbounded, _) => b,
        (_, Unbounded) => a,
        (Included(x) | Excluded(x), Included(y) | Excluded(y)) => {
            if y < x || (y == x && matches!(b, Excluded(_))) {
                b
            } else {
                a
            }
        }
    }
}

/// An index on `binding`'s table whose key columns are exactly covered by
/// the available join columns.
fn usable_join_index(catalog: &Catalog, binding: &Binding, join_cols: &[usize]) -> Option<usize> {
    let table = catalog.table(&binding.table).ok()?;
    // Two join predicates on the *same* inner column (`join_cols = [0, 0]`)
    // must not disqualify a single-column index on it: match against the
    // distinct column set; the unconsumed pairs run as residual checks.
    let mut distinct: Vec<usize> = Vec::new();
    for &c in join_cols {
        if !distinct.contains(&c) {
            distinct.push(c);
        }
    }
    table.indexes.iter().position(|index| {
        index.key_cols().iter().all(|kc| distinct.contains(kc))
            && index.key_cols().len() == distinct.len()
    })
}

/// The legacy greedy join order: start from the most restricted relation
/// (flat selectivity constants), then extend with connected relations.
/// Kept verbatim as the `PlannerMode::Heuristic` ablation baseline.
fn join_order_heuristic(
    bindings: &[Binding],
    local: &[Vec<LocalCond>],
    joins: &[(Resolved, Resolved)],
) -> Vec<usize> {
    let n = bindings.len();
    if n == 1 {
        return vec![0];
    }
    // Restriction-aware size estimate: constant filters shrink a relation.
    // A point equality keeps the flat 1/20 selectivity; an IN-list is a
    // union of point lookups, so its estimate scales with the list's
    // cardinality instead of masquerading as a single point lookup. A
    // one-sided range (`<`, `<=`, `>`, `>=`) keeps 1/3 of the relation —
    // coarse, but enough to seed the join order with the ranged relation
    // when it is the only restricted one (two range conditions on the
    // same relation, the BETWEEN desugaring, compound to 1/9).
    let est = |rel: usize| -> u64 {
        let base = bindings[rel].tuple_count.max(1);
        let mut e = base;
        for c in &local[rel] {
            e = match c {
                LocalCond::ColCmpLit(_, CmpOp::Eq, _) | LocalCond::ColCmpParam(_, CmpOp::Eq, _) => {
                    e.min((base / 20).max(1))
                }
                LocalCond::InList(_, vs) => e.min(
                    ((base / 20).max(1))
                        .saturating_mul(vs.len() as u64)
                        .min(base),
                ),
                LocalCond::ColCmpLit(_, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, _)
                | LocalCond::ColCmpParam(_, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, _) => {
                    (e / 3).max(1)
                }
                _ => e,
            };
        }
        e
    };
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    // Seed with the smallest estimated relation.
    remaining.sort_by_key(|&r| est(r));
    order.push(remaining.remove(0));
    while !remaining.is_empty() {
        let connected_pos = remaining.iter().position(|&r| {
            joins.iter().any(|(a, b)| {
                (a.rel == r && order.contains(&b.rel)) || (b.rel == r && order.contains(&a.rel))
            })
        });
        let pos = connected_pos.unwrap_or(0);
        order.push(remaining.remove(pos));
    }
    order
}

/// Plan `SELECT c1, .., cn, COUNT(*) FROM ... GROUP BY c1, .., cn`. The
/// projection must be exactly the group columns (in order) followed by one
/// `COUNT(*)`.
fn plan_group_count(
    bindings: &[Binding],
    layout: &[LayoutEntry],
    block: &SelectBlock,
    child: PhysPlan,
) -> Result<PlannedQuery, DbError> {
    let n = block.group_by.len();
    if block.projections.len() != n + 1 {
        return Err(DbError::Plan(
            "GROUP BY projection must be the group columns followed by COUNT(*)".into(),
        ));
    }
    let mut keys = Vec::with_capacity(n);
    let mut columns = Vec::with_capacity(n + 1);
    for (i, gcol) in block.group_by.iter().enumerate() {
        let SelectItem::Expr {
            expr: Scalar::Col(pcol),
            alias,
        } = &block.projections[i]
        else {
            return Err(DbError::Plan(
                "GROUP BY projection must be plain group columns".into(),
            ));
        };
        let rg = resolve_col(bindings, gcol)?;
        let rp = resolve_col(bindings, pcol)?;
        if rg != rp {
            return Err(DbError::Plan(format!(
                "projected column {} is not group column {}",
                pcol.column, gcol.column
            )));
        }
        keys.push(pos_of(layout, rg));
        columns.push(alias.clone().unwrap_or_else(|| pcol.column.clone()));
    }
    match &block.projections[n] {
        SelectItem::CountStar { alias } => {
            columns.push(alias.clone().unwrap_or_else(|| "count".to_string()));
        }
        _ => {
            return Err(DbError::Plan(
                "the last GROUP BY projection must be COUNT(*)".into(),
            ))
        }
    }
    let mut plan = PhysPlan::GroupCount {
        child: Box::new(child),
        keys,
    };
    if !block.order_by.is_empty() {
        let mut sort_keys = Vec::new();
        for cref in &block.order_by {
            let pos = columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&cref.column))
                .ok_or_else(|| {
                    DbError::Plan(format!("ORDER BY column not in output: {}", cref.column))
                })?;
            sort_keys.push(pos);
        }
        plan = PhysPlan::Sort {
            child: Box::new(plan),
            keys: sort_keys,
        };
    }
    Ok(PlannedQuery::new(plan, columns))
}

/// Build an [`PhysPlan::AntiJoin`] for one `NOT EXISTS` subquery. Inner
/// column references resolve against the subquery's table first, then the
/// outer FROM bindings; correlation must be by equality.
fn plan_anti_join(
    catalog: &Catalog,
    bindings: &[Binding],
    layout: &[LayoutEntry],
    child: PhysPlan,
    tref: &TableRef,
    conds: &[Condition],
) -> Result<PhysPlan, DbError> {
    let table = catalog.table(&tref.table)?;
    let inner_binding = tref.binding().to_ascii_lowercase();
    let inner_schema = table.schema.clone();

    /// Where a column reference landed.
    enum Side {
        Inner(usize),
        Outer(Resolved),
    }
    let resolve = |c: &ColRef| -> Result<Side, DbError> {
        match &c.table {
            Some(qual) if qual.to_ascii_lowercase() == inner_binding => inner_schema
                .index_of(&c.column)
                .map(Side::Inner)
                .ok_or_else(|| DbError::NoSuchColumn(format!("{qual}.{}", c.column))),
            Some(_) => resolve_col(bindings, c).map(Side::Outer),
            None => {
                // Unqualified: inner table shadows the outer scope.
                if let Some(i) = inner_schema.index_of(&c.column) {
                    Ok(Side::Inner(i))
                } else {
                    resolve_col(bindings, c).map(Side::Outer)
                }
            }
        }
    };

    let mut inner_filters = Vec::new();
    let mut outer_keys = Vec::new();
    let mut inner_keys = Vec::new();
    for cond in conds {
        match cond {
            Condition::NotExists { .. } => {
                return Err(DbError::Plan("nested NOT EXISTS is not supported".into()))
            }
            Condition::InList { col, values } => match resolve(col)? {
                Side::Inner(i) => inner_filters.push(ExecCond::InList(i, values.clone())),
                Side::Outer(_) => {
                    return Err(DbError::Plan(
                        "NOT EXISTS: IN-list on an outer column is not supported".into(),
                    ))
                }
            },
            Condition::Cmp { left, op, right } => match (left, right) {
                (Scalar::Col(a), Scalar::Col(b)) => match (resolve(a)?, resolve(b)?) {
                    (Side::Inner(x), Side::Inner(y)) => {
                        inner_filters.push(ExecCond::ColCmpCol(x, *op, y))
                    }
                    (Side::Inner(i), Side::Outer(o)) | (Side::Outer(o), Side::Inner(i)) => {
                        if *op != CmpOp::Eq {
                            return Err(DbError::Plan(
                                "NOT EXISTS correlation must be by equality".into(),
                            ));
                        }
                        outer_keys.push(pos_of(layout, o));
                        inner_keys.push(i);
                    }
                    (Side::Outer(_), Side::Outer(_)) => {
                        return Err(DbError::Plan(
                            "NOT EXISTS condition references only outer columns".into(),
                        ))
                    }
                },
                (Scalar::Col(c), Scalar::Lit(v)) => match resolve(c)? {
                    Side::Inner(i) => inner_filters.push(ExecCond::ColCmpLit(i, *op, v.clone())),
                    Side::Outer(_) => {
                        return Err(DbError::Plan(
                            "NOT EXISTS literal condition must bind an inner column".into(),
                        ))
                    }
                },
                (Scalar::Lit(v), Scalar::Col(c)) => match resolve(c)? {
                    Side::Inner(i) => {
                        inner_filters.push(ExecCond::ColCmpLit(i, rewrite::flip(*op), v.clone()))
                    }
                    Side::Outer(_) => {
                        return Err(DbError::Plan(
                            "NOT EXISTS literal condition must bind an inner column".into(),
                        ))
                    }
                },
                (Scalar::Lit(_), Scalar::Lit(_)) => {
                    return Err(DbError::Plan(
                        "constant comparison not supported in NOT EXISTS".into(),
                    ))
                }
                (Scalar::Param(_), _) | (_, Scalar::Param(_)) => {
                    return Err(DbError::Plan(
                        "parameters are not supported inside NOT EXISTS".into(),
                    ))
                }
            },
        }
    }
    // Record an index as a *capability* when the correlation keys cover
    // exactly one index's key columns and no other inner predicate needs
    // evaluating: membership is then a pure key lookup, O(probes) instead
    // of O(|inner|) per execution. This is what makes a prepared
    // `NOT EXISTS` termination check cheap in the LFP loop — the
    // accumulated table is probed, never re-scanned.
    //
    // The executor makes the final probe-vs-scan call at run time against
    // live cardinalities (see `AntiJoin` in exec.rs): a cached prepared
    // plan outlives many LFP iterations, so a plan-time estimate of the
    // probing side goes stale — under naive evaluation it is the whole
    // accumulated relation, where one inner scan into a hash set beats
    // tens of thousands of probes. `index_pos` therefore means "a probe is
    // possible", not "a probe was chosen".
    let mut index_pos = None;
    let keys_distinct = (1..inner_keys.len()).all(|i| !inner_keys[..i].contains(&inner_keys[i]));
    if inner_filters.is_empty() && !inner_keys.is_empty() && keys_distinct {
        for (pos, index) in table.indexes.iter().enumerate() {
            let kc = index.key_cols();
            if kc.len() != inner_keys.len() {
                continue;
            }
            // Reorder the key pairs to the index's key-column order.
            let perm: Option<Vec<usize>> = kc
                .iter()
                .map(|c| inner_keys.iter().position(|i| i == c))
                .collect();
            if let Some(perm) = perm {
                outer_keys = perm.iter().map(|&j| outer_keys[j]).collect();
                inner_keys = kc.to_vec();
                index_pos = Some(pos);
                break;
            }
        }
    }
    Ok(PhysPlan::AntiJoin {
        child: Box::new(child),
        table: table.name.clone(),
        inner_filters,
        outer_keys,
        inner_keys,
        index_pos,
    })
}

/// Resolve the projection list against the join layout. Returns the
/// expressions, the output column names, and whether this is a COUNT(*).
fn resolve_projection(
    bindings: &[Binding],
    layout: &[LayoutEntry],
    items: &[SelectItem],
) -> Result<(Vec<ProjExpr>, Vec<String>, bool), DbError> {
    if items.len() == 1 {
        if let SelectItem::CountStar { alias } = &items[0] {
            let name = alias.clone().unwrap_or_else(|| "count".to_string());
            return Ok((Vec::new(), vec![name], true));
        }
    }
    let mut exprs = Vec::new();
    let mut names = Vec::new();
    for item in items {
        match item {
            SelectItem::Star => {
                // All columns in FROM order (not join order). Pruning never
                // fires for SELECT *, so every column is in the layout.
                for (rel, b) in bindings.iter().enumerate() {
                    for (col, c) in b.schema.columns().iter().enumerate() {
                        exprs.push(ProjExpr::Col(pos_of(layout, Resolved { rel, col })));
                        names.push(c.name.clone());
                    }
                }
            }
            SelectItem::CountStar { .. } => {
                return Err(DbError::Plan(
                    "COUNT(*) cannot be mixed with other projections".to_string(),
                ));
            }
            SelectItem::Expr { expr, alias } => match expr {
                Scalar::Col(c) => {
                    let r = resolve_col(bindings, c)?;
                    exprs.push(ProjExpr::Col(pos_of(layout, r)));
                    names.push(alias.clone().unwrap_or_else(|| c.column.clone()));
                }
                Scalar::Lit(v) => {
                    exprs.push(ProjExpr::Lit(v.clone()));
                    names.push(alias.clone().unwrap_or_else(|| "literal".to_string()));
                }
                Scalar::Param(_) => {
                    return Err(DbError::Plan(
                        "parameters are not supported in the projection list".into(),
                    ))
                }
            },
        }
    }
    Ok((exprs, names, false))
}

/// Infer the output column *types* of a planned query (needed for
/// INSERT ... SELECT type checking). Literal projections carry their own
/// type; column projections inherit from the base tables.
pub fn output_types(catalog: &Catalog, query: &Query) -> Result<Vec<ColType>, DbError> {
    match query {
        Query::Union { left, .. } | Query::Except { left, .. } => output_types(catalog, left),
        Query::Select(block) => {
            let mut bindings = Vec::new();
            for tref in &block.from {
                let table = catalog.table(&tref.table)?;
                bindings.push(Binding {
                    table: table.name.clone(),
                    binding: tref.binding().to_ascii_lowercase(),
                    schema: table.schema.clone(),
                    tuple_count: 0,
                });
            }
            let mut types = Vec::new();
            if !block.group_by.is_empty() {
                for item in &block.projections {
                    match item {
                        SelectItem::Expr {
                            expr: Scalar::Col(c),
                            ..
                        } => {
                            let r = resolve_col(&bindings, c)?;
                            types.push(bindings[r.rel].schema.column(r.col).ty);
                        }
                        SelectItem::CountStar { .. } => types.push(ColType::Int),
                        _ => return Err(DbError::Plan("unsupported GROUP BY projection".into())),
                    }
                }
                return Ok(types);
            }
            for item in &block.projections {
                match item {
                    SelectItem::Star => {
                        for b in &bindings {
                            types.extend(b.schema.columns().iter().map(|c| c.ty));
                        }
                    }
                    SelectItem::CountStar { .. } => types.push(ColType::Int),
                    SelectItem::Expr { expr, .. } => match expr {
                        Scalar::Col(c) => {
                            let r = resolve_col(&bindings, c)?;
                            types.push(bindings[r.rel].schema.column(r.col).ty);
                        }
                        Scalar::Lit(v) => types.push(v.col_type()),
                        Scalar::Param(_) => {
                            return Err(DbError::Plan(
                                "parameters are not supported in the projection list".into(),
                            ))
                        }
                    },
                }
            }
            Ok(types)
        }
    }
}
