//! SQL lexer.

use crate::catalog::DbError;

/// Lexical tokens. Keywords are recognized case-insensitively and surfaced
/// as `Ident`; the parser matches them by spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Semicolon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `?` — a positional parameter placeholder in a prepared statement.
    Param,
}

/// Tokenize `input`, rejecting any character outside the subset.
pub fn lex(input: &str) -> Result<Vec<Token>, DbError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Parse("unexpected '!'".to_string()));
                }
            }
            '\'' => {
                // Single-quoted string; '' escapes a quote.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string".to_string())),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            // Strings are UTF-8; copy the full code point.
                            let ch_len = utf8_len(b);
                            let chunk = std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| DbError::Parse("invalid UTF-8 in string".into()))?;
                            s.push_str(chunk);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            '-' => {
                // Either a negative integer literal or a `--` comment.
                if bytes.get(i + 1) == Some(&b'-') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (n, len) = lex_int(&input[i + 1..])?;
                    tokens.push(Token::Int(-n));
                    i += 1 + len;
                } else {
                    return Err(DbError::Parse("unexpected '-'".to_string()));
                }
            }
            '0'..='9' => {
                let (n, len) = lex_int(&input[i..])?;
                tokens.push(Token::Int(n));
                i += len;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn lex_int(s: &str) -> Result<(i64, usize), DbError> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    s[..end]
        .parse::<i64>()
        .map(|n| (n, end))
        .map_err(|_| DbError::Parse(format!("integer literal out of range: {}", &s[..end])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_select() {
        let toks = lex("SELECT a.x, b.y FROM t a, u b WHERE a.x = b.y;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Eq));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn lexes_unicode_strings() {
        let toks = lex("'ancêtre'").unwrap();
        assert_eq!(toks, vec![Token::Str("ancêtre".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lexes_numbers_including_negative() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("-7").unwrap(), vec![Token::Int(-7)]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("< <= > >= <> != =").unwrap(),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Eq
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the projection\n x").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("SELECT".into()), Token::Ident("x".into())]
        );
    }

    #[test]
    fn lexes_parameter_placeholders() {
        let toks = lex("SELECT * FROM t WHERE x = ? AND y = ?").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Param).count(), 2);
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("SELECT @x").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn huge_integer_errors() {
        assert!(lex("999999999999999999999999").is_err());
    }
}
