//! Abstract syntax for the SQL subset the Knowledge Manager emits.
//!
//! The subset covers exactly what the testbed's generated programs and
//! dictionary maintenance need: DDL (tables + indexes), `INSERT` (literal
//! rows and `INSERT ... SELECT`), `DELETE`, and conjunctive `SELECT` blocks
//! with multi-way equi-joins, `DISTINCT`, `IN`-lists, `UNION [ALL]`,
//! `EXCEPT`, `ORDER BY` and `COUNT(*)`.

use crate::value::{ColType, Value};

/// One SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable {
        name: String,
        columns: Vec<(String, ColType)>,
        temp: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        /// `CREATE ORDERED INDEX`: a range-capable ordered directory.
        ordered: bool,
    },
    DropIndex {
        name: String,
    },
    InsertValues {
        table: String,
        /// Each row is a list of literals or `?` parameter placeholders
        /// (column references are rejected by the parser here).
        rows: Vec<Vec<Scalar>>,
    },
    InsertSelect {
        table: String,
        query: Query,
    },
    /// `INSERT INTO t TRANSITIVE CLOSURE OF s` — the specialized LFP
    /// operator of the paper's conclusion #8: the DBMS computes the
    /// transitive closure of binary relation `source` internally, without
    /// per-iteration SQL round-trips or temporary-table churn.
    InsertTransitiveClosure {
        table: String,
        source: String,
    },
    Delete {
        table: String,
        predicate: Vec<Condition>,
    },
    /// `TRUNCATE TABLE t` — discard every row but keep the table, its
    /// schema and its (emptied) indexes. The fast path that lets the LFP
    /// runtime recycle per-iteration candidate/delta tables instead of
    /// dropping and recreating them.
    Truncate {
        table: String,
    },
    Select(Query),
    /// `EXPLAIN SELECT ...` — return the physical plan as text rows.
    Explain(Query),
    /// `EXPLAIN ANALYZE SELECT ...` — execute the query and return the
    /// physical plan annotated with per-operator runtime counters (rows
    /// emitted, rows scanned, index probes, hash-build sizes, residual
    /// drops, wall time).
    ExplainAnalyze(Query),
}

/// A (possibly compound) query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectBlock),
    /// `left UNION [ALL] right`
    Union {
        left: Box<Query>,
        right: Box<Query>,
        all: bool,
    },
    /// `left EXCEPT right` (set difference, distinct semantics)
    Except {
        left: Box<Query>,
        right: Box<Query>,
    },
}

/// A single `SELECT ... FROM ... WHERE ... [ORDER BY ...]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    pub distinct: bool,
    pub projections: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// Conjunction of simple conditions.
    pub where_clause: Vec<Condition>,
    /// `GROUP BY` columns; when non-empty the projection must be exactly
    /// the group columns followed by `COUNT(*)`.
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<ColRef>,
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar (column reference or literal), optionally aliased.
    Expr { expr: Scalar, alias: Option<String> },
    /// `COUNT(*)`
    CountStar { alias: Option<String> },
}

/// A table in the FROM list with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name by which columns may qualify this relation.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

/// A scalar term in a condition or projection.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Col(ColRef),
    Lit(Value),
    /// A `?` placeholder, numbered left-to-right from 0 in parse order.
    /// Only valid in WHERE comparisons and `INSERT ... VALUES` rows; the
    /// value is supplied at `execute_prepared` time.
    Param(usize),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on ordered values.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// One conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    Cmp {
        left: Scalar,
        op: CmpOp,
        right: Scalar,
    },
    /// `col IN (v1, v2, ...)` — the paper's extraction query uses an
    /// OR-of-equalities over the query predicates, which we express this way.
    InList { col: ColRef, values: Vec<Value> },
    /// `NOT EXISTS (SELECT * FROM t [alias] WHERE ...)` — the correlated
    /// anti-join the code generator emits for negated body atoms
    /// (stratified-negation extension). The subquery is restricted to one
    /// table with a conjunction of simple conditions; correlation is by
    /// equality with outer columns.
    NotExists {
        table: TableRef,
        conds: Vec<Condition>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_eval_covers_all_operators() {
        assert!(CmpOp::Eq.eval(Ordering::Equal));
        assert!(!CmpOp::Eq.eval(Ordering::Less));
        assert!(CmpOp::Ne.eval(Ordering::Greater));
        assert!(CmpOp::Lt.eval(Ordering::Less));
        assert!(!CmpOp::Lt.eval(Ordering::Equal));
        assert!(CmpOp::Le.eval(Ordering::Equal));
        assert!(CmpOp::Gt.eval(Ordering::Greater));
        assert!(CmpOp::Ge.eval(Ordering::Equal));
        assert!(!CmpOp::Ge.eval(Ordering::Less));
    }

    #[test]
    fn table_ref_binding_prefers_alias() {
        let t = TableRef {
            table: "rulesource".into(),
            alias: Some("r".into()),
        };
        assert_eq!(t.binding(), "r");
        let t = TableRef {
            table: "rulesource".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "rulesource");
    }
}
