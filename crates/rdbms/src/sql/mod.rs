//! SQL front end: lexer, AST, and recursive-descent parser for the subset
//! of SQL the Knowledge Manager emits.

pub mod ast;
pub mod lexer;
pub mod parser;
