//! Recursive-descent parser for the SQL subset.

use super::ast::*;
use super::lexer::{lex, Token};
use crate::catalog::DbError;
use crate::value::{ColType, Value};

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse_stmt(input: &str) -> Result<Stmt, DbError> {
    parse_stmt_params(input).map(|(stmt, _)| stmt)
}

/// Parse one statement and report how many `?` parameter placeholders it
/// contains. Placeholders are numbered 0.. in left-to-right parse order.
pub fn parse_stmt_params(input: &str) -> Result<(Stmt, usize), DbError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.stmt()?;
    p.accept_semicolon();
    p.expect_eof()?;
    Ok((stmt, p.params))
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(input: &str) -> Result<Vec<Stmt>, DbError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_eof() {
        stmts.push(p.stmt()?);
        if !p.accept_semicolon() {
            break;
        }
    }
    p.expect_eof()?;
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far; doubles as the next ordinal.
    params: usize,
}

/// Keywords that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "where", "order", "union", "except", "from", "and", "in", "as", "group", "on", "values",
    "select", "distinct", "not", "exists", "between",
];

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> DbError {
        DbError::Parse(format!(
            "{msg} (at token {:?})",
            self.peek()
                .map(|t| format!("{t:?}"))
                .unwrap_or_else(|| "<eof>".into())
        ))
    }

    /// Consume an identifier matching `kw` case-insensitively.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn accept(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<(), DbError> {
        if self.accept(tok) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {tok:?}")))
        }
    }

    fn accept_semicolon(&mut self) -> bool {
        self.accept(&Token::Semicolon)
    }

    fn expect_eof(&mut self) -> Result<(), DbError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, DbError> {
        if self.peek_kw("create") {
            self.create_stmt()
        } else if self.peek_kw("drop") {
            self.drop_stmt()
        } else if self.peek_kw("insert") {
            self.insert_stmt()
        } else if self.peek_kw("delete") {
            self.delete_stmt()
        } else if self.peek_kw("select") {
            Ok(Stmt::Select(self.query()?))
        } else if self.accept_kw("explain") {
            if self.accept_kw("analyze") {
                Ok(Stmt::ExplainAnalyze(self.query()?))
            } else {
                Ok(Stmt::Explain(self.query()?))
            }
        } else if self.accept_kw("truncate") {
            self.expect_kw("table")?;
            Ok(Stmt::Truncate {
                table: self.ident()?,
            })
        } else {
            Err(self.error("expected a statement"))
        }
    }

    fn create_stmt(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("create")?;
        let temp = self.accept_kw("temp") || self.accept_kw("temporary");
        let ordered = self.accept_kw("ordered");
        if ordered {
            if temp {
                return Err(self.error("ORDERED applies to indexes only"));
            }
            self.expect_kw("index")?;
            return self.create_index_tail(true);
        }
        if self.accept_kw("table") {
            let name = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty_name = self.ident()?;
                let ty = ColType::parse(&ty_name)
                    .ok_or_else(|| DbError::Parse(format!("unknown type: {ty_name}")))?;
                columns.push((col, ty));
                if !self.accept(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Stmt::CreateTable {
                name,
                columns,
                temp,
            })
        } else if self.accept_kw("index") {
            if temp {
                return Err(self.error("TEMP applies to tables only"));
            }
            self.create_index_tail(false)
        } else {
            Err(self.error("expected TABLE or INDEX after CREATE"))
        }
    }

    fn create_index_tail(&mut self, ordered: bool) -> Result<Stmt, DbError> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.accept(&Token::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Stmt::CreateIndex {
            name,
            table,
            columns,
            ordered,
        })
    }

    fn drop_stmt(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("drop")?;
        if self.accept_kw("table") {
            let if_exists = if self.accept_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            Ok(Stmt::DropTable {
                name: self.ident()?,
                if_exists,
            })
        } else if self.accept_kw("index") {
            Ok(Stmt::DropIndex {
                name: self.ident()?,
            })
        } else {
            Err(self.error("expected TABLE or INDEX after DROP"))
        }
    }

    fn insert_stmt(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        if self.accept_kw("values") {
            let mut rows = vec![self.literal_row()?];
            while self.accept(&Token::Comma) {
                rows.push(self.literal_row()?);
            }
            Ok(Stmt::InsertValues { table, rows })
        } else if self.peek_kw("select") {
            Ok(Stmt::InsertSelect {
                table,
                query: self.query()?,
            })
        } else if self.accept_kw("transitive") {
            self.expect_kw("closure")?;
            self.expect_kw("of")?;
            let source = self.ident()?;
            Ok(Stmt::InsertTransitiveClosure { table, source })
        } else {
            Err(self.error(
                "expected VALUES, SELECT or TRANSITIVE CLOSURE OF after INSERT INTO <table>",
            ))
        }
    }

    fn literal_row(&mut self) -> Result<Vec<Scalar>, DbError> {
        self.expect(&Token::LParen)?;
        let mut row = vec![self.literal_or_param()?];
        while self.accept(&Token::Comma) {
            row.push(self.literal_or_param()?);
        }
        self.expect(&Token::RParen)?;
        Ok(row)
    }

    fn literal_or_param(&mut self) -> Result<Scalar, DbError> {
        if self.accept(&Token::Param) {
            let ord = self.params;
            self.params += 1;
            return Ok(Scalar::Param(ord));
        }
        Ok(Scalar::Lit(self.literal()?))
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected a literal"))
            }
        }
    }

    fn delete_stmt(&mut self) -> Result<Stmt, DbError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicate = if self.accept_kw("where") {
            self.conjunction()?
        } else {
            Vec::new()
        };
        Ok(Stmt::Delete { table, predicate })
    }

    fn query(&mut self) -> Result<Query, DbError> {
        let mut left = Query::Select(self.select_block()?);
        loop {
            if self.accept_kw("union") {
                let all = self.accept_kw("all");
                let right = Query::Select(self.select_block()?);
                left = Query::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                    all,
                };
            } else if self.accept_kw("except") {
                let right = Query::Select(self.select_block()?);
                left = Query::Except {
                    left: Box::new(left),
                    right: Box::new(right),
                };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn select_block(&mut self) -> Result<SelectBlock, DbError> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let projections = self.select_items()?;
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        while self.accept(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let where_clause = if self.accept_kw("where") {
            self.conjunction()?
        } else {
            Vec::new()
        };
        let group_by = if self.accept_kw("group") {
            self.expect_kw("by")?;
            let mut cols = vec![self.col_ref()?];
            while self.accept(&Token::Comma) {
                cols.push(self.col_ref()?);
            }
            cols
        } else {
            Vec::new()
        };
        let order_by = if self.accept_kw("order") {
            self.expect_kw("by")?;
            let mut cols = vec![self.col_ref()?];
            while self.accept(&Token::Comma) {
                cols.push(self.col_ref()?);
            }
            cols
        } else {
            Vec::new()
        };
        Ok(SelectBlock {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            order_by,
        })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, DbError> {
        if self.accept(&Token::Star) {
            return Ok(vec![SelectItem::Star]);
        }
        let mut items = vec![self.select_item()?];
        while self.accept(&Token::Comma) {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, DbError> {
        if self.peek_kw("count") {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            self.expect(&Token::Star)?;
            self.expect(&Token::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(SelectItem::CountStar { alias });
        }
        let expr = self.scalar()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>, DbError> {
        if self.accept_kw("as") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) {
                return Ok(Some(self.ident()?));
            }
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, DbError> {
        let table = self.ident()?;
        let alias = self.optional_alias()?;
        Ok(TableRef { table, alias })
    }

    fn conjunction(&mut self) -> Result<Vec<Condition>, DbError> {
        let mut conds = Vec::new();
        self.condition_into(&mut conds)?;
        while self.accept_kw("and") {
            self.condition_into(&mut conds)?;
        }
        Ok(conds)
    }

    /// Parse one condition into `out`. Most conditions push exactly one
    /// entry; `x BETWEEN lo AND hi` desugars to the pair `x >= lo` and
    /// `x <= hi` (which the planner's range tightening recombines into a
    /// single index range scan when an ordered index covers `x`).
    fn condition_into(&mut self, out: &mut Vec<Condition>) -> Result<(), DbError> {
        if self.peek_kw("not") {
            let mark = self.pos;
            self.pos += 1;
            if self.accept_kw("exists") {
                self.expect(&Token::LParen)?;
                self.expect_kw("select")?;
                self.expect(&Token::Star)?;
                self.expect_kw("from")?;
                let table = self.table_ref()?;
                let conds = if self.accept_kw("where") {
                    self.conjunction()?
                } else {
                    Vec::new()
                };
                if conds
                    .iter()
                    .any(|c| matches!(c, Condition::NotExists { .. }))
                {
                    return Err(self.error("nested NOT EXISTS is not supported"));
                }
                self.expect(&Token::RParen)?;
                out.push(Condition::NotExists { table, conds });
                return Ok(());
            }
            self.pos = mark;
        }
        let left = self.scalar()?;
        if self.accept_kw("in") {
            let col = match left {
                Scalar::Col(c) => c,
                _ => return Err(self.error("IN requires a column on the left")),
            };
            self.expect(&Token::LParen)?;
            let mut values = vec![self.literal()?];
            while self.accept(&Token::Comma) {
                values.push(self.literal()?);
            }
            self.expect(&Token::RParen)?;
            out.push(Condition::InList { col, values });
            return Ok(());
        }
        if self.accept_kw("between") {
            let lo = self.scalar()?;
            self.expect_kw("and")?;
            let hi = self.scalar()?;
            out.push(Condition::Cmp {
                left: left.clone(),
                op: CmpOp::Ge,
                right: lo,
            });
            out.push(Condition::Cmp {
                left,
                op: CmpOp::Le,
                right: hi,
            });
            return Ok(());
        }
        let op = match self.bump() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error("expected comparison operator"));
            }
        };
        let right = self.scalar()?;
        out.push(Condition::Cmp { left, op, right });
        Ok(())
    }

    fn scalar(&mut self) -> Result<Scalar, DbError> {
        match self.peek() {
            Some(Token::Int(_)) | Some(Token::Str(_)) => Ok(Scalar::Lit(self.literal()?)),
            Some(Token::Ident(_)) => Ok(Scalar::Col(self.col_ref()?)),
            Some(Token::Param) => {
                self.pos += 1;
                let ord = self.params;
                self.params += 1;
                Ok(Scalar::Param(ord))
            }
            _ => Err(self.error("expected a scalar")),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, DbError> {
        let first = self.ident()?;
        if self.accept(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse_stmt("CREATE TABLE parent (par char, child char);").unwrap();
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                temp,
            } => {
                assert_eq!(name, "parent");
                assert!(!temp);
                assert_eq!(
                    columns,
                    vec![("par".into(), ColType::Str), ("child".into(), ColType::Str)]
                );
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_temp_table() {
        let stmt = parse_stmt("CREATE TEMP TABLE delta (c0 integer)").unwrap();
        assert!(matches!(stmt, Stmt::CreateTable { temp: true, .. }));
    }

    #[test]
    fn parses_create_index() {
        let stmt = parse_stmt("CREATE INDEX rs_head ON rulesource (headpredname)").unwrap();
        match stmt {
            Stmt::CreateIndex {
                name,
                table,
                columns,
                ordered,
            } => {
                assert!(!ordered);
                assert_eq!(name, "rs_head");
                assert_eq!(table, "rulesource");
                assert_eq!(columns, vec!["headpredname".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_insert_values() {
        let stmt =
            parse_stmt("INSERT INTO parent VALUES ('john', 'mary'), ('mary', 'sue')").unwrap();
        match stmt {
            Stmt::InsertValues { table, rows } => {
                assert_eq!(table, "parent");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Scalar::Lit(Value::from("john")));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_insert_select() {
        let stmt =
            parse_stmt("INSERT INTO anc SELECT p.par, p.child FROM parent p WHERE p.par = 'john'")
                .unwrap();
        assert!(matches!(stmt, Stmt::InsertSelect { .. }));
    }

    #[test]
    fn parses_join_with_aliases_and_in_list() {
        let stmt = parse_stmt(
            "SELECT DISTINCT r.rule FROM rulesource r, reachablepreds t \
             WHERE t.frompredname = r.headpredname AND t.topredname IN ('p', 'q')",
        )
        .unwrap();
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!("expected plain select");
        };
        assert!(block.distinct);
        assert_eq!(block.from.len(), 2);
        assert_eq!(block.where_clause.len(), 2);
        assert!(matches!(block.where_clause[1], Condition::InList { .. }));
    }

    #[test]
    fn parses_union_and_except_left_assoc() {
        let stmt =
            parse_stmt("SELECT * FROM a UNION ALL SELECT * FROM b EXCEPT SELECT * FROM c").unwrap();
        let Stmt::Select(q) = stmt else { panic!() };
        match q {
            Query::Except { left, .. } => {
                assert!(matches!(*left, Query::Union { all: true, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_count_star_and_order_by() {
        let stmt = parse_stmt("SELECT COUNT(*) AS n FROM t ORDER BY t.a, b").unwrap();
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!()
        };
        assert_eq!(
            block.projections,
            vec![SelectItem::CountStar {
                alias: Some("n".into())
            }]
        );
        assert_eq!(block.order_by.len(), 2);
    }

    #[test]
    fn parses_delete_with_predicate() {
        let stmt = parse_stmt("DELETE FROM t WHERE a = 1 AND b <> 'x'").unwrap();
        let Stmt::Delete { table, predicate } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(predicate.len(), 2);
    }

    #[test]
    fn parses_drop_variants() {
        assert!(matches!(
            parse_stmt("DROP TABLE IF EXISTS t").unwrap(),
            Stmt::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("DROP TABLE t").unwrap(),
            Stmt::DropTable {
                if_exists: false,
                ..
            }
        ));
        assert!(matches!(
            parse_stmt("DROP INDEX i").unwrap(),
            Stmt::DropIndex { .. }
        ));
    }

    #[test]
    fn parses_script() {
        let stmts =
            parse_script("CREATE TABLE t (a integer); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parses_parameter_placeholders_in_order() {
        let (stmt, n) =
            parse_stmt_params("SELECT * FROM t WHERE a = ? AND ? < b AND c = 'x'").unwrap();
        assert_eq!(n, 2);
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!()
        };
        assert_eq!(
            block.where_clause[0],
            Condition::Cmp {
                left: Scalar::Col(ColRef {
                    table: None,
                    column: "a".into()
                }),
                op: CmpOp::Eq,
                right: Scalar::Param(0),
            }
        );
        assert!(matches!(
            &block.where_clause[1],
            Condition::Cmp {
                left: Scalar::Param(1),
                ..
            }
        ));
    }

    #[test]
    fn parses_parameters_in_insert_values() {
        let (stmt, n) = parse_stmt_params("INSERT INTO t VALUES (?, 'x'), (3, ?)").unwrap();
        assert_eq!(n, 2);
        let Stmt::InsertValues { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(rows[0][0], Scalar::Param(0));
        assert_eq!(rows[1][1], Scalar::Param(1));
    }

    #[test]
    fn parses_truncate_table() {
        assert_eq!(
            parse_stmt("TRUNCATE TABLE delta_anc").unwrap(),
            Stmt::Truncate {
                table: "delta_anc".into()
            }
        );
        assert!(parse_stmt("TRUNCATE delta_anc").is_err());
    }

    #[test]
    fn rejects_parameters_in_in_lists() {
        assert!(parse_stmt("SELECT * FROM t WHERE a IN (?, 2)").is_err());
        assert!(parse_stmt("SELECT * FROM t WHERE ? IN (1, 2)").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_stmt("SELEC * FROM t").is_err());
        assert!(parse_stmt("SELECT FROM t").is_err());
        assert!(parse_stmt("SELECT * FROM t WHERE").is_err());
        assert!(parse_stmt("SELECT * FROM t extra garbage here").is_err());
        assert!(parse_stmt("INSERT INTO t VALUES (1,)").is_err());
        assert!(parse_stmt("CREATE TABLE t (a blob)").is_err());
        assert!(parse_stmt("SELECT * FROM t WHERE 1 IN (2)").is_err());
    }

    #[test]
    fn unqualified_and_qualified_colrefs() {
        let stmt = parse_stmt("SELECT a, t.b FROM t").unwrap();
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!()
        };
        assert_eq!(
            block.projections[0],
            SelectItem::Expr {
                expr: Scalar::Col(ColRef {
                    table: None,
                    column: "a".into()
                }),
                alias: None
            }
        );
        assert_eq!(
            block.projections[1],
            SelectItem::Expr {
                expr: Scalar::Col(ColRef {
                    table: Some("t".into()),
                    column: "b".into()
                }),
                alias: None
            }
        );
    }

    #[test]
    fn between_desugars_to_range_pair() {
        let stmt = parse_stmt("SELECT * FROM t WHERE k BETWEEN 10 AND 20 AND v = 'x'").unwrap();
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!()
        };
        assert_eq!(block.where_clause.len(), 3);
        match &block.where_clause[0] {
            Condition::Cmp { op, right, .. } => {
                assert_eq!(*op, CmpOp::Ge);
                assert_eq!(*right, Scalar::Lit(Value::Int(10)));
            }
            other => panic!("expected Cmp, got {other:?}"),
        }
        match &block.where_clause[1] {
            Condition::Cmp { op, right, .. } => {
                assert_eq!(*op, CmpOp::Le);
                assert_eq!(*right, Scalar::Lit(Value::Int(20)));
            }
            other => panic!("expected Cmp, got {other:?}"),
        }
        // The trailing AND condition still parses independently.
        assert!(matches!(
            &block.where_clause[2],
            Condition::Cmp { op: CmpOp::Eq, .. }
        ));
    }

    #[test]
    fn between_with_params_assigns_ordinals_in_order() {
        let (stmt, n) = parse_stmt_params("SELECT * FROM t WHERE k BETWEEN ? AND ?").unwrap();
        assert_eq!(n, 2);
        let Stmt::Select(Query::Select(block)) = stmt else {
            panic!()
        };
        assert!(matches!(
            &block.where_clause[0],
            Condition::Cmp {
                op: CmpOp::Ge,
                right: Scalar::Param(0),
                ..
            }
        ));
        assert!(matches!(
            &block.where_clause[1],
            Condition::Cmp {
                op: CmpOp::Le,
                right: Scalar::Param(1),
                ..
            }
        ));
    }
}
