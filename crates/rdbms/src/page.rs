//! Slotted pages.
//!
//! Every heap-file page uses the classic slotted layout: a small header,
//! a slot directory growing forward from the header, and tuple payloads
//! growing backward from the end of the page. Deleting a tuple tombstones
//! its slot; slot numbers stay stable so record ids remain valid.
//!
//! Layout:
//! ```text
//! [0..2)   u16  number of slots (live + dead)
//! [2..4)   u16  offset of the start of the payload area (grows down)
//! [4..)         slot directory: per slot, u16 offset + u16 length
//!               (offset == u16::MAX marks a dead slot)
//! ```

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

const HEADER_LEN: usize = 4;
const SLOT_LEN: usize = 4;
const DEAD: u16 = u16::MAX;

/// A mutable view over one page's bytes, interpreted as a slotted page.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing, already-formatted page.
    pub fn new(buf: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        SlottedPage { buf }
    }

    /// Format `buf` as an empty slotted page and wrap it.
    pub fn init(buf: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        write_u16(buf, 0, 0);
        write_u16(buf, 2, PAGE_SIZE as u16);
        SlottedPage { buf }
    }

    pub fn slot_count(&self) -> u16 {
        read_u16(self.buf, 0)
    }

    fn payload_start(&self) -> u16 {
        read_u16(self.buf, 2)
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let at = HEADER_LEN + slot as usize * SLOT_LEN;
        (read_u16(self.buf, at), read_u16(self.buf, at + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = HEADER_LEN + slot as usize * SLOT_LEN;
        write_u16(self.buf, at, offset);
        write_u16(self.buf, at + 2, len);
    }

    /// Bytes available for one more insert (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_LEN + self.slot_count() as usize * SLOT_LEN;
        let payload_start = self.payload_start() as usize;
        payload_start.saturating_sub(dir_end)
    }

    /// Whether a payload of `len` bytes fits on this page.
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_LEN
    }

    /// Insert a payload; returns the slot number, or `None` if it does not
    /// fit. Payloads larger than what an empty page can hold never fit.
    pub fn insert(&mut self, payload: &[u8]) -> Option<u16> {
        if !self.fits(payload.len()) {
            return None;
        }
        let slot = self.slot_count();
        let new_start = self.payload_start() as usize - payload.len();
        self.buf[new_start..new_start + payload.len()].copy_from_slice(payload);
        write_u16(self.buf, 2, new_start as u16);
        write_u16(self.buf, 0, slot + 1);
        self.set_slot_entry(slot, new_start as u16, payload.len() as u16);
        Some(slot)
    }

    /// The payload stored in `slot`, or `None` if the slot is out of range
    /// or dead.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (offset, len) = self.slot_entry(slot);
        if offset == DEAD {
            return None;
        }
        Some(&self.buf[offset as usize..offset as usize + len as usize])
    }

    /// Tombstone `slot`. Returns whether the slot was live. The payload
    /// bytes are not reclaimed (no compaction); heap files reclaim space by
    /// dropping whole files, which is what the testbed's temp-table churn
    /// exercises.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (offset, len) = self.slot_entry(slot);
        if offset == DEAD {
            return false;
        }
        self.set_slot_entry(slot, DEAD, len);
        true
    }

    /// Slot numbers of all live slots, in insertion order.
    pub fn live_slots(&self) -> Vec<u16> {
        (0..self.slot_count())
            .filter(|&s| self.slot_entry(s).0 != DEAD)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Box<[u8]> {
        vec![0u8; PAGE_SIZE].into_boxed_slice()
    }

    #[test]
    fn init_gives_empty_page() {
        let mut buf = fresh();
        let page = SlottedPage::init(&mut buf);
        assert_eq!(page.slot_count(), 0);
        assert_eq!(page.free_space(), PAGE_SIZE - HEADER_LEN);
        assert!(page.live_slots().is_empty());
    }

    #[test]
    fn insert_then_get() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let s0 = page.insert(b"hello").unwrap();
        let s1 = page.insert(b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(page.get(s0), Some(&b"hello"[..]));
        assert_eq!(page.get(s1), Some(&b"world!"[..]));
        assert_eq!(page.get(2), None);
    }

    #[test]
    fn delete_tombstones_slot_but_preserves_others() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let s0 = page.insert(b"a").unwrap();
        let s1 = page.insert(b"b").unwrap();
        assert!(page.delete(s0));
        assert!(!page.delete(s0), "double delete reports false");
        assert_eq!(page.get(s0), None);
        assert_eq!(page.get(s1), Some(&b"b"[..]));
        assert_eq!(page.live_slots(), vec![s1]);
    }

    #[test]
    fn fills_up_and_rejects_when_full() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        let payload = [0u8; 100];
        let mut inserted = 0;
        while page.insert(&payload).is_some() {
            inserted += 1;
        }
        // 104 bytes per record (100 payload + 4 slot) into 4092 usable.
        assert_eq!(inserted, (PAGE_SIZE - HEADER_LEN) / (100 + SLOT_LEN));
        assert!(!page.fits(100));
        // Smaller payloads may still fit.
        let leftover = page.free_space();
        if leftover > SLOT_LEN {
            assert!(page.insert(&vec![1u8; leftover - SLOT_LEN]).is_some());
        }
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut buf = fresh();
        let mut page = SlottedPage::init(&mut buf);
        assert_eq!(page.insert(&vec![0u8; PAGE_SIZE]), None);
    }

    #[test]
    fn reopen_preserves_contents() {
        let mut buf = fresh();
        {
            let mut page = SlottedPage::init(&mut buf);
            page.insert(b"persisted").unwrap();
        }
        let page = SlottedPage::new(&mut buf);
        assert_eq!(page.get(0), Some(&b"persisted"[..]));
    }
}
