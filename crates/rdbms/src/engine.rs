//! The engine facade: the "commercial relational DBMS with SQL interface"
//! of the testbed architecture. Everything above this layer (the Knowledge
//! Manager) talks to the database exclusively through [`Engine::execute`] —
//! the SQL boundary the paper identifies as both the architecture's clean
//! seam and its performance bottleneck — plus a small set of programmatic
//! bulk-loading fast paths used by workload generators.

use crate::buffer::{BufferPool, BufferStats, DEFAULT_POOL_FRAMES};
use crate::catalog::{Catalog, DbError, Table};
use crate::disk::{Disk, DiskStats, FaultInjector, RecoveryReport};
use crate::exec::{
    execute_plan, ExecCtx, ExecStats, OpProfile, Profiler, SpillMode, DEFAULT_BATCH_ROWS,
};
use crate::governor::{BudgetKind, ExecLimits, QueryGovernor, GOVERNOR_CHECK_INTERVAL};
use crate::heap::RecordId;
use crate::plan::{output_types, plan_query, ExecCond, PlannedQuery};
use crate::schema::{serialize_tuple, Schema, Tuple};
use crate::sql::ast::{CmpOp, ColRef, Condition, Query, Scalar, SelectItem, Stmt};
use crate::sql::parser::{parse_script, parse_stmt, parse_stmt_params};
use crate::stats::{Reservoir, RESERVOIR_CAP};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use crate::cost::PlannerMode;

/// Result of one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Tuple>,
    /// Rows affected by DML (inserts/deletes); 0 for queries and DDL.
    pub affected: u64,
}

impl ResultSet {
    fn empty() -> ResultSet {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            affected: 0,
        }
    }

    fn dml(affected: u64) -> ResultSet {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            affected,
        }
    }

    /// The single integer a `SELECT COUNT(*)` returns.
    pub fn scalar_int(&self) -> Option<i64> {
        match self.rows.as_slice() {
            [row] => match row.as_slice() {
                [Value::Int(i)] => Some(*i),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Aggregated engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub disk: DiskStats,
    pub buffer: BufferStats,
    pub exec: ExecStats,
    /// SQL statements executed through the `execute` entry points.
    pub statements: u64,
    /// Tables created / dropped (temp-table churn shows up here).
    pub tables_created: u64,
    pub tables_dropped: u64,
}

/// An index description: name, key column positions, ordered flag.
pub type IndexSpec = (String, Vec<usize>, bool);

/// Decode a stored payload, reporting damage as [`DbError::Corruption`].
fn decode_stored(table: &str, rid: RecordId, payload: &[u8]) -> Result<Tuple, DbError> {
    crate::schema::deserialize_tuple(payload).ok_or_else(|| {
        DbError::Corruption(format!(
            "table {table}: stored tuple at {rid:?} does not deserialize"
        ))
    })
}

/// One catalog-level action taken inside the active transaction. The
/// page-level effects are undone by the disk's WAL; these record the
/// in-memory catalog changes so rollback/recovery can reverse them in
/// reverse order (which handles create-then-drop interleavings exactly).
enum TxnOp {
    Created(String),
    Dropped(Table),
}

/// Catalog bookkeeping for the active engine-level transaction.
#[derive(Default)]
struct TxnState {
    ops: Vec<TxnOp>,
}

/// Handle to a statement compiled with [`Engine::prepare`]. The paper's Run
/// Time Library is an embedded-SQL program — statements compile once and
/// execute many times — and this is that seam: the LFP runtime prepares its
/// per-rule SQL once per fixpoint call and re-executes the handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StmtId(u64);

/// A prepared statement: the parsed AST plus, for query-bearing statements,
/// the physical plan cached under the catalog epoch it was built against.
struct PreparedStmt {
    stmt: Stmt,
    n_params: usize,
    plan: Option<(u64, PlannedQuery)>,
}

/// The in-process relational engine.
pub struct Engine {
    disk: Disk,
    pool: BufferPool,
    catalog: Catalog,
    exec_stats: ExecStats,
    statements: u64,
    tables_created: u64,
    tables_dropped: u64,
    txn: Option<TxnState>,
    /// Bumped on every catalog change (CREATE/DROP table or index, rollback,
    /// recovery); cached plans tagged with an older epoch are re-planned
    /// before use. TRUNCATE does not bump it: schemas and indexes survive.
    catalog_epoch: u64,
    prepared: BTreeMap<u64, PreparedStmt>,
    next_stmt_id: u64,
    /// Per-operator profile collected by the most recent EXPLAIN ANALYZE.
    last_profile: Vec<OpProfile>,
    /// Worker count handed to the executor's partitioned operators. 1 (the
    /// default) is the historical single-threaded read path; any setting
    /// produces byte-identical plans and answers. Initialized from the
    /// `RDBMS_PARALLELISM` environment variable when set, so whole test
    /// suites can be swept at a parallelism level without code changes.
    parallelism: usize,
    /// Cooperative cancellation flag shared with every clone handed out by
    /// [`Engine::cancel_handle`]. Once set, every governed statement fails
    /// with [`DbError::Budget`] (kind `Canceled`) at its next batch
    /// boundary until [`Engine::reset_cancel`] acknowledges it — a
    /// canceled session stays canceled, it does not silently resume.
    cancel: Arc<AtomicBool>,
    /// Wall-clock allowance per statement; converted to an absolute
    /// deadline when each statement's governor is created.
    statement_timeout: Option<Duration>,
    /// Cumulative rows-processed budget per statement.
    max_rows: Option<u64>,
    /// Materialized-state byte budget per statement (hash-join builds).
    max_bytes: Option<u64>,
    /// Absolute deadline imposed by the layer above (the Knowledge
    /// Manager's per-evaluation deadline); combined with the per-statement
    /// timeout by taking whichever expires first.
    eval_deadline: Option<Instant>,
    /// Governor breaches observed, by kind (for the metrics registry).
    gov_canceled: u64,
    gov_deadline: u64,
    gov_rows: u64,
    gov_memory: u64,
    /// Result of the most recent post-recovery integrity verification
    /// reported via [`Engine::note_recovery_verified`]; `None` until a
    /// recovery has been verified (gauge reads -1).
    recovery_verified: Option<bool>,
    /// Whether memory-bounded operators divert to spill files when the
    /// memory budget cannot hold their state. Initialized from the
    /// `RDBMS_SPILL` environment variable (`off`/`0`/`false` disables,
    /// `force` spills unconditionally, anything else enables).
    spill: SpillMode,
    /// Rows per operator batch; initialized from `RDBMS_BATCH_SIZE`.
    batch_rows: usize,
    /// Physical planner mode: cost-based (the default) or the legacy
    /// heuristics, kept for ablation. Initialized from the
    /// `RDBMS_COST_PLANNER` environment variable (`off`/`0`/`heuristic`
    /// selects the heuristics).
    planner_mode: PlannerMode,
    /// Statistics refreshes (analyze scans) run, and rows sampled by them.
    stats_refreshes: u64,
    stats_sampled_rows: u64,
    /// Rewrite-rule activity accumulated at plan time.
    rewrite_predicates_pushed: u64,
    rewrite_projections_pruned: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    pub fn new() -> Engine {
        Engine::with_pool_size(DEFAULT_POOL_FRAMES)
    }

    pub fn with_pool_size(frames: usize) -> Engine {
        let mut disk = Disk::new();
        // A fault-heavy CI profile: `RDBMS_FAULT_PROFILE=transient:<n>`
        // arms a transient-read injector on every fresh engine so the
        // whole test suite runs with the read-retry path constantly
        // exercised. The retry loop masks any n >= 2 (a read only fails
        // permanently after consecutive faulted retries).
        if let Some(n) = fault_profile_transient() {
            disk.set_fault_injector(FaultInjector::new().transient_read_every(n));
        }
        Engine {
            disk,
            pool: BufferPool::new(frames),
            catalog: Catalog::new(),
            exec_stats: ExecStats::default(),
            statements: 0,
            tables_created: 0,
            tables_dropped: 0,
            txn: None,
            catalog_epoch: 0,
            prepared: BTreeMap::new(),
            next_stmt_id: 0,
            last_profile: Vec::new(),
            parallelism: default_parallelism(),
            cancel: Arc::new(AtomicBool::new(false)),
            statement_timeout: None,
            max_rows: None,
            max_bytes: None,
            eval_deadline: None,
            gov_canceled: 0,
            gov_deadline: 0,
            gov_rows: 0,
            gov_memory: 0,
            recovery_verified: None,
            spill: default_spill_mode(),
            batch_rows: default_batch_rows(),
            planner_mode: default_planner_mode(),
            stats_refreshes: 0,
            stats_sampled_rows: 0,
            rewrite_predicates_pushed: 0,
            rewrite_projections_pruned: 0,
        }
    }

    /// Select the physical planner: cost-based or the legacy heuristics.
    /// Switching modes drops cached plans (they were built the other way).
    pub fn set_planner_mode(&mut self, mode: PlannerMode) {
        if self.planner_mode != mode {
            self.planner_mode = mode;
            self.catalog_epoch += 1;
        }
    }

    pub fn planner_mode(&self) -> PlannerMode {
        self.planner_mode
    }

    // ------------------------------------------------------------------
    // Execution governor
    // ------------------------------------------------------------------

    /// Set the per-statement wall-clock allowance (`None` = unlimited).
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = timeout;
    }

    /// Set the per-statement rows-processed budget (`None` = unlimited).
    /// Every operator's materialized output counts, so intermediate
    /// blow-ups trip it even when the final result is small.
    pub fn set_row_budget(&mut self, rows: Option<u64>) {
        self.max_rows = rows;
    }

    /// Set the per-statement materialized-bytes budget (`None` =
    /// unlimited). Charged for hash-join build sides. With spilling
    /// enabled (the default) an operator whose state would not fit the
    /// remaining budget partitions to disk instead of failing; with
    /// [`SpillMode::Disabled`] a breach surfaces as [`DbError::Budget`].
    pub fn set_memory_budget(&mut self, bytes: Option<u64>) {
        self.max_bytes = bytes;
    }

    /// Set whether memory-bounded operators may spill to disk.
    pub fn set_spill_mode(&mut self, mode: SpillMode) {
        self.spill = mode;
    }

    pub fn spill_mode(&self) -> SpillMode {
        self.spill
    }

    /// Set the operator batch size (rows gathered per buffer-pool visit
    /// in scans, rows per governor poll in probe/filter loops). Answers
    /// are identical at any setting ≥ 1.
    pub fn set_batch_rows(&mut self, rows: usize) {
        self.batch_rows = rows.max(1);
    }

    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Impose (or clear) an absolute deadline that applies to every
    /// statement until cleared — the Knowledge Manager sets this around an
    /// LFP evaluation so the whole fixpoint, not each statement, races the
    /// clock.
    pub fn set_eval_deadline(&mut self, deadline: Option<Instant>) {
        self.eval_deadline = deadline;
    }

    /// A clone of the cooperative cancellation flag. Store it anywhere
    /// (another thread, a fault injector) and set it to cancel whatever
    /// statement is running at its next batch boundary.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Request cancellation of the running (and any subsequent) statement.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested and not yet acknowledged.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Acknowledge a cancellation, letting statements run again.
    pub fn reset_cancel(&self) {
        self.cancel.store(false, Ordering::Relaxed);
    }

    /// Record the outcome of a post-recovery integrity verification (the
    /// knowledge layer runs the check; the engine owns the metric).
    pub fn note_recovery_verified(&mut self, ok: bool) {
        self.recovery_verified = Some(ok);
    }

    /// Build this statement's governor from the session limits. The
    /// per-statement timeout and the evaluation deadline combine by
    /// whichever expires first.
    fn governor(&self) -> QueryGovernor {
        let deadline = match (self.statement_timeout, self.eval_deadline) {
            (None, None) => None,
            (Some(t), None) => Some(Instant::now() + t),
            (None, Some(d)) => Some(d),
            (Some(t), Some(d)) => Some((Instant::now() + t).min(d)),
        };
        QueryGovernor::new(
            ExecLimits {
                deadline,
                max_rows: self.max_rows,
                max_bytes: self.max_bytes,
            },
            Arc::clone(&self.cancel),
        )
    }

    /// Count a budget breach by kind on the way out, so the metrics
    /// registry can report why statements were cut short.
    fn note_budget<T>(&mut self, r: Result<T, DbError>) -> Result<T, DbError> {
        if let Err(DbError::Budget(b)) = &r {
            match b.kind {
                BudgetKind::Canceled => self.gov_canceled += 1,
                BudgetKind::Deadline => self.gov_deadline += 1,
                BudgetKind::Rows => self.gov_rows += 1,
                BudgetKind::Memory => self.gov_memory += 1,
            }
        }
        r
    }

    /// Set the worker count for partitioned read operators (clamped to at
    /// least 1). Answers and plans are byte-identical at any setting; only
    /// wall time and the `exec.tasks_spawned` counter change.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.parallelism = workers.max(1);
    }

    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Resize the buffer pool to `frames` frames (dirty pages are
    /// flushed first, the cache restarts cold). Experiments use this to
    /// pit a working set against a deliberately undersized cache.
    pub fn set_pool_frames(&mut self, frames: usize) -> Result<(), DbError> {
        self.pool.resize(&mut self.disk, frames)
    }

    /// Current buffer-pool capacity in frames.
    pub fn pool_frames(&self) -> usize {
        self.pool.capacity()
    }

    // ------------------------------------------------------------------
    // MVCC snapshots
    // ------------------------------------------------------------------

    /// A copy-on-write snapshot of this engine. Disk pages and catalog
    /// entries are shared by `Arc`, so the fork costs O(#tables +
    /// #pages) pointer copies and the two engines are fully isolated
    /// afterwards: a write on either side copies only the page or
    /// catalog entry it touches (counted in `disk.pages_cow`). Dirty
    /// buffered pages are flushed first so the snapshot reflects every
    /// committed write this engine has performed.
    ///
    /// The fork starts with a fresh buffer pool, fresh statistics, its
    /// own cancellation flag, no WAL, no fault injector, and no prepared
    /// statements — it is the MVCC read surface of a concurrent session
    /// ([`crate::concurrent`]), never a durability domain. Execution
    /// knobs (parallelism, spill mode, batch size, budgets) carry over.
    pub fn fork(&mut self) -> Result<Engine, DbError> {
        if self.txn.is_some() {
            return Err(DbError::Txn(
                "cannot fork during an active transaction".into(),
            ));
        }
        self.pool.flush_all(&mut self.disk)?;
        Ok(Engine {
            disk: self.disk.fork(),
            pool: BufferPool::new(self.pool.capacity()),
            catalog: self.catalog.clone(),
            exec_stats: ExecStats::default(),
            statements: 0,
            tables_created: 0,
            tables_dropped: 0,
            txn: None,
            catalog_epoch: self.catalog_epoch,
            prepared: BTreeMap::new(),
            next_stmt_id: 0,
            last_profile: Vec::new(),
            parallelism: self.parallelism,
            cancel: Arc::new(AtomicBool::new(false)),
            statement_timeout: self.statement_timeout,
            max_rows: self.max_rows,
            max_bytes: self.max_bytes,
            eval_deadline: None,
            gov_canceled: 0,
            gov_deadline: 0,
            gov_rows: 0,
            gov_memory: 0,
            recovery_verified: None,
            spill: self.spill,
            batch_rows: self.batch_rows,
            planner_mode: self.planner_mode,
            stats_refreshes: 0,
            stats_sampled_rows: 0,
            rewrite_predicates_pushed: 0,
            rewrite_projections_pruned: 0,
        })
    }

    /// Defer per-commit durability flushes to an explicit
    /// [`Engine::fsync_wal`] (the group-commit path; see
    /// [`crate::concurrent`]).
    pub fn set_defer_fsync(&mut self, on: bool) {
        self.disk.set_defer_fsync(on);
    }

    /// Flush the WAL once on behalf of every deferred commit since the
    /// last flush; returns how many commits this fsync made durable.
    pub fn fsync_wal(&mut self) -> u64 {
        self.disk.fsync_wal()
    }

    /// Number of live files on the underlying disk (tables, indexes'
    /// heaps, spill files). Tests use this to assert spill files are
    /// reclaimed after aborted statements.
    pub fn disk_live_files(&self) -> usize {
        self.disk.live_files()
    }

    // ------------------------------------------------------------------
    // Durability and transactions
    // ------------------------------------------------------------------

    /// Turn on write-ahead logging (required before [`Engine::begin`]).
    pub fn enable_wal(&mut self) {
        self.disk.enable_wal();
    }

    pub fn wal_enabled(&self) -> bool {
        self.disk.wal_enabled()
    }

    /// Arm a deterministic fault injector on the underlying disk.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.disk.set_fault_injector(injector);
    }

    pub fn clear_fault_injector(&mut self) {
        self.disk.clear_fault_injector();
    }

    /// Whether an injected fault has "powered off" the disk; all I/O fails
    /// until [`Engine::recover`] runs.
    pub fn crashed(&self) -> bool {
        self.disk.crashed()
    }

    /// Keep committed WAL records instead of checkpointing at commit
    /// (tests exercising the redo path use this).
    pub fn set_checkpoint_on_commit(&mut self, on: bool) {
        self.disk.set_checkpoint_on_commit(on);
    }

    /// Byte threshold above which a commit checkpoints the WAL even when
    /// `checkpoint_on_commit` is off, so the log cannot grow without
    /// bound in redo-retaining mode. `None` disables auto-checkpointing.
    pub fn set_wal_autocheckpoint_bytes(&mut self, threshold: Option<u64>) {
        self.disk.set_wal_autocheckpoint_bytes(threshold);
    }

    /// Whether an engine-level transaction is active.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Flush every dirty buffered page to the disk.
    pub fn flush(&mut self) -> Result<(), DbError> {
        self.pool.flush_all(&mut self.disk)
    }

    /// Begin a transaction. All buffered pages are flushed first so that
    /// every before-image logged during the transaction reflects true
    /// pre-transaction disk state — otherwise rollback could lose writes
    /// that predate the transaction but were still sitting in the pool.
    pub fn begin(&mut self) -> Result<(), DbError> {
        if self.txn.is_some() {
            return Err(DbError::Txn("a transaction is already active".into()));
        }
        self.pool.flush_all(&mut self.disk)?;
        self.disk.begin_txn()?;
        self.txn = Some(TxnState::default());
        Ok(())
    }

    /// Commit the active transaction: flush all buffered pages (each
    /// flush is WAL-logged), then write the commit record and checkpoint.
    /// On error the transaction stays open; if the error was an injected
    /// crash the engine must go through [`Engine::recover`].
    pub fn commit(&mut self) -> Result<(), DbError> {
        if self.txn.is_none() {
            return Err(DbError::Txn("commit without an active transaction".into()));
        }
        // The governor gates the *entry* to commit: a cancellation or
        // deadline observed here aborts before any commit work starts,
        // but once the flush begins the commit runs to completion — the
        // stored state is always fully pre- or fully post-commit, never
        // somewhere in between because a flag flipped mid-flush.
        let check = self.governor().check();
        self.note_budget(check)?;
        self.pool.flush_all(&mut self.disk)?;
        self.disk.commit_txn()?;
        self.txn = None;
        Ok(())
    }

    /// Roll back the active transaction on a healthy disk: discard all
    /// buffered pages, restore before-images from the WAL, and reverse
    /// the catalog changes. A crashed disk rejects this; use
    /// [`Engine::recover`].
    pub fn rollback(&mut self) -> Result<(), DbError> {
        let state = self
            .txn
            .take()
            .ok_or_else(|| DbError::Txn("rollback without an active transaction".into()))?;
        self.pool.discard_all();
        if let Err(e) = self.disk.rollback_txn() {
            // Keep the catalog bookkeeping so recover() can still undo it.
            self.txn = Some(state);
            return Err(e);
        }
        self.undo_catalog(state);
        self.rebuild_volatile_state()
    }

    /// Crash recovery: discard the (possibly stale) buffer pool, replay
    /// committed WAL records and undo uncommitted ones, reverse any
    /// catalog changes of an in-flight transaction, and rebuild all
    /// volatile state (heap counters, in-memory indexes) from the
    /// recovered pages.
    pub fn recover(&mut self) -> Result<RecoveryReport, DbError> {
        self.pool.discard_all();
        let report = self.disk.recover_wal()?;
        if let Some(state) = self.txn.take() {
            self.undo_catalog(state);
        }
        self.rebuild_volatile_state()?;
        Ok(report)
    }

    /// Reverse the catalog-level actions of a transaction, newest first.
    fn undo_catalog(&mut self, state: TxnState) {
        self.catalog_epoch += 1;
        for op in state.ops.into_iter().rev() {
            match op {
                TxnOp::Created(name) => {
                    // The heap file itself is removed by the WAL undo.
                    let _ = self.catalog.take_table(&name);
                }
                TxnOp::Dropped(table) => self.catalog.restore_table(table),
            }
        }
    }

    /// Rebuild everything that lives only in memory from on-disk pages:
    /// heap tuple counts / insert hints, and index directories.
    fn rebuild_volatile_state(&mut self) -> Result<(), DbError> {
        let disk = &mut self.disk;
        let pool = &mut self.pool;
        for table in self.catalog.tables_mut() {
            table.heap.rebuild_stats(disk, pool)?;
            if table.indexes.is_empty() {
                continue;
            }
            for index in &mut table.indexes {
                index.clear();
            }
            let mut scan = table.heap.scan();
            while let Some((rid, payload)) = scan.next(disk, pool)? {
                let tuple = decode_stored(&table.name, rid, &payload)?;
                for index in &mut table.indexes {
                    index.insert(&tuple, rid);
                }
            }
        }
        Ok(())
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let t0 = Instant::now();
        let stmt = parse_stmt(sql);
        self.exec_stats.parse_ns += t0.elapsed().as_nanos() as u64;
        self.run_stmt(&stmt?)
    }

    /// Execute a semicolon-separated script, returning the last result.
    pub fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        let t0 = Instant::now();
        let stmts = parse_script(sql);
        self.exec_stats.parse_ns += t0.elapsed().as_nanos() as u64;
        let mut last = ResultSet::empty();
        for stmt in &stmts? {
            last = self.run_stmt(stmt)?;
        }
        Ok(last)
    }

    // ------------------------------------------------------------------
    // Prepared statements
    // ------------------------------------------------------------------

    /// Parse `sql` once and keep the AST for repeated execution. `?`
    /// placeholders become positional parameters bound at
    /// [`Engine::execute_prepared`] time; query-bearing statements also get
    /// their physical plan cached (per catalog epoch) on first execution.
    pub fn prepare(&mut self, sql: &str) -> Result<StmtId, DbError> {
        let t0 = Instant::now();
        let parsed = parse_stmt_params(sql);
        self.exec_stats.parse_ns += t0.elapsed().as_nanos() as u64;
        let (stmt, n_params) = parsed?;
        let id = self.next_stmt_id;
        self.next_stmt_id += 1;
        self.prepared.insert(
            id,
            PreparedStmt {
                stmt,
                n_params,
                plan: None,
            },
        );
        Ok(StmtId(id))
    }

    /// Drop a prepared statement and its cached plan.
    pub fn deallocate(&mut self, id: StmtId) -> Result<(), DbError> {
        self.prepared
            .remove(&id.0)
            .map(|_| ())
            .ok_or_else(|| DbError::Plan(format!("no such prepared statement: {id:?}")))
    }

    /// Execute a prepared statement with `params` bound to its `?`
    /// placeholders in parse order. Queries reuse the cached physical plan
    /// when the catalog epoch still matches; otherwise they re-plan (and
    /// re-cache) first — a DROP/CREATE of a referenced table can therefore
    /// never execute a stale plan.
    pub fn execute_prepared(&mut self, id: StmtId, params: &[Value]) -> Result<ResultSet, DbError> {
        let (stmt, n_params) = {
            let e = self
                .prepared
                .get(&id.0)
                .ok_or_else(|| DbError::Plan(format!("no such prepared statement: {id:?}")))?;
            (e.stmt.clone(), e.n_params)
        };
        if params.len() != n_params {
            return Err(DbError::Plan(format!(
                "prepared statement expects {n_params} parameter(s), got {}",
                params.len()
            )));
        }
        self.statements += 1;
        match &stmt {
            Stmt::Select(query) => {
                let planned = self.cached_plan(id, query, None)?;
                self.execute_planned(&planned, params)
            }
            Stmt::InsertSelect { table, query } => {
                let planned = self.cached_plan(id, query, Some(table))?;
                let rows = self.execute_planned(&planned, params)?.rows;
                let n = self.insert_rows(table, rows)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::InsertValues { table, rows } => {
                let rows = bind_rows(rows, params)?;
                let n = self.insert_rows(table, rows)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::Delete { table, predicate } => {
                let bound = bind_conditions(predicate, params)?;
                let n = self.delete_where(table, &bound)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::Explain(query) => {
                let planned = self.cached_plan(id, query, None)?;
                Ok(explain_result(&planned))
            }
            Stmt::ExplainAnalyze(query) => {
                let planned = self.cached_plan(id, query, None)?;
                self.explain_analyze(&planned, params)
            }
            other => self.dispatch_stmt(other),
        }
    }

    /// Fetch the plan cached for `id` if it was built under the current
    /// catalog epoch and the statistics it was costed from are still
    /// current; otherwise (re-)plan, type-check an INSERT SELECT target if
    /// given, and cache the result under the current epoch.
    fn cached_plan(
        &mut self,
        id: StmtId,
        query: &Query,
        insert_target: Option<&str>,
    ) -> Result<PlannedQuery, DbError> {
        let epoch = self.catalog_epoch;
        let mut stale = false;
        if let Some((cached_epoch, planned)) =
            self.prepared.get(&id.0).and_then(|e| e.plan.as_ref())
        {
            if *cached_epoch == epoch {
                // The epoch only tracks schema changes; join orders and
                // join methods were costed from the statistics at plan
                // time. Re-plan when any base table's statistics version
                // moved (analyze or truncate) or its live row count
                // diverged past the drift threshold — the cached plan may
                // be inverted relative to what the planner picks today.
                if !stats_stale(&self.catalog, planned) {
                    self.exec_stats.plan_cache_hits += 1;
                    return Ok(planned.clone());
                }
                stale = true;
            }
        }
        if stale {
            self.exec_stats.plan_replans += 1;
        } else {
            self.exec_stats.plan_cache_misses += 1;
        }
        let t0 = Instant::now();
        let planned = self.plan_with_mode(query);
        self.exec_stats.plan_ns += t0.elapsed().as_nanos() as u64;
        let planned = planned?;
        if let Some(table) = insert_target {
            self.check_insert_select_types(table, query)?;
        }
        if let Some(e) = self.prepared.get_mut(&id.0) {
            e.plan = Some((epoch, planned.clone()));
        }
        Ok(planned)
    }

    /// Plan a query under the engine's planner mode, folding the rewrite
    /// report into the engine-wide rewrite counters.
    fn plan_with_mode(&mut self, query: &Query) -> Result<PlannedQuery, DbError> {
        let planned = plan_query(&self.catalog, query, self.planner_mode)?;
        self.rewrite_predicates_pushed += planned.rewrites.predicates_pushed;
        self.rewrite_projections_pruned += planned.rewrites.projections_pruned;
        Ok(planned)
    }

    /// Execute an already-parsed statement.
    pub fn run_stmt(&mut self, stmt: &Stmt) -> Result<ResultSet, DbError> {
        if stmt_has_param(stmt) {
            return Err(DbError::Plan(
                "statement contains `?` parameters; use prepare/execute_prepared".into(),
            ));
        }
        self.statements += 1;
        self.dispatch_stmt(stmt)
    }

    fn dispatch_stmt(&mut self, stmt: &Stmt) -> Result<ResultSet, DbError> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                temp,
            } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|(n, t)| crate::schema::Column::new(n.clone(), *t))
                        .collect(),
                );
                self.catalog
                    .create_table(&mut self.disk, name, schema, *temp)?;
                self.tables_created += 1;
                self.catalog_epoch += 1;
                if let Some(txn) = self.txn.as_mut() {
                    txn.ops.push(TxnOp::Created(name.clone()));
                }
                Ok(ResultSet::empty())
            }
            Stmt::DropTable { name, if_exists } => {
                let result = if self.txn.is_some() {
                    self.drop_table_in_txn(name)
                } else {
                    self.catalog
                        .drop_table(&mut self.disk, &mut self.pool, name)
                };
                match result {
                    Ok(()) => {
                        self.tables_dropped += 1;
                        self.catalog_epoch += 1;
                        Ok(ResultSet::empty())
                    }
                    Err(DbError::NoSuchTable(_)) if *if_exists => Ok(ResultSet::empty()),
                    Err(e) => Err(e),
                }
            }
            Stmt::CreateIndex {
                name,
                table,
                columns,
                ordered,
            } => {
                self.catalog.create_index(
                    &mut self.disk,
                    &mut self.pool,
                    name,
                    table,
                    columns,
                    *ordered,
                )?;
                self.catalog_epoch += 1;
                Ok(ResultSet::empty())
            }
            Stmt::DropIndex { name } => {
                self.catalog.drop_index(name)?;
                self.catalog_epoch += 1;
                Ok(ResultSet::empty())
            }
            Stmt::InsertValues { table, rows } => {
                // run_stmt's parameter guard ensures every scalar is a
                // literal here.
                let rows = bind_rows(rows, &[])?;
                let n = self.insert_rows(table, rows)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::InsertSelect { table, query } => {
                // Type-check source against target, then run and load.
                self.check_insert_select_types(table, query)?;
                let rows = self.run_query(query)?.rows;
                let n = self.insert_rows(table, rows)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::InsertTransitiveClosure { table, source } => {
                let n = self.transitive_closure(source, table)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::Delete { table, predicate } => {
                let n = self.delete_where(table, predicate)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::Truncate { table } => {
                let n = self.clear_table(table)?;
                Ok(ResultSet::dml(n))
            }
            Stmt::Select(query) => self.run_query(query),
            Stmt::Explain(query) => {
                let t0 = Instant::now();
                let planned = self.plan_with_mode(query);
                self.exec_stats.plan_ns += t0.elapsed().as_nanos() as u64;
                Ok(explain_result(&planned?))
            }
            Stmt::ExplainAnalyze(query) => {
                let t0 = Instant::now();
                let planned = self.plan_with_mode(query);
                self.exec_stats.plan_ns += t0.elapsed().as_nanos() as u64;
                self.explain_analyze(&planned?, &[])
            }
        }
    }

    /// Check that `query`'s output column types match `table`'s schema.
    fn check_insert_select_types(&self, table: &str, query: &Query) -> Result<(), DbError> {
        let src_types = output_types(&self.catalog, query)?;
        let target = self.catalog.table(table)?;
        if src_types.len() != target.schema.arity() {
            return Err(DbError::Plan(format!(
                "INSERT SELECT arity mismatch: query yields {} columns, {} has {}",
                src_types.len(),
                table,
                target.schema.arity()
            )));
        }
        for (i, ty) in src_types.iter().enumerate() {
            let expected = target.schema.column(i).ty;
            if *ty != expected {
                return Err(DbError::TypeMismatch(format!(
                    "INSERT SELECT column {i}: query yields {ty}, {table} expects {expected}"
                )));
            }
        }
        Ok(())
    }

    /// `DROP TABLE` inside a transaction: keep the [`Table`] so rollback
    /// can resurrect it; the disk defers the file drop to commit. Cached
    /// frames are discarded, which is safe because `begin` flushed all
    /// pre-transaction state and in-transaction changes to a doomed table
    /// are dead either way (dropped at commit, undone at rollback).
    fn drop_table_in_txn(&mut self, name: &str) -> Result<(), DbError> {
        let table = self.catalog.take_table(name)?;
        self.pool.discard_file(table.heap.file_id());
        self.disk.drop_file(table.heap.file_id());
        self.txn
            .as_mut()
            .expect("checked by caller")
            .ops
            .push(TxnOp::Dropped(table));
        Ok(())
    }

    /// Plan and execute a query against the current catalog.
    fn run_query(&mut self, query: &Query) -> Result<ResultSet, DbError> {
        let t0 = Instant::now();
        let planned = self.plan_with_mode(query);
        self.exec_stats.plan_ns += t0.elapsed().as_nanos() as u64;
        self.execute_planned(&planned?, &[])
    }

    /// Run a physical plan with the given parameter bindings.
    fn execute_planned(
        &mut self,
        planned: &PlannedQuery,
        params: &[Value],
    ) -> Result<ResultSet, DbError> {
        let t0 = Instant::now();
        let governor = self.governor();
        let rows = {
            let mut ctx = ExecCtx {
                catalog: &self.catalog,
                disk: &mut self.disk,
                pool: &mut self.pool,
                stats: &mut self.exec_stats,
                params,
                profiler: None,
                parallelism: self.parallelism,
                governor: Some(&governor),
                spill: self.spill,
                batch_rows: self.batch_rows,
            };
            execute_plan(&planned.plan, &mut ctx)
        };
        self.exec_stats.exec_ns += t0.elapsed().as_nanos() as u64;
        let rows = self.note_budget(rows)?;
        self.exec_stats.rows_output += rows.len() as u64;
        Ok(ResultSet {
            columns: planned.columns.clone(),
            rows,
            affected: 0,
        })
    }

    /// Execute `planned` with the per-operator profiler installed and
    /// render the plan tree annotated with runtime counters. The collected
    /// profile stays available through [`Engine::last_profile`].
    fn explain_analyze(
        &mut self,
        planned: &PlannedQuery,
        params: &[Value],
    ) -> Result<ResultSet, DbError> {
        let t0 = Instant::now();
        let governor = self.governor();
        let (rows, profile) = {
            let mut ctx = ExecCtx {
                catalog: &self.catalog,
                disk: &mut self.disk,
                pool: &mut self.pool,
                stats: &mut self.exec_stats,
                params,
                profiler: Some(Profiler::default()),
                parallelism: self.parallelism,
                governor: Some(&governor),
                spill: self.spill,
                batch_rows: self.batch_rows,
            };
            let rows = execute_plan(&planned.plan, &mut ctx);
            let profile = ctx.profiler.take().expect("installed above").into_nodes();
            (rows, profile)
        };
        self.exec_stats.exec_ns += t0.elapsed().as_nanos() as u64;
        let rows = self.note_budget(rows)?;
        self.exec_stats.rows_output += rows.len() as u64;
        // The profiler records operators in strict pre-order — the same
        // order `estimate_plan` walked the plan — so the planner's row
        // estimates zip onto the profile nodes by index.
        let mut profile = profile;
        for (op, est) in profile.iter_mut().zip(planned.est_rows.iter()) {
            op.est_rows = Some(*est);
        }
        let mut lines: Vec<Tuple> = profile
            .iter()
            .map(|op| vec![Value::Str(render_op_profile(op))])
            .collect();
        // Top-level misestimation summary: the worst estimated-vs-actual
        // ratio across operators, naming the offender.
        let worst = profile
            .iter()
            .filter_map(|op| {
                let est = op.est_rows?;
                let actual = op.rows_out;
                let ratio = (est.max(actual).max(1)) as f64 / (est.min(actual).max(1)) as f64;
                Some((ratio, op.label.clone()))
            })
            .max_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((ratio, label)) = worst {
            lines.push(vec![Value::Str(format!(
                "max misestimate {ratio:.1}x at {label}"
            ))]);
        }
        self.last_profile = profile;
        Ok(ResultSet {
            columns: vec!["plan".to_string()],
            rows: lines,
            affected: 0,
        })
    }

    /// Per-operator profile of the most recent `EXPLAIN ANALYZE`, in
    /// pre-order (the same order as the rendered plan rows).
    pub fn last_profile(&self) -> &[OpProfile] {
        &self.last_profile
    }

    /// EXPLAIN lines of the physical plan currently cached for a prepared
    /// statement, if one has been built. Lets tests and tools observe the
    /// join order a prepared statement would actually execute.
    pub fn prepared_plan_text(&self, id: StmtId) -> Option<Vec<String>> {
        self.prepared
            .get(&id.0)
            .and_then(|e| e.plan.as_ref())
            .map(|(_, planned)| planned.plan.explain())
    }

    /// Bulk-insert rows (programmatic fast path; also used by SQL INSERT).
    /// The whole batch is type-checked against the table schema before any
    /// row touches the heap, so a mid-batch mismatch cannot leave a partial
    /// insert behind.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Tuple>) -> Result<u64, DbError> {
        // Governor checks happen *before* the first row is written: a
        // budget breach (or a pending cancellation) rejects the whole
        // batch, so DML batches stay all-or-nothing under the governor
        // exactly as they are under type checking.
        let governor = self.governor();
        let admitted = governor
            .check()
            .and_then(|()| governor.charge_rows(rows.len() as u64));
        self.note_budget(admitted)?;
        let t = self.catalog.table_mut(table)?;
        for row in &rows {
            if !t.schema.admits(row) {
                return Err(DbError::TypeMismatch(format!(
                    "row {row:?} does not match schema {} of {}",
                    t.schema, t.name
                )));
            }
        }
        let mut n = 0;
        for row in rows {
            let payload = serialize_tuple(&row);
            let rid = t.heap.insert(&mut self.disk, &mut self.pool, &payload)?;
            for index in &mut t.indexes {
                index.insert(&row, rid);
            }
            n += 1;
        }
        t.stats.note_mods(n);
        self.maybe_analyze(table)?;
        Ok(n)
    }

    /// Re-sample `table`'s column statistics if its modification counter
    /// has crossed the churn threshold since the last analyze.
    fn maybe_analyze(&mut self, table: &str) -> Result<(), DbError> {
        let t = self.catalog.table(table)?;
        if t.stats.is_stale(t.heap.tuple_count()) {
            self.analyze_table(table)?;
        }
        Ok(())
    }

    /// Rebuild `table`'s column statistics from a deterministic reservoir
    /// sample of its live rows. Runs ungoverned — an analyze scan is engine
    /// maintenance charged to no statement's budget — and bumps the stats
    /// version so cached plans costed from the old estimates re-plan.
    pub fn analyze_table(&mut self, table: &str) -> Result<(), DbError> {
        let t = self.catalog.table(table)?;
        let live = t.heap.tuple_count();
        let arity = t.schema.arity();
        // Seed from the table name and stats version: deterministic for a
        // replayed statement sequence, yet different across re-analyzes so
        // a pathological sample is not sticky.
        let seed = t
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            })
            .wrapping_add(t.stats.version);
        let mut reservoir = Reservoir::new(RESERVOIR_CAP, seed);
        let mut scan = t.heap.scan();
        while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
            reservoir.offer(decode_stored(table, rid, &payload)?);
        }
        let sampled = reservoir.rows().len() as u64;
        // An empty table has no distribution to describe: install no column
        // estimates (rather than degenerate zero-distinct ones) so the
        // first insert makes the table stale and triggers a real analyze.
        let columns = if live == 0 {
            Vec::new()
        } else {
            reservoir.column_stats(arity)
        };
        let epoch = self.catalog_epoch;
        let t = self.catalog.table_mut(table)?;
        t.stats.install(columns, live, epoch);
        self.stats_refreshes += 1;
        self.stats_sampled_rows += sampled;
        Ok(())
    }

    /// Empty `table` in one step, keeping its schema and (emptied) indexes —
    /// the TRUNCATE fast path that lets the LFP runtime recycle its
    /// per-iteration candidate/delta tables instead of dropping and
    /// recreating them. Returns the number of rows discarded. Truncation is
    /// not WAL-logged, so inside a transaction this falls back to the
    /// logged per-row delete path.
    pub fn clear_table(&mut self, table: &str) -> Result<u64, DbError> {
        if self.txn.is_some() {
            return self.delete_where(table, &[]);
        }
        self.truncate_now(table)
    }

    /// Non-transactional truncate: discard every heap page and clear the
    /// in-memory indexes. The catalog epoch is untouched — schemas and
    /// index definitions survive, so cached plans stay valid.
    fn truncate_now(&mut self, table: &str) -> Result<u64, DbError> {
        let t = self.catalog.table_mut(table)?;
        let prior = t.heap.tuple_count();
        t.heap.clear(&mut self.disk, &mut self.pool)?;
        for index in &mut t.indexes {
            index.clear();
        }
        // Column estimates describe rows that no longer exist; dropping
        // them also bumps the stats version so cached plans re-cost.
        t.stats.on_truncate();
        Ok(prior)
    }

    /// Delete rows matching a conjunction of conditions over one table.
    ///
    /// Three paths, cheapest first: an empty predicate outside a
    /// transaction truncates; a conjunction of simple per-column conditions
    /// is evaluated directly against the heap (via an index probe when an
    /// index key is fully covered by equality conditions, else one
    /// sequential scan); anything else — NOT EXISTS, type errors worth
    /// reporting — goes through the ordinary query pipeline, whose matching
    /// row *values* then drive a victim scan that is deliberately not
    /// counted as a second logical scan. Deletion removes every duplicate
    /// of a matched row, exactly as predicate semantics demand.
    fn delete_where(&mut self, table: &str, predicate: &[Condition]) -> Result<u64, DbError> {
        let governor = self.governor();
        let r = self.delete_where_governed(table, predicate, &governor);
        self.note_budget(r)
    }

    /// [`Engine::delete_where`] body, with the statement's governor in
    /// scope. The victim *search* is governed (entry check plus batch
    /// ticks in the scans); the victim *application* — removing already
    /// collected rids — runs to completion so a mid-delete breach can
    /// never leave half the matched duplicates behind.
    fn delete_where_governed(
        &mut self,
        table: &str,
        predicate: &[Condition],
        governor: &QueryGovernor,
    ) -> Result<u64, DbError> {
        governor.check()?;
        if predicate.is_empty() && self.txn.is_none() {
            return self.truncate_now(table);
        }

        let direct = if predicate.is_empty() {
            Some(Vec::new()) // in-txn delete-all: scan once, match everything
        } else {
            resolve_delete_conds(self.catalog.table(table)?, table, predicate)
        };

        let victims: Vec<(RecordId, Tuple)> = if let Some(conds) = direct {
            let t = self.catalog.table(table)?;
            // Probe an index when equality conditions cover its whole key.
            let probe: Option<(usize, Vec<Value>)> =
                t.indexes.iter().enumerate().find_map(|(pos, index)| {
                    let key: Option<Vec<Value>> = index
                        .key_cols()
                        .iter()
                        .map(|kc| {
                            conds.iter().find_map(|c| match c {
                                ExecCond::ColCmpLit(col, CmpOp::Eq, v) if col == kc => {
                                    Some(v.clone())
                                }
                                _ => None,
                            })
                        })
                        .collect();
                    key.map(|k| (pos, k))
                });
            let mut victims = Vec::new();
            if let Some((pos, key)) = probe {
                let rids: Vec<RecordId> = t.indexes[pos].lookup(&key).to_vec();
                self.exec_stats.index_probes += 1;
                for rid in rids {
                    let Some(payload) = t.heap.get(&mut self.disk, &mut self.pool, rid)? else {
                        continue;
                    };
                    self.exec_stats.tuples_fetched += 1;
                    let tuple = decode_stored(table, rid, &payload)?;
                    if crate::exec::eval_all(&conds, &tuple, &[]) {
                        victims.push((rid, tuple));
                    }
                }
            } else {
                let mut scan = t.heap.scan();
                let mut seen = 0usize;
                while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
                    if seen.is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
                        governor.check()?;
                    }
                    seen += 1;
                    self.exec_stats.tuples_scanned += 1;
                    let tuple = decode_stored(table, rid, &payload)?;
                    if crate::exec::eval_all(&conds, &tuple, &[]) {
                        victims.push((rid, tuple));
                    }
                }
            }
            victims
        } else {
            // Complex predicate: let the query pipeline find the matching
            // values (it counts its own scan), then locate their rids
            // without counting the victim scan a second time.
            let query = Query::Select(crate::sql::ast::SelectBlock {
                distinct: false,
                projections: vec![SelectItem::Star],
                from: vec![crate::sql::ast::TableRef {
                    table: table.to_string(),
                    alias: None,
                }],
                where_clause: predicate.to_vec(),
                group_by: Vec::new(),
                order_by: Vec::new(),
            });
            let matching: std::collections::HashSet<Tuple> =
                self.run_query(&query)?.rows.into_iter().collect();
            let t = self.catalog.table(table)?;
            let mut scan = t.heap.scan();
            let mut victims = Vec::new();
            while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
                let tuple = decode_stored(table, rid, &payload)?;
                if matching.contains(&tuple) {
                    victims.push((rid, tuple));
                }
            }
            victims
        };

        let t = self.catalog.table_mut(table)?;
        let n = victims.len() as u64;
        for (rid, tuple) in victims {
            t.heap.delete(&mut self.disk, &mut self.pool, rid)?;
            for index in &mut t.indexes {
                index.remove(&tuple, rid);
            }
        }
        t.stats.note_mods(n);
        self.maybe_analyze(table)?;
        Ok(n)
    }

    /// The specialized LFP operator of the paper's conclusion #8: compute
    /// the transitive closure of binary relation `source` entirely inside
    /// the engine — one scan, an in-memory semi-naive expansion, one bulk
    /// load — avoiding the per-iteration temporary tables, full-table
    /// copies and set-difference termination checks of the SQL-level loop.
    /// Appends the closure (deduplicated against `target`'s contents) to
    /// `target` and returns the number of rows added.
    pub fn transitive_closure(&mut self, source: &str, target: &str) -> Result<u64, DbError> {
        let governor = self.governor();
        let fresh = {
            let r = self.tc_expand(source, target, &governor);
            self.note_budget(r)?
        };
        self.insert_rows(target, fresh)
    }

    /// The expansion phase of [`Engine::transitive_closure`]: scan the
    /// source, run the in-memory reachability search, and return the new
    /// (deduplicated, sorted) closure rows. Governed throughout — the
    /// in-memory search is exactly where a dense cyclic input blows up,
    /// so each emitted closure pair counts against the row budget and
    /// cancellation is observed every batch of expansions.
    fn tc_expand(
        &mut self,
        source: &str,
        target: &str,
        governor: &QueryGovernor,
    ) -> Result<Vec<Tuple>, DbError> {
        use std::collections::{HashMap, HashSet};

        governor.check()?;
        let src = self.catalog.table(source)?;
        if src.schema.arity() != 2 {
            return Err(DbError::Plan(format!(
                "TRANSITIVE CLOSURE requires a binary relation; {} has arity {}",
                source,
                src.schema.arity()
            )));
        }
        let tgt = self.catalog.table(target)?;
        if tgt.schema.arity() != 2 {
            return Err(DbError::Plan(format!(
                "TRANSITIVE CLOSURE target must be binary; {} has arity {}",
                target,
                tgt.schema.arity()
            )));
        }

        // One scan of the source builds the adjacency map.
        let mut adjacency: HashMap<Value, Vec<Value>> = HashMap::new();
        let mut scan = src.heap.scan();
        let mut seen_rows = 0usize;
        while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
            if seen_rows.is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
                governor.check()?;
            }
            seen_rows += 1;
            self.exec_stats.tuples_scanned += 1;
            let mut tuple = decode_stored(source, rid, &payload)?;
            let b = tuple.pop().expect("binary");
            let a = tuple.pop().expect("binary");
            adjacency.entry(a).or_default().push(b);
        }

        // Per-source BFS: closed[a] = everything reachable from a. The
        // iteration works on pointers into the adjacency map — the "buffer
        // pointer manipulation" the paper says the operator enables.
        let mut closure: HashSet<(Value, Value)> = HashSet::new();
        for start in adjacency.keys() {
            let mut seen: HashSet<&Value> = HashSet::new();
            let mut stack: Vec<&Value> = vec![start];
            while let Some(node) = stack.pop() {
                for next in adjacency.get(node).into_iter().flatten() {
                    if seen.insert(next) {
                        if closure.len().is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
                            governor.check()?;
                        }
                        governor.charge_rows(1)?;
                        closure.insert((start.clone(), next.clone()));
                        stack.push(next);
                    }
                }
            }
        }

        // Deduplicate against existing target rows, then bulk-load.
        let existing: HashSet<(Value, Value)> = {
            let tgt = self.catalog.table(target)?;
            let mut scan = tgt.heap.scan();
            let mut out = HashSet::new();
            let mut seen_rows = 0usize;
            while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
                if seen_rows.is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
                    governor.check()?;
                }
                seen_rows += 1;
                self.exec_stats.tuples_scanned += 1;
                let mut tuple = decode_stored(target, rid, &payload)?;
                let b = tuple.pop().expect("binary");
                let a = tuple.pop().expect("binary");
                out.insert((a, b));
            }
            out
        };
        let mut fresh: Vec<Tuple> = closure
            .into_iter()
            .filter(|p| !existing.contains(p))
            .map(|(a, b)| vec![a, b])
            .collect();
        fresh.sort();
        Ok(fresh)
    }

    /// Number of live rows in `table`.
    pub fn table_len(&self, table: &str) -> Result<u64, DbError> {
        Ok(self.catalog.table(table)?.heap.tuple_count())
    }

    /// The optimizer statistics currently installed for `table`: row
    /// bookkeeping plus any analyzed per-column estimates.
    pub fn table_stats(&self, table: &str) -> Result<&crate::stats::TableStats, DbError> {
        Ok(&self.catalog.table(table)?.stats)
    }

    pub fn has_table(&self, table: &str) -> bool {
        self.catalog.has_table(table)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Schema of `table`.
    pub fn table_schema(&self, table: &str) -> Result<Schema, DbError> {
        Ok(self.catalog.table(table)?.schema.clone())
    }

    /// Schema, temp flag, and index specs (name, key columns) of `table` —
    /// the metadata snapshots persist.
    pub fn table_info(&self, table: &str) -> Result<(Schema, bool, Vec<IndexSpec>), DbError> {
        let t = self.catalog.table(table)?;
        let indexes = t
            .indexes
            .iter()
            .map(|i| (i.name().to_string(), i.key_cols().to_vec(), i.is_ordered()))
            .collect();
        Ok((t.schema.clone(), t.is_temp, indexes))
    }

    /// Materialize every live row of `table` (used by snapshots; prefer
    /// SQL for queries).
    pub fn scan_all(&mut self, table: &str) -> Result<Vec<Tuple>, DbError> {
        let t = self.catalog.table(table)?;
        let mut scan = t.heap.scan();
        let mut out = Vec::with_capacity(t.heap.tuple_count() as usize);
        while let Some((rid, payload)) = scan.next(&mut self.disk, &mut self.pool)? {
            out.push(decode_stored(table, rid, &payload)?);
        }
        Ok(out)
    }

    /// Drop all temporary tables, returning how many were dropped.
    pub fn drop_temp_tables(&mut self) -> usize {
        let n = self
            .catalog
            .drop_temp_tables(&mut self.disk, &mut self.pool);
        self.tables_dropped += n as u64;
        if n > 0 {
            self.catalog_epoch += 1;
        }
        n
    }

    /// A snapshot of all counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            disk: self.disk.stats(),
            buffer: self.pool.stats(),
            exec: self.exec_stats,
            statements: self.statements,
            tables_created: self.tables_created,
            tables_dropped: self.tables_dropped,
        }
    }

    /// All engine counters as a [`metrics::Registry`](crate::metrics::Registry)
    /// snapshot, ready for JSON export. Names are `layer.counter`.
    pub fn metrics(&self) -> crate::metrics::Registry {
        let s = self.stats();
        let mut r = crate::metrics::Registry::new();
        r.counter("disk.pages_read", s.disk.pages_read);
        r.counter("disk.pages_written", s.disk.pages_written);
        r.counter("disk.pages_allocated", s.disk.pages_allocated);
        r.counter("disk.pages_cow", s.disk.pages_cow);
        r.counter("disk.read_retries", s.disk.read_retries);
        r.counter("disk.torn_writes", s.disk.torn_writes);
        r.counter("disk.injected_faults", s.disk.injected_faults);
        r.counter("wal.records", s.disk.wal_records);
        r.counter("wal.bytes", s.disk.wal_bytes);
        r.counter("wal.checkpoints", s.disk.wal_checkpoints);
        r.counter("wal.auto_checkpoints", s.disk.wal_auto_checkpoints);
        r.counter("wal.fsyncs", s.disk.fsyncs);
        r.counter("wal.group_commits", s.disk.group_commits);
        r.counter("wal.group_committed_txns", s.disk.group_committed_txns);
        r.gauge("wal.high_water_bytes", s.disk.wal_high_water_bytes as f64);
        r.counter("buffer.hits", s.buffer.hits);
        r.counter("buffer.misses", s.buffer.misses);
        r.counter("buffer.evictions", s.buffer.evictions);
        r.counter("buffer.dirty_writebacks", s.buffer.dirty_writebacks);
        r.gauge("buffer.hit_rate", s.buffer.hit_rate());
        r.counter("exec.tuples_scanned", s.exec.tuples_scanned);
        r.counter("exec.tuples_fetched", s.exec.tuples_fetched);
        r.counter("exec.index_probes", s.exec.index_probes);
        r.counter("exec.join_output", s.exec.join_output);
        r.counter("exec.join_adaptive_flips", s.exec.join_adaptive_flips);
        r.counter("exec.rows_output", s.exec.rows_output);
        r.counter("exec.plan_cache_hits", s.exec.plan_cache_hits);
        r.counter("exec.plan_cache_misses", s.exec.plan_cache_misses);
        r.counter("exec.plan_replans", s.exec.plan_replans);
        r.counter("exec.parse_ns", s.exec.parse_ns);
        r.counter("exec.plan_ns", s.exec.plan_ns);
        r.counter("exec.exec_ns", s.exec.exec_ns);
        r.gauge("exec.threads", self.parallelism as f64);
        r.counter("exec.tasks_spawned", s.exec.tasks_spawned);
        r.gauge("exec.partition_skew", s.exec.partition_skew as f64);
        r.counter("exec.spill_partitions", s.exec.spill_partitions);
        r.counter("exec.spill_bytes", s.exec.spill_bytes);
        r.counter("exec.sort_runs", s.exec.sort_runs);
        r.counter("exec.batches", s.exec.batches);
        r.counter("governor.cancellations", self.gov_canceled);
        r.counter("governor.deadline_breaches", self.gov_deadline);
        r.counter("governor.row_budget_breaches", self.gov_rows);
        r.counter("governor.memory_budget_breaches", self.gov_memory);
        r.counter("engine.statements", s.statements);
        r.counter("engine.tables_created", s.tables_created);
        r.counter("engine.tables_dropped", s.tables_dropped);
        r.counter("stats.refreshes", self.stats_refreshes);
        r.counter("stats.sampled_rows", self.stats_sampled_rows);
        r.counter("plan.predicates_pushed", self.rewrite_predicates_pushed);
        r.counter("plan.projections_pruned", self.rewrite_projections_pruned);
        // -1 = no verified recovery yet, 1 = last recovery verified clean,
        // 0 = last recovery FAILED verification.
        r.gauge(
            "engine.recovery_verified",
            match self.recovery_verified {
                None => -1.0,
                Some(true) => 1.0,
                Some(false) => 0.0,
            },
        );
        r
    }
}

/// Executor parallelism a fresh engine starts with: `RDBMS_PARALLELISM`
/// when set to a positive integer, else 1 (serial).
fn default_parallelism() -> usize {
    std::env::var("RDBMS_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Planner mode a fresh engine starts with:
/// `RDBMS_COST_PLANNER=off|0|heuristic` selects the legacy heuristics
/// (always-index joins, syntactic join order) for ablation; anything else
/// (or unset) selects the cost-based planner.
fn default_planner_mode() -> PlannerMode {
    match std::env::var("RDBMS_COST_PLANNER").ok().as_deref() {
        Some("off") | Some("0") | Some("heuristic") => PlannerMode::Heuristic,
        _ => PlannerMode::CostBased,
    }
}

/// Spill mode a fresh engine starts with: `RDBMS_SPILL=off|0|false`
/// disables spilling (budget breaches stay fatal), `RDBMS_SPILL=force`
/// routes every memory-bounded operator through the spill path so test
/// suites exercise it on small data, anything else (or unset) enables
/// budget-triggered spilling.
fn default_spill_mode() -> SpillMode {
    match std::env::var("RDBMS_SPILL").ok().as_deref() {
        Some("off") | Some("0") | Some("false") => SpillMode::Disabled,
        Some("force") => SpillMode::Forced,
        _ => SpillMode::Enabled,
    }
}

/// Operator batch size a fresh engine starts with: `RDBMS_BATCH_SIZE`
/// when set to a positive integer, else [`DEFAULT_BATCH_ROWS`].
fn default_batch_rows() -> usize {
    std::env::var("RDBMS_BATCH_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_BATCH_ROWS)
}

/// Parse the `RDBMS_FAULT_PROFILE` environment variable. The only profile
/// today is `transient:<n>` — every nth page read fails once — used by CI
/// to run the whole suite with the retry path hot. Values below 2 are
/// ignored: a faulted retry of a faulted read would turn the transient
/// profile into a permanent outage.
fn fault_profile_transient() -> Option<u64> {
    let profile = std::env::var("RDBMS_FAULT_PROFILE").ok()?;
    let n = profile.strip_prefix("transient:")?.parse::<u64>().ok()?;
    (n >= 2).then_some(n)
}

fn scalar_is_param(s: &Scalar) -> bool {
    matches!(s, Scalar::Param(_))
}

fn cond_has_param(c: &Condition) -> bool {
    match c {
        Condition::Cmp { left, right, .. } => scalar_is_param(left) || scalar_is_param(right),
        Condition::InList { .. } => false,
        Condition::NotExists { conds, .. } => conds.iter().any(cond_has_param),
    }
}

fn query_has_param(q: &Query) -> bool {
    match q {
        Query::Select(b) => {
            b.where_clause.iter().any(cond_has_param)
                || b.projections.iter().any(
                    |item| matches!(item, SelectItem::Expr { expr, .. } if scalar_is_param(expr)),
                )
        }
        Query::Union { left, right, .. } | Query::Except { left, right } => {
            query_has_param(left) || query_has_param(right)
        }
    }
}

/// Whether a statement contains `?` placeholders anywhere — such statements
/// can only run through the prepare/execute_prepared path.
fn stmt_has_param(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::InsertValues { rows, .. } => rows.iter().flatten().any(scalar_is_param),
        Stmt::InsertSelect { query, .. }
        | Stmt::Select(query)
        | Stmt::Explain(query)
        | Stmt::ExplainAnalyze(query) => query_has_param(query),
        Stmt::Delete { predicate, .. } => predicate.iter().any(cond_has_param),
        _ => false,
    }
}

/// Bind `INSERT ... VALUES` scalar rows against the parameter vector.
fn bind_rows(rows: &[Vec<Scalar>], params: &[Value]) -> Result<Vec<Tuple>, DbError> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|s| match s {
                    Scalar::Lit(v) => Ok(v.clone()),
                    Scalar::Param(p) => params
                        .get(*p)
                        .cloned()
                        .ok_or_else(|| DbError::Plan(format!("parameter ?{p} is not bound"))),
                    Scalar::Col(c) => Err(DbError::Plan(format!(
                        "column reference {} is not allowed in VALUES",
                        c.column
                    ))),
                })
                .collect()
        })
        .collect()
}

fn bind_scalar(s: &Scalar, params: &[Value]) -> Result<Scalar, DbError> {
    match s {
        Scalar::Param(p) => params
            .get(*p)
            .cloned()
            .map(Scalar::Lit)
            .ok_or_else(|| DbError::Plan(format!("parameter ?{p} is not bound"))),
        other => Ok(other.clone()),
    }
}

/// Substitute bound parameter values into a DELETE predicate.
fn bind_conditions(conds: &[Condition], params: &[Value]) -> Result<Vec<Condition>, DbError> {
    conds
        .iter()
        .map(|c| match c {
            Condition::Cmp { left, op, right } => Ok(Condition::Cmp {
                left: bind_scalar(left, params)?,
                op: *op,
                right: bind_scalar(right, params)?,
            }),
            Condition::InList { .. } => Ok(c.clone()),
            Condition::NotExists { table, conds } => Ok(Condition::NotExists {
                table: table.clone(),
                conds: bind_conditions(conds, params)?,
            }),
        })
        .collect()
}

/// How far a live row count may drift from its plan-time snapshot (in
/// either direction) before a cached plan is considered stale.
const REPLAN_DRIFT_FACTOR: u64 = 2;

/// Row-count drift below this table size never triggers a replan: at a few
/// hundred rows every join order costs about the same, and the LFP runtime
/// churns its tiny delta tables through exactly this range every iteration
/// — re-costing there would forfeit plan-cache reuse for nothing.
const REPLAN_DRIFT_FLOOR: u64 = 256;

/// Whether any base-table statistics recorded in a cached plan have moved:
/// a statistics version bump (analyze or truncate) or a live row count a
/// factor of [`REPLAN_DRIFT_FACTOR`] away from the snapshot the plan was
/// costed from (once either side of the comparison clears
/// [`REPLAN_DRIFT_FLOOR`]). Counts clamp to 1 so growth from an empty
/// table still registers. A table dropped since plan time is the epoch's
/// business, not drift's.
fn stats_stale(catalog: &Catalog, planned: &PlannedQuery) -> bool {
    planned.stat_deps.iter().any(|dep| {
        let Ok(t) = catalog.table(&dep.table) else {
            return false;
        };
        if t.stats.version != dep.stats_version {
            return true;
        }
        let live = t.heap.tuple_count().max(1);
        let at_plan = dep.rows.max(1);
        if live.max(at_plan) < REPLAN_DRIFT_FLOOR {
            return false;
        }
        live >= at_plan.saturating_mul(REPLAN_DRIFT_FACTOR)
            || at_plan >= live.saturating_mul(REPLAN_DRIFT_FACTOR)
    })
}

/// Render one profiled operator as an EXPLAIN ANALYZE output line.
fn render_op_profile(op: &OpProfile) -> String {
    let mut line = format!(
        "{}{} (rows={} time={:.3}ms",
        "  ".repeat(op.depth),
        op.label,
        op.rows_out,
        op.elapsed_ns as f64 / 1e6
    );
    if let Some(est) = op.est_rows {
        line.push_str(&format!(" est={est}"));
    }
    if op.tuples_scanned > 0 {
        line.push_str(&format!(" scanned={}", op.tuples_scanned));
    }
    if op.index_probes > 0 {
        line.push_str(&format!(" probes={}", op.index_probes));
    }
    if op.tuples_fetched > 0 {
        line.push_str(&format!(" fetched={}", op.tuples_fetched));
    }
    if op.build_rows > 0 {
        line.push_str(&format!(" build={}", op.build_rows));
    }
    if op.residual_dropped > 0 {
        line.push_str(&format!(" dropped={}", op.residual_dropped));
    }
    if op.spill_partitions > 0 {
        line.push_str(&format!(
            " spill_parts={} spill_bytes={}",
            op.spill_partitions, op.spill_bytes
        ));
    }
    if op.sort_runs > 0 {
        line.push_str(&format!(
            " sort_runs={} spill_bytes={}",
            op.sort_runs, op.spill_bytes
        ));
    }
    if op.batches > 0 {
        line.push_str(&format!(" batches={}", op.batches));
    }
    line.push(')');
    line
}

/// Render a physical plan as the EXPLAIN result set.
fn explain_result(planned: &PlannedQuery) -> ResultSet {
    let rows: Vec<Tuple> = planned
        .plan
        .explain()
        .into_iter()
        .map(|line| vec![Value::Str(line)])
        .collect();
    ResultSet {
        columns: vec!["plan".to_string()],
        rows,
        affected: 0,
    }
}

fn flip_op(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Try to resolve a DELETE predicate into per-column conditions over
/// `table`'s schema. Returns `None` when the predicate needs the full query
/// pipeline — NOT EXISTS subqueries, parameters, or unresolvable/mistyped
/// columns (the pipeline then reports the proper error).
fn resolve_delete_conds(t: &Table, table: &str, predicate: &[Condition]) -> Option<Vec<ExecCond>> {
    let resolve = |c: &ColRef| -> Option<usize> {
        if let Some(q) = &c.table {
            if !q.eq_ignore_ascii_case(table) {
                return None;
            }
        }
        t.schema.index_of(&c.column)
    };
    let typed = |i: usize, v: &Value| v.col_type() == t.schema.column(i).ty;
    let mut out = Vec::new();
    for cond in predicate {
        match cond {
            Condition::Cmp { left, op, right } => match (left, right) {
                (Scalar::Col(a), Scalar::Col(b)) => {
                    let (i, j) = (resolve(a)?, resolve(b)?);
                    if t.schema.column(i).ty != t.schema.column(j).ty {
                        return None;
                    }
                    out.push(ExecCond::ColCmpCol(i, *op, j));
                }
                (Scalar::Col(c), Scalar::Lit(v)) => {
                    let i = resolve(c)?;
                    if !typed(i, v) {
                        return None;
                    }
                    out.push(ExecCond::ColCmpLit(i, *op, v.clone()));
                }
                (Scalar::Lit(v), Scalar::Col(c)) => {
                    let i = resolve(c)?;
                    if !typed(i, v) {
                        return None;
                    }
                    out.push(ExecCond::ColCmpLit(i, flip_op(*op), v.clone()));
                }
                _ => return None,
            },
            Condition::InList { col, values } => {
                let i = resolve(col)?;
                if !values.iter().all(|v| typed(i, v)) {
                    return None;
                }
                out.push(ExecCond::InList(i, values.clone()));
            }
            Condition::NotExists { .. } => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_parent() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE parent (par char, child char)")
            .unwrap();
        e.execute(
            "INSERT INTO parent VALUES ('adam','bob'), ('adam','carol'), \
             ('bob','dave'), ('carol','eve')",
        )
        .unwrap();
        e
    }

    #[test]
    fn create_insert_select_roundtrip() {
        let mut e = engine_with_parent();
        let rs = e
            .execute("SELECT child FROM parent WHERE par = 'adam' ORDER BY child")
            .unwrap();
        assert_eq!(rs.columns, vec!["child"]);
        assert_eq!(
            rs.rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );
    }

    #[test]
    fn select_star_preserves_column_order() {
        let mut e = engine_with_parent();
        let rs = e
            .execute("SELECT * FROM parent WHERE child = 'dave'")
            .unwrap();
        assert_eq!(rs.columns, vec!["par", "child"]);
        assert_eq!(rs.rows, vec![vec![Value::from("bob"), Value::from("dave")]]);
    }

    #[test]
    fn two_way_join() {
        let mut e = engine_with_parent();
        // Grandparents: parent joined with itself.
        let rs = e
            .execute(
                "SELECT a.par, b.child FROM parent a, parent b \
                 WHERE a.child = b.par ORDER BY par, child",
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::from("adam"), Value::from("dave")],
                vec![Value::from("adam"), Value::from("eve")],
            ]
        );
    }

    #[test]
    fn join_uses_index_when_available() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let before = e.stats().exec.index_probes;
        let rs = e
            .execute("SELECT a.par, b.child FROM parent a, parent b WHERE a.child = b.par")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(
            e.stats().exec.index_probes > before,
            "INL join probed the index"
        );
    }

    #[test]
    fn point_query_uses_index_lookup() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let scanned_before = e.stats().exec.tuples_scanned;
        let rs = e
            .execute("SELECT * FROM parent WHERE par = 'adam'")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(
            e.stats().exec.tuples_scanned,
            scanned_before,
            "no sequential scan for an indexed point query"
        );
        assert_eq!(e.stats().exec.tuples_fetched, 2);
    }

    #[test]
    fn insert_select_and_count() {
        let mut e = engine_with_parent();
        e.execute("CREATE TABLE anc (x char, y char)").unwrap();
        let rs = e
            .execute("INSERT INTO anc SELECT par, child FROM parent")
            .unwrap();
        assert_eq!(rs.affected, 4);
        let rs = e.execute("SELECT COUNT(*) FROM anc").unwrap();
        assert_eq!(rs.scalar_int(), Some(4));
    }

    #[test]
    fn insert_select_type_mismatch_rejected() {
        let mut e = engine_with_parent();
        e.execute("CREATE TABLE nums (n integer, m integer)")
            .unwrap();
        let err = e.execute("INSERT INTO nums SELECT par, child FROM parent");
        assert!(matches!(err, Err(DbError::TypeMismatch(_))));
    }

    #[test]
    fn union_and_except() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE a (x integer)").unwrap();
        e.execute("CREATE TABLE b (x integer)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (2), (2)").unwrap();
        e.execute("INSERT INTO b VALUES (2), (3)").unwrap();
        let rs = e
            .execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
        let rs = e
            .execute("SELECT x FROM a UNION ALL SELECT x FROM b")
            .unwrap();
        assert_eq!(rs.rows.len(), 5);
        let rs = e.execute("SELECT x FROM a EXCEPT SELECT x FROM b").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn except_is_the_termination_check_shape() {
        // The semi-naive termination check: delta EXCEPT accumulated.
        let mut e = Engine::new();
        e.execute("CREATE TABLE delta (x integer, y integer)")
            .unwrap();
        e.execute("CREATE TABLE acc (x integer, y integer)")
            .unwrap();
        e.execute("INSERT INTO delta VALUES (1, 2), (3, 4)")
            .unwrap();
        e.execute("INSERT INTO acc VALUES (1, 2)").unwrap();
        let rs = e
            .execute("SELECT * FROM delta EXCEPT SELECT * FROM acc")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(3), Value::Int(4)]]);
    }

    #[test]
    fn delete_with_and_without_predicate() {
        let mut e = engine_with_parent();
        let rs = e.execute("DELETE FROM parent WHERE par = 'adam'").unwrap();
        assert_eq!(rs.affected, 2);
        assert_eq!(e.table_len("parent").unwrap(), 2);
        let rs = e.execute("DELETE FROM parent").unwrap();
        assert_eq!(rs.affected, 2);
        assert_eq!(e.table_len("parent").unwrap(), 0);
    }

    #[test]
    fn delete_with_not_exists_predicate() {
        let mut e = engine_with_parent();
        // Delete parents whose children are leaves (no children of their
        // own). The outer column must be qualified: unqualified names
        // resolve to the subquery's own table first, per SQL scoping.
        let rs = e
            .execute(
                "DELETE FROM parent WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE b.par = parent.child)",
            )
            .unwrap();
        // bob->dave and carol->eve deleted (dave, eve childless).
        assert_eq!(rs.affected, 2);
        assert_eq!(e.table_len("parent").unwrap(), 2);
    }

    #[test]
    fn delete_with_in_list_predicate() {
        let mut e = engine_with_parent();
        let rs = e
            .execute("DELETE FROM parent WHERE child IN ('bob', 'eve')")
            .unwrap();
        assert_eq!(rs.affected, 2);
    }

    #[test]
    fn delete_maintains_indexes() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        e.execute("DELETE FROM parent WHERE par = 'adam'").unwrap();
        let rs = e
            .execute("SELECT * FROM parent WHERE par = 'adam'")
            .unwrap();
        assert!(rs.rows.is_empty());
        let rs = e.execute("SELECT * FROM parent WHERE par = 'bob'").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn temp_tables_are_dropped_in_bulk() {
        let mut e = Engine::new();
        e.execute("CREATE TEMP TABLE t1 (x integer)").unwrap();
        e.execute("CREATE TEMP TABLE t2 (x integer)").unwrap();
        e.execute("CREATE TABLE base (x integer)").unwrap();
        assert_eq!(e.drop_temp_tables(), 2);
        assert!(e.has_table("base"));
        assert!(!e.has_table("t1"));
    }

    #[test]
    fn drop_table_if_exists() {
        let mut e = Engine::new();
        assert!(e.execute("DROP TABLE IF EXISTS nope").is_ok());
        assert!(e.execute("DROP TABLE nope").is_err());
    }

    #[test]
    fn errors_are_reported() {
        let mut e = Engine::new();
        assert!(matches!(
            e.execute("SELECT * FROM missing"),
            Err(DbError::NoSuchTable(_))
        ));
        e.execute("CREATE TABLE t (a integer)").unwrap();
        assert!(matches!(
            e.execute("SELECT zz FROM t"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            e.execute("INSERT INTO t VALUES ('wrong')"),
            Err(DbError::TypeMismatch(_))
        ));
    }

    #[test]
    fn statement_counter_advances() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer)").unwrap();
        e.execute("INSERT INTO t VALUES (1)").unwrap();
        e.execute("SELECT * FROM t").unwrap();
        assert_eq!(e.stats().statements, 3);
    }

    #[test]
    fn script_execution_returns_last_result() {
        let mut e = Engine::new();
        let rs = e
            .execute_script(
                "CREATE TABLE t (a integer); INSERT INTO t VALUES (1),(2); \
                 SELECT COUNT(*) FROM t;",
            )
            .unwrap();
        assert_eq!(rs.scalar_int(), Some(2));
    }

    #[test]
    fn in_list_filters() {
        let mut e = engine_with_parent();
        let rs = e
            .execute("SELECT child FROM parent WHERE par IN ('adam', 'bob') ORDER BY child")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn in_list_uses_index_lookups() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let scanned_before = e.stats().exec.tuples_scanned;
        let rs = e
            .execute("SELECT child FROM parent WHERE par IN ('adam', 'bob', 'adam')")
            .unwrap();
        assert_eq!(
            rs.rows.len(),
            3,
            "duplicate IN values do not duplicate rows"
        );
        assert_eq!(
            e.stats().exec.tuples_scanned,
            scanned_before,
            "IN over an indexed column avoids the scan"
        );
    }

    #[test]
    fn distinct_dedupes() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer)").unwrap();
        e.execute("INSERT INTO t VALUES (1), (1), (2)").unwrap();
        let rs = e.execute("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn cross_join_without_predicate() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE a (x integer)").unwrap();
        e.execute("CREATE TABLE b (y integer)").unwrap();
        e.execute("INSERT INTO a VALUES (1), (2)").unwrap();
        e.execute("INSERT INTO b VALUES (10)").unwrap();
        let rs = e.execute("SELECT x, y FROM a, b ORDER BY x").unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(10)]
            ]
        );
    }

    #[test]
    fn three_way_join() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE e1 (a integer, b integer)").unwrap();
        e.execute("CREATE TABLE e2 (b integer, c integer)").unwrap();
        e.execute("CREATE TABLE e3 (c integer, d integer)").unwrap();
        e.execute("INSERT INTO e1 VALUES (1, 2)").unwrap();
        e.execute("INSERT INTO e2 VALUES (2, 3)").unwrap();
        e.execute("INSERT INTO e3 VALUES (3, 4)").unwrap();
        let rs = e
            .execute("SELECT e1.a, e3.d FROM e1, e2, e3 WHERE e1.b = e2.b AND e2.c = e3.c")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(4)]]);
    }

    #[test]
    fn ordered_index_serves_range_queries() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k integer, v char)").unwrap();
        e.insert_rows(
            "t",
            (0..100)
                .map(|i| vec![Value::Int(i), Value::from(format!("v{i}"))])
                .collect(),
        )
        .unwrap();
        e.execute("CREATE ORDERED INDEX t_k ON t (k)").unwrap();
        let scanned_before = e.stats().exec.tuples_scanned;
        let rs = e
            .execute("SELECT COUNT(*) FROM t WHERE k >= 10 AND k < 20")
            .unwrap();
        assert_eq!(rs.scalar_int(), Some(10));
        assert_eq!(
            e.stats().exec.tuples_scanned,
            scanned_before,
            "range query avoided the scan"
        );
        // Fetched exactly the in-range rows.
        assert_eq!(e.stats().exec.tuples_fetched, 10);
        // Exact match works on the ordered index too.
        let rs = e.execute("SELECT v FROM t WHERE k = 42").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("v42")]]);
    }

    #[test]
    fn ordered_index_half_open_and_conflicting_bounds() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k integer)").unwrap();
        e.insert_rows("t", (0..20).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        e.execute("CREATE ORDERED INDEX t_k ON t (k)").unwrap();
        let rs = e.execute("SELECT COUNT(*) FROM t WHERE k > 15").unwrap();
        assert_eq!(rs.scalar_int(), Some(4));
        let rs = e.execute("SELECT COUNT(*) FROM t WHERE k <= 3").unwrap();
        assert_eq!(rs.scalar_int(), Some(4));
        // Multiple bounds tighten; empty ranges yield nothing.
        let rs = e
            .execute("SELECT COUNT(*) FROM t WHERE k > 5 AND k > 10 AND k <= 12")
            .unwrap();
        assert_eq!(rs.scalar_int(), Some(2));
        let rs = e
            .execute("SELECT COUNT(*) FROM t WHERE k > 10 AND k < 5")
            .unwrap();
        assert_eq!(rs.scalar_int(), Some(0));
    }

    #[test]
    fn ordered_index_survives_snapshot() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k integer)").unwrap();
        e.insert_rows("t", (0..50).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        e.execute("CREATE ORDERED INDEX t_k ON t (k)").unwrap();
        let bytes = e.snapshot_bytes().unwrap();
        let mut restored = Engine::from_snapshot_bytes(&bytes).unwrap();
        let scanned_before = restored.stats().exec.tuples_scanned;
        let rs = restored
            .execute("SELECT COUNT(*) FROM t WHERE k < 5")
            .unwrap();
        assert_eq!(rs.scalar_int(), Some(5));
        assert_eq!(restored.stats().exec.tuples_scanned, scanned_before);
    }

    #[test]
    fn hash_index_ignores_range_predicates() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k integer)").unwrap();
        e.insert_rows("t", (0..10).map(|i| vec![Value::Int(i)]).collect())
            .unwrap();
        e.execute("CREATE INDEX t_k ON t (k)").unwrap();
        // Still answered correctly, via a scan.
        let rs = e.execute("SELECT COUNT(*) FROM t WHERE k < 5").unwrap();
        assert_eq!(rs.scalar_int(), Some(5));
        assert!(e.stats().exec.tuples_scanned > 0);
    }

    #[test]
    fn group_by_count() {
        let mut e = engine_with_parent();
        let rs = e
            .execute("SELECT par, COUNT(*) FROM parent GROUP BY par ORDER BY par")
            .unwrap();
        assert_eq!(rs.columns, vec!["par", "count"]);
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::from("adam"), Value::Int(2)],
                vec![Value::from("bob"), Value::Int(1)],
                vec![Value::from("carol"), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn group_by_over_join_with_filter() {
        let mut e = engine_with_parent();
        // Grandparent fan-out: how many grandchildren per grandparent.
        let rs = e
            .execute(
                "SELECT a.par, COUNT(*) FROM parent a, parent b                  WHERE a.child = b.par GROUP BY a.par ORDER BY par",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::from("adam"), Value::Int(2)]]);
    }

    #[test]
    fn group_by_validation_errors() {
        let mut e = engine_with_parent();
        // Projection missing COUNT(*).
        assert!(e.execute("SELECT par FROM parent GROUP BY par").is_err());
        // Projected column differs from the group column.
        assert!(e
            .execute("SELECT child, COUNT(*) FROM parent GROUP BY par")
            .is_err());
        // COUNT not last.
        assert!(e
            .execute("SELECT COUNT(*), par FROM parent GROUP BY par")
            .is_err());
    }

    #[test]
    fn group_by_on_empty_relation() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer)").unwrap();
        let rs = e.execute("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn explain_renders_the_plan_tree() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let rs = e
            .execute(
                "EXPLAIN SELECT a.par, b.child FROM parent a, parent b                  WHERE a.child = b.par AND a.par = 'adam'",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        let text: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert!(text[0].starts_with("Project"));
        assert!(
            text.iter()
                .any(|l| l.contains("IndexNlJoin") || l.contains("HashJoin")),
            "join operator shown: {text:?}"
        );
        assert!(
            text.iter().any(|l| l.contains("IndexLookup")),
            "indexed access path shown: {text:?}"
        );
    }

    #[test]
    fn transitive_closure_operator() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE g (s char, t char)").unwrap();
        e.execute("CREATE TABLE tc (s char, t char)").unwrap();
        e.execute("INSERT INTO g VALUES ('a','b'), ('b','c'), ('c','a')")
            .unwrap();
        let rs = e.execute("INSERT INTO tc TRANSITIVE CLOSURE OF g").unwrap();
        assert_eq!(rs.affected, 9, "3-cycle closes to 3x3 pairs");
        // Idempotent: re-running adds nothing.
        let rs = e.execute("INSERT INTO tc TRANSITIVE CLOSURE OF g").unwrap();
        assert_eq!(rs.affected, 0);
        let rs = e
            .execute("SELECT t FROM tc WHERE s = 'a' ORDER BY t")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::from("a")],
                vec![Value::from("b")],
                vec![Value::from("c")]
            ]
        );
    }

    #[test]
    fn transitive_closure_validates_arity() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE uno (x char)").unwrap();
        e.execute("CREATE TABLE duo (s char, t char)").unwrap();
        assert!(e
            .execute("INSERT INTO duo TRANSITIVE CLOSURE OF uno")
            .is_err());
        assert!(e
            .execute("INSERT INTO uno TRANSITIVE CLOSURE OF duo")
            .is_err());
    }

    #[test]
    fn transitive_closure_on_empty_and_chain() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE g (s char, t char)").unwrap();
        e.execute("CREATE TABLE tc (s char, t char)").unwrap();
        let rs = e.execute("INSERT INTO tc TRANSITIVE CLOSURE OF g").unwrap();
        assert_eq!(rs.affected, 0);
        e.execute("INSERT INTO g VALUES ('a','b'), ('b','c'), ('c','d')")
            .unwrap();
        let rs = e.execute("INSERT INTO tc TRANSITIVE CLOSURE OF g").unwrap();
        assert_eq!(rs.affected, 6, "chain of 4 nodes: C(4,2) = 6 pairs");
    }

    #[test]
    fn not_exists_correlated_anti_join() {
        let mut e = engine_with_parent();
        // People who are parents but whose children are not parents
        // themselves (i.e. grandchild-less parents).
        let rs = e
            .execute(
                "SELECT DISTINCT a.par FROM parent a WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE b.par = a.child) ORDER BY par",
            )
            .unwrap();
        // adam->bob (bob is a parent: excluded), adam->carol (carol is a
        // parent: excluded), bob->dave (dave childless: bob kept),
        // carol->eve (eve childless: carol kept).
        assert_eq!(
            rs.rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );
    }

    #[test]
    fn not_exists_with_inner_filters() {
        let mut e = engine_with_parent();
        // Parents with no child named 'dave'.
        let rs = e
            .execute(
                "SELECT DISTINCT a.par FROM parent a WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE b.par = a.par AND b.child = 'dave') \
                 ORDER BY par",
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::from("adam")], vec![Value::from("carol")]]
        );
    }

    #[test]
    fn not_exists_probes_full_key_index() {
        let mut e = engine_with_parent();
        let sql = "SELECT DISTINCT a.par FROM parent a WHERE NOT EXISTS \
                   (SELECT * FROM parent b WHERE b.par = a.child) ORDER BY par";
        let by_scan = e.execute(sql).unwrap().rows;
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let plan = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        assert!(
            plan.rows
                .iter()
                .flatten()
                .any(|v| matches!(v, Value::Str(s) if s.contains("probe index"))),
            "full-key correlation should switch to the probing anti-join: {:?}",
            plan.rows
        );
        let before = e.stats().exec;
        let by_probe = e.execute(sql).unwrap().rows;
        let after = e.stats().exec;
        assert_eq!(by_scan, by_probe);
        assert!(after.index_probes > before.index_probes);
        // Only the outer scan touches the heap; the inner side is never
        // materialized (4 outer rows, 0 inner).
        assert_eq!(after.tuples_scanned - before.tuples_scanned, 4);
    }

    #[test]
    fn not_exists_with_filters_still_scans() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        // The extra inner predicate disqualifies the pure index probe.
        let plan = e
            .execute(
                "EXPLAIN SELECT a.par FROM parent a WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE b.par = a.par AND b.child = 'dave')",
            )
            .unwrap();
        assert!(
            !plan
                .rows
                .iter()
                .flatten()
                .any(|v| matches!(v, Value::Str(s) if s.contains("probe index"))),
            "inner filters must fall back to the materializing anti-join"
        );
    }

    #[test]
    fn not_exists_uncorrelated() {
        let mut e = engine_with_parent();
        e.execute("CREATE TABLE empty (x char)").unwrap();
        let rs = e
            .execute("SELECT par FROM parent WHERE NOT EXISTS (SELECT * FROM empty)")
            .unwrap();
        assert_eq!(rs.rows.len(), 4, "empty inner keeps everything");
        let rs = e
            .execute("SELECT par FROM parent WHERE NOT EXISTS (SELECT * FROM parent)")
            .unwrap();
        assert!(rs.rows.is_empty(), "non-empty inner drops everything");
    }

    #[test]
    fn not_exists_error_paths() {
        let mut e = engine_with_parent();
        // Non-equality correlation is rejected.
        assert!(e
            .execute(
                "SELECT par FROM parent a WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE b.par < a.par)"
            )
            .is_err());
        // Nested NOT EXISTS is rejected at parse time.
        assert!(e
            .execute(
                "SELECT par FROM parent a WHERE NOT EXISTS \
                 (SELECT * FROM parent b WHERE NOT EXISTS (SELECT * FROM parent c))"
            )
            .is_err());
    }

    #[test]
    fn self_join_with_theta_residual() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer, b integer)").unwrap();
        e.execute("INSERT INTO t VALUES (1, 5), (2, 5), (3, 6)")
            .unwrap();
        // Pairs sharing b with x.a < y.a.
        let rs = e
            .execute("SELECT x.a, y.a FROM t x, t y WHERE x.b = y.b AND x.a < y.a")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    // -- prepared statements and the plan cache ---------------------------

    #[test]
    fn prepared_select_with_params_matches_literal_query() {
        let mut e = engine_with_parent();
        let id = e
            .prepare("SELECT child FROM parent WHERE par = ? ORDER BY child")
            .unwrap();
        let by_param = e.execute_prepared(id, &[Value::from("adam")]).unwrap().rows;
        let by_literal = e
            .execute("SELECT child FROM parent WHERE par = 'adam' ORDER BY child")
            .unwrap()
            .rows;
        assert_eq!(by_param, by_literal);
        // Rebinding reuses the same plan with a different key.
        let bob = e.execute_prepared(id, &[Value::from("bob")]).unwrap().rows;
        assert_eq!(bob, vec![vec![Value::from("dave")]]);
    }

    #[test]
    fn prepared_select_uses_index_for_param_equality() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let id = e.prepare("SELECT child FROM parent WHERE par = ?").unwrap();
        let probes_before = e.stats().exec.index_probes;
        let rows = e
            .execute_prepared(id, &[Value::from("carol")])
            .unwrap()
            .rows;
        assert_eq!(rows, vec![vec![Value::from("eve")]]);
        assert!(
            e.stats().exec.index_probes > probes_before,
            "col = ? should keep the index access path"
        );
    }

    #[test]
    fn plan_cache_counts_hits_and_misses() {
        let mut e = engine_with_parent();
        let id = e.prepare("SELECT child FROM parent WHERE par = ?").unwrap();
        assert_eq!(e.stats().exec.plan_cache_misses, 0, "prepare is lazy");
        for name in ["adam", "bob", "carol"] {
            e.execute_prepared(id, &[Value::from(name)]).unwrap();
        }
        let s = e.stats().exec;
        assert_eq!(s.plan_cache_misses, 1, "planned once");
        assert_eq!(s.plan_cache_hits, 2, "then reused");
    }

    #[test]
    fn plan_cache_invalidated_by_catalog_change() {
        let mut e = engine_with_parent();
        let id = e.prepare("SELECT * FROM parent WHERE par = ?").unwrap();
        e.execute_prepared(id, &[Value::from("adam")]).unwrap();
        assert_eq!(e.stats().exec.plan_cache_misses, 1);
        // DROP then CREATE a same-named table with a different schema: the
        // cached plan must not survive.
        e.execute("DROP TABLE parent").unwrap();
        e.execute("CREATE TABLE parent (n integer)").unwrap();
        e.execute("INSERT INTO parent VALUES (7)").unwrap();
        // The stale plan is re-planned; `par` no longer exists, so this
        // errors cleanly instead of executing against the wrong layout.
        assert!(e.execute_prepared(id, &[Value::from("adam")]).is_err());
        assert_eq!(e.stats().exec.plan_cache_misses, 2, "re-planned");
        // A statement valid under the new schema re-plans and runs.
        let id2 = e.prepare("SELECT n FROM parent WHERE n = ?").unwrap();
        let rows = e.execute_prepared(id2, &[Value::Int(7)]).unwrap().rows;
        assert_eq!(rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn prepared_insert_values_and_delete_with_params() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer, b char)").unwrap();
        let ins = e.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        for i in 0..4 {
            let rs = e
                .execute_prepared(ins, &[Value::Int(i), Value::from("x")])
                .unwrap();
            assert_eq!(rs.affected, 1);
        }
        let del = e.prepare("DELETE FROM t WHERE a = ?").unwrap();
        assert_eq!(
            e.execute_prepared(del, &[Value::Int(2)]).unwrap().affected,
            1
        );
        assert_eq!(e.table_len("t").unwrap(), 3);
    }

    #[test]
    fn prepared_param_arity_is_checked() {
        let mut e = engine_with_parent();
        let id = e.prepare("SELECT * FROM parent WHERE par = ?").unwrap();
        assert!(e.execute_prepared(id, &[]).is_err());
        assert!(e
            .execute_prepared(id, &[Value::from("a"), Value::from("b")])
            .is_err());
        e.deallocate(id).unwrap();
        assert!(e.execute_prepared(id, &[Value::from("a")]).is_err());
    }

    #[test]
    fn plain_execute_rejects_parameters() {
        let mut e = engine_with_parent();
        let err = e.execute("SELECT * FROM parent WHERE par = ?");
        assert!(err.is_err(), "unbound `?` must not reach execution");
        assert!(e.execute("INSERT INTO parent VALUES (?, 'x')").is_err());
        assert!(e.execute("DELETE FROM parent WHERE par = ?").is_err());
    }

    #[test]
    fn truncate_keeps_schema_and_indexes() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let rs = e.execute("TRUNCATE TABLE parent").unwrap();
        assert_eq!(rs.affected, 4);
        assert_eq!(e.table_len("parent").unwrap(), 0);
        // Schema and index definitions survive; the table is refillable and
        // the index still answers point queries.
        e.execute("INSERT INTO parent VALUES ('x','y')").unwrap();
        let rows = e
            .execute("SELECT child FROM parent WHERE par = 'x'")
            .unwrap()
            .rows;
        assert_eq!(rows, vec![vec![Value::from("y")]]);
        let (_, _, indexes) = e.table_info("parent").unwrap();
        assert_eq!(indexes.len(), 1);
    }

    #[test]
    fn truncate_does_not_invalidate_cached_plans() {
        let mut e = engine_with_parent();
        let id = e.prepare("SELECT * FROM parent WHERE par = ?").unwrap();
        e.execute_prepared(id, &[Value::from("adam")]).unwrap();
        e.clear_table("parent").unwrap();
        e.execute("INSERT INTO parent VALUES ('p','q')").unwrap();
        let rows = e.execute_prepared(id, &[Value::from("p")]).unwrap().rows;
        assert_eq!(rows, vec![vec![Value::from("p"), Value::from("q")]]);
        let s = e.stats().exec;
        // TRUNCATE keeps the catalog epoch and the statistics version
        // (schema and indexes survive, estimates are merely dropped), so
        // the LFP runtime's truncate-and-refill temp-table recycling reuses
        // its cached plans: no replan, no cold miss.
        assert_eq!(s.plan_cache_misses, 1, "only the first execution is cold");
        assert_eq!(s.plan_replans, 0, "recycling keeps the cached plan");
        assert_eq!(s.plan_cache_hits, 1);
    }

    /// Relative order of two tables' scan lines in an EXPLAIN rendering:
    /// `true` when `first` is scanned before `second` (i.e. earlier in the
    /// greedy join order).
    fn scans_before(lines: &[String], first: &str, second: &str) -> bool {
        let pos = |t: &str| {
            lines
                .iter()
                .position(|l| l.contains(&format!("SeqScan {t}")))
                .unwrap_or_else(|| panic!("no SeqScan {t} in {lines:?}"))
        };
        pos(first) < pos(second)
    }

    #[test]
    fn cardinality_drift_replans_cached_join_order() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE small (k char)").unwrap();
        e.execute("CREATE TABLE big (k char)").unwrap();
        e.insert_rows(
            "small",
            vec![vec![Value::from("x")], vec![Value::from("y")]],
        )
        .unwrap();
        e.insert_rows(
            "big",
            (0..50)
                .map(|i| vec![Value::from(format!("b{i}"))])
                .collect(),
        )
        .unwrap();
        let id = e
            .prepare("SELECT * FROM small s, big b WHERE s.k = b.k")
            .unwrap();
        e.execute_prepared(id, &[]).unwrap();
        let plan_before = e.prepared_plan_text(id).unwrap();
        assert!(
            scans_before(&plan_before, "small", "big"),
            "2-row table drives the join at plan time: {plan_before:?}"
        );

        // The cached plan's assumption goes stale: `small` grows 1000x.
        e.insert_rows(
            "small",
            (0..2000)
                .map(|i| vec![Value::from(format!("s{i}"))])
                .collect(),
        )
        .unwrap();
        let rs = e.execute_prepared(id, &[]).unwrap();
        assert_eq!(rs.rows.len(), 0, "no shared keys");
        let plan_after = e.prepared_plan_text(id).unwrap();
        assert!(
            scans_before(&plan_after, "big", "small"),
            "after 1000x growth the join order flips: {plan_after:?}"
        );
        let s = e.stats().exec;
        assert_eq!(s.plan_replans, 1, "drift re-planned the statement");
        assert_eq!(
            s.plan_cache_misses, 1,
            "only the first execution planned cold"
        );

        // The fixpoint: re-executing against stable cardinalities is a
        // plain cache hit again.
        e.execute_prepared(id, &[]).unwrap();
        let s = e.stats().exec;
        assert_eq!(s.plan_replans, 1);
        assert_eq!(s.plan_cache_hits, 1);
    }

    #[test]
    fn duplicate_join_columns_still_use_single_column_index() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE l (a char, b char)").unwrap();
        e.execute("CREATE TABLE r (x char, v char)").unwrap();
        e.execute("CREATE INDEX r_x ON r (x)").unwrap();
        e.insert_rows(
            "l",
            vec![
                vec![Value::from("m"), Value::from("m")],
                vec![Value::from("q"), Value::from("z")],
            ],
        )
        .unwrap();
        e.insert_rows(
            "r",
            vec![
                vec![Value::from("m"), Value::from("r1")],
                vec![Value::from("q"), Value::from("r2")],
                vec![Value::from("z"), Value::from("r3")],
            ],
        )
        .unwrap();
        // Both equalities target r.x: the deduped key set is {x}, served by
        // the single-column index; the second equality stays as a residual.
        let sql = "SELECT l.a, r.v FROM l, r WHERE l.a = r.x AND l.b = r.x";
        let plan = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        let text: Vec<String> = plan
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                v => panic!("unexpected {v:?}"),
            })
            .collect();
        assert!(
            text.iter().any(|l| l.contains("IndexNlJoin probe r")),
            "duplicate join columns must not disqualify the index: {text:?}"
        );
        let probes_before = e.stats().exec.index_probes;
        let rows = e.execute(sql).unwrap().rows;
        // Only ('m','m') satisfies both equalities; ('q','z') matches on
        // l.a but the residual l.b = r.x rejects it.
        assert_eq!(rows, vec![vec![Value::from("m"), Value::from("r1")]]);
        assert!(e.stats().exec.index_probes > probes_before);
    }

    #[test]
    fn in_list_estimate_scales_with_list_cardinality() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE wide (k char, v integer)").unwrap();
        e.execute("CREATE TABLE narrow (k char, v integer)")
            .unwrap();
        for t in ["wide", "narrow"] {
            e.insert_rows(
                t,
                (0..100)
                    .map(|i| vec![Value::from(format!("k{i}")), Value::Int(i)])
                    .collect(),
            )
            .unwrap();
        }
        // Same base cardinality, but `wide`'s IN list admits 40 values while
        // `narrow`'s admits one: the narrow relation must drive the join.
        let in40: Vec<String> = (0..40).map(|i| i.to_string()).collect();
        let sql = format!(
            "EXPLAIN SELECT * FROM wide w, narrow n WHERE w.k = n.k \
             AND w.v IN ({}) AND n.v IN (7)",
            in40.join(", ")
        );
        let text: Vec<String> = e
            .execute(&sql)
            .unwrap()
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                v => panic!("unexpected {v:?}"),
            })
            .collect();
        assert!(
            scans_before(&text, "narrow", "wide"),
            "a 40-value IN list is ~40x less selective than a 1-value one: {text:?}"
        );
    }

    // -- EXPLAIN ANALYZE ---------------------------------------------------

    #[test]
    fn explain_analyze_reports_per_operator_counters() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let sql = "SELECT a.par, b.child FROM parent a, parent b WHERE a.child = b.par";
        let expected = e.execute(sql).unwrap().rows.len() as u64;
        let rs = e.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        assert!(!rs.rows.is_empty());
        let profile = e.last_profile().to_vec();
        assert_eq!(
            rs.rows.len(),
            profile.len() + 1,
            "one line per operator plus the misestimation summary"
        );
        let last = match &rs.rows[profile.len()][0] {
            Value::Str(s) => s.clone(),
            v => panic!("unexpected {v:?}"),
        };
        assert!(
            last.starts_with("max misestimate "),
            "summary line closes the rendering: {last}"
        );
        // The root operator emits exactly the query's result cardinality.
        assert_eq!(profile[0].rows_out, expected);
        assert_eq!(profile[0].depth, 0);
        assert!(profile[0].label.starts_with("Project"));
        // Real work was attributed somewhere in the tree.
        assert!(profile.iter().any(|op| op.rows_out > 0));
        assert!(profile
            .iter()
            .any(|op| op.tuples_scanned > 0 || op.index_probes > 0));
        // Rendered lines carry the counters.
        let first = match &rs.rows[0][0] {
            Value::Str(s) => s.clone(),
            v => panic!("unexpected {v:?}"),
        };
        assert!(
            first.contains("rows=") && first.contains("time="),
            "{first}"
        );
    }

    #[test]
    fn explain_analyze_runs_prepared_with_params() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let id = e
            .prepare("EXPLAIN ANALYZE SELECT child FROM parent WHERE par = ?")
            .unwrap();
        e.execute_prepared(id, &[Value::from("carol")]).unwrap();
        let profile = e.last_profile();
        assert_eq!(profile[0].rows_out, 1, "carol has one child");
        assert!(
            profile.iter().any(|op| op.index_probes > 0),
            "param equality keeps the index path: {profile:?}"
        );
    }

    #[test]
    fn clear_table_in_transaction_rolls_back() {
        let mut e = engine_with_parent();
        e.enable_wal();
        e.begin().unwrap();
        assert_eq!(e.clear_table("parent").unwrap(), 4);
        assert_eq!(e.table_len("parent").unwrap(), 0);
        e.rollback().unwrap();
        assert_eq!(e.table_len("parent").unwrap(), 4, "logged path undoes");
    }

    #[test]
    fn insert_batch_is_atomic_on_type_mismatch() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer)").unwrap();
        let err = e.insert_rows(
            "t",
            vec![
                vec![Value::Int(1)],
                vec![Value::from("oops")],
                vec![Value::Int(3)],
            ],
        );
        assert!(matches!(err, Err(DbError::TypeMismatch(_))));
        assert_eq!(e.table_len("t").unwrap(), 0, "no partial batch");
    }

    #[test]
    fn delete_scans_heap_once_for_simple_predicates() {
        let mut e = engine_with_parent();
        let before = e.stats().exec.tuples_scanned;
        let rs = e.execute("DELETE FROM parent WHERE par = 'adam'").unwrap();
        assert_eq!(rs.affected, 2);
        assert_eq!(
            e.stats().exec.tuples_scanned - before,
            4,
            "one pass over the 4-row heap"
        );
        assert_eq!(e.table_len("parent").unwrap(), 2);
    }

    #[test]
    fn delete_uses_index_when_key_is_covered() {
        let mut e = engine_with_parent();
        e.execute("CREATE INDEX parent_par ON parent (par)")
            .unwrap();
        let scanned_before = e.stats().exec.tuples_scanned;
        let probes_before = e.stats().exec.index_probes;
        let rs = e.execute("DELETE FROM parent WHERE par = 'adam'").unwrap();
        assert_eq!(rs.affected, 2);
        assert_eq!(
            e.stats().exec.tuples_scanned,
            scanned_before,
            "index path: no sequential scan"
        );
        assert!(e.stats().exec.index_probes > probes_before);
        let rows = e
            .execute("SELECT par FROM parent ORDER BY par")
            .unwrap()
            .rows;
        assert_eq!(
            rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );
    }

    #[test]
    fn unconditional_delete_truncates_outside_txn() {
        let mut e = engine_with_parent();
        let before = e.stats().exec.tuples_scanned;
        let rs = e.execute("DELETE FROM parent").unwrap();
        assert_eq!(rs.affected, 4);
        assert_eq!(e.stats().exec.tuples_scanned, before, "no scan needed");
        assert_eq!(e.table_len("parent").unwrap(), 0);
    }

    #[test]
    fn delete_with_complex_predicate_still_works() {
        let mut e = engine_with_parent();
        // NOT EXISTS forces the query-pipeline path: delete leaves (people
        // with no children of their own).
        let rs = e
            .execute(
                "DELETE FROM parent WHERE NOT EXISTS \
                 (SELECT * FROM parent p WHERE p.par = parent.child)",
            )
            .unwrap();
        assert_eq!(rs.affected, 2, "dave and eve edges are leaves");
        let rows = e
            .execute("SELECT child FROM parent ORDER BY child")
            .unwrap()
            .rows;
        assert_eq!(
            rows,
            vec![vec![Value::from("bob")], vec![Value::from("carol")]]
        );
    }

    #[test]
    fn timing_counters_accumulate() {
        let mut e = engine_with_parent();
        e.execute("SELECT * FROM parent").unwrap();
        let s = e.stats().exec;
        assert!(s.parse_ns > 0);
        assert!(s.plan_ns > 0);
        assert!(s.exec_ns > 0);
    }

    #[test]
    fn prepared_insert_select_respects_epoch() {
        let mut e = engine_with_parent();
        e.execute("CREATE TABLE sink (par char, child char)")
            .unwrap();
        let id = e.prepare("INSERT INTO sink SELECT * FROM parent").unwrap();
        assert_eq!(e.execute_prepared(id, &[]).unwrap().affected, 4);
        assert_eq!(e.execute_prepared(id, &[]).unwrap().affected, 4);
        let s = e.stats().exec;
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 1);
        // Shrinking the target's schema must invalidate the cached plan and
        // surface a type error rather than corrupt rows.
        e.execute("DROP TABLE sink").unwrap();
        e.execute("CREATE TABLE sink (n integer)").unwrap();
        assert!(e.execute_prepared(id, &[]).is_err());
    }
}
