//! Spill files: sequential byte streams on the simulated disk, the
//! backing store for memory-bounded operators (Grace hash-join
//! partitions, external-sort runs, spilled distinct/except sets).
//!
//! A spill file is written once, read once, and dropped. Records are
//! length-prefixed (`u32` little-endian) byte strings packed
//! back-to-back across page boundaries; the writer buffers exactly one
//! page and the reader holds exactly one page, so the in-memory
//! footprint of a spill stream is one [`PAGE_SIZE`] buffer regardless
//! of how much data passed through it. Spill I/O deliberately bypasses
//! the buffer pool: the access pattern is strictly sequential with no
//! reuse, and routing it through the pool would evict the working set
//! the pool exists to protect. Physical reads/writes still land in
//! [`crate::disk::DiskStats`], and the fault injector sees every page,
//! so chaos tests exercise spill I/O like any other I/O.

use crate::catalog::DbError;
use crate::disk::{Disk, FileId, PageId};
use crate::page::PAGE_SIZE;
use crate::schema::{deserialize_tuple, serialize_tuple, Tuple};
use crate::value::Value;

/// FNV-1a over a byte string. Spill partitioning needs a hash that is
/// stable across runs and processes — `std::collections::HashMap`'s
/// `RandomState` is seeded per instance, so it cannot decide which
/// partition a key lands in without breaking reproducibility.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic partition assignment for a join/dedup key.
pub fn partition_of(key: &[Value], parts: usize) -> usize {
    (fnv1a(&serialize_tuple(key)) % parts as u64) as usize
}

/// Encode a sequence-tagged tuple (`u64` LE tag, then the serialized
/// tuple). Probe rows and dedup candidates carry their original input
/// position through the partitions so the merged output can be
/// restored to exact input order.
pub fn encode_seq_tuple(seq: u64, t: &Tuple) -> Vec<u8> {
    let body = serialize_tuple(t);
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a record written by [`encode_seq_tuple`].
pub fn decode_seq_tuple(buf: &[u8]) -> Result<(u64, Tuple), DbError> {
    let tag: [u8; 8] = buf
        .get(0..8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| DbError::Corruption("spill record shorter than its seq tag".into()))?;
    let tuple = deserialize_tuple(&buf[8..])
        .ok_or_else(|| DbError::Corruption("spill record tuple does not deserialize".into()))?;
    Ok((u64::from_le_bytes(tag), tuple))
}

/// Append-only spill stream under construction.
pub struct SpillWriter {
    file: FileId,
    buf: Vec<u8>,
    pages: u32,
    bytes: u64,
    records: u64,
}

impl SpillWriter {
    pub fn new(disk: &mut Disk) -> SpillWriter {
        SpillWriter {
            file: disk.create_file(),
            buf: Vec::with_capacity(PAGE_SIZE),
            pages: 0,
            bytes: 0,
            records: 0,
        }
    }

    /// Append one length-prefixed record, flushing filled pages as the
    /// record streams through the one-page buffer.
    pub fn push(&mut self, disk: &mut Disk, payload: &[u8]) -> Result<(), DbError> {
        let len = (payload.len() as u32).to_le_bytes();
        self.append(disk, &len)?;
        self.append(disk, payload)?;
        self.bytes += (4 + payload.len()) as u64;
        self.records += 1;
        Ok(())
    }

    fn append(&mut self, disk: &mut Disk, mut data: &[u8]) -> Result<(), DbError> {
        while !data.is_empty() {
            let room = PAGE_SIZE - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == PAGE_SIZE {
                self.flush_page(disk)?;
            }
        }
        Ok(())
    }

    fn flush_page(&mut self, disk: &mut Disk) -> Result<(), DbError> {
        let pid = disk.allocate_page(self.file)?;
        debug_assert_eq!(pid.0, self.pages, "spill pages must be sequential");
        self.buf.resize(PAGE_SIZE, 0);
        disk.write_page(self.file, pid, &self.buf)?;
        self.buf.clear();
        self.pages += 1;
        Ok(())
    }

    /// Flush the final partial page and seal the stream for reading.
    /// `finish` consumes the writer, so on error it must release the
    /// backing file itself — no caller holds the [`FileId`] anymore, and
    /// returning the error alone would leak the slot.
    pub fn finish(mut self, disk: &mut Disk) -> Result<SpillFile, DbError> {
        if !self.buf.is_empty() {
            if let Err(e) = self.flush_page(disk) {
                disk.drop_file(self.file);
                return Err(e);
            }
        }
        Ok(SpillFile {
            file: self.file,
            bytes: self.bytes,
            records: self.records,
        })
    }

    /// Best-effort cleanup for error paths: drop the backing file
    /// without sealing.
    pub fn abandon(self, disk: &mut Disk) {
        disk.drop_file(self.file);
    }
}

/// A sealed spill stream, ready to be read back exactly once (or more —
/// each [`SpillFile::reader`] starts from the beginning).
pub struct SpillFile {
    file: FileId,
    bytes: u64,
    records: u64,
}

impl SpillFile {
    /// Records written to this stream.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Payload bytes written (length prefixes included), before page
    /// padding — the number a spill-volume metric should report.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Start reading from the first record.
    pub fn reader(&self) -> SpillReader {
        SpillReader {
            file: self.file,
            remaining: self.records,
            page: 0,
            offset: 0,
            buf: Vec::new(),
        }
    }

    /// Release the backing file and its pages.
    pub fn destroy(self, disk: &mut Disk) {
        disk.drop_file(self.file);
    }
}

/// Sequential cursor over a sealed spill stream; holds one page.
pub struct SpillReader {
    file: FileId,
    remaining: u64,
    page: u32,
    offset: usize,
    buf: Vec<u8>,
}

impl SpillReader {
    /// The next record's payload, or `None` past the last record.
    pub fn next(&mut self, disk: &mut Disk) -> Result<Option<Vec<u8>>, DbError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut len = [0u8; 4];
        self.read_exact(disk, &mut len)?;
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        self.read_exact(disk, &mut payload)?;
        Ok(Some(payload))
    }

    fn read_exact(&mut self, disk: &mut Disk, out: &mut [u8]) -> Result<(), DbError> {
        let mut filled = 0;
        while filled < out.len() {
            if self.offset == PAGE_SIZE || self.buf.is_empty() {
                if self.offset == PAGE_SIZE {
                    self.page += 1;
                    self.offset = 0;
                }
                self.buf.resize(PAGE_SIZE, 0);
                disk.read_page(self.file, PageId(self.page), &mut self.buf)?;
            }
            let take = (PAGE_SIZE - self.offset).min(out.len() - filled);
            out[filled..filled + take].copy_from_slice(&self.buf[self.offset..self.offset + take]);
            self.offset += take;
            filled += take;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_records_across_page_boundaries() {
        let mut disk = Disk::new();
        let mut w = SpillWriter::new(&mut disk);
        // Record sizes chosen to straddle 4 KiB boundaries repeatedly.
        let payloads: Vec<Vec<u8>> = (0..300)
            .map(|i| vec![(i % 251) as u8; 17 + (i * 37) % 1500])
            .collect();
        for p in &payloads {
            w.push(&mut disk, p).unwrap();
        }
        let f = w.finish(&mut disk).unwrap();
        assert_eq!(f.records(), payloads.len() as u64);
        let mut r = f.reader();
        for p in &payloads {
            assert_eq!(r.next(&mut disk).unwrap().as_deref(), Some(p.as_slice()));
        }
        assert!(r.next(&mut disk).unwrap().is_none());
        f.destroy(&mut disk);
    }

    #[test]
    fn empty_stream_reads_empty() {
        let mut disk = Disk::new();
        let w = SpillWriter::new(&mut disk);
        let f = w.finish(&mut disk).unwrap();
        assert_eq!(f.records(), 0);
        assert!(f.reader().next(&mut disk).unwrap().is_none());
        f.destroy(&mut disk);
    }

    #[test]
    fn seq_tuple_roundtrip() {
        let t: Tuple = vec![Value::Int(42), Value::Str("hello".into())];
        let enc = encode_seq_tuple(7, &t);
        let (seq, back) = decode_seq_tuple(&enc).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, t);
    }

    #[test]
    fn partition_assignment_is_deterministic() {
        let key = vec![Value::Str("n12345".into())];
        let p1 = partition_of(&key, 16);
        let p2 = partition_of(&key, 16);
        assert_eq!(p1, p2);
        assert!(p1 < 16);
        // Different keys spread across partitions.
        let spread: std::collections::HashSet<usize> = (0..1000)
            .map(|i| partition_of(&[Value::Int(i)], 16))
            .collect();
        assert!(spread.len() > 8, "FNV spread too poor: {spread:?}");
    }

    #[test]
    fn destroy_releases_backing_file() {
        let mut disk = Disk::new();
        let mut w = SpillWriter::new(&mut disk);
        w.push(&mut disk, b"x").unwrap();
        let f = w.finish(&mut disk).unwrap();
        let before = disk.stats().pages_allocated;
        f.destroy(&mut disk);
        // Page accounting is monotonic; dropping the file frees slots for
        // reuse rather than rewinding counters.
        assert!(disk.stats().pages_allocated >= before);
    }
}
