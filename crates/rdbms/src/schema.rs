//! Relation schemas and tuples.

use crate::value::{ColType, Value};
use std::fmt;

/// A single column: name plus type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, ColType)]) -> Schema {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// A schema of `n` integer columns named `c0..c{n-1}` — the shape of
    /// every derived-predicate temporary the runtime creates.
    pub fn ints(n: usize) -> Schema {
        Schema {
            columns: (0..n)
                .map(|i| Column::new(format!("c{i}"), ColType::Int))
                .collect(),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column named `name` (case-insensitive), if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Whether `tuple` matches this schema's arity and column types.
    pub fn admits(&self, tuple: &[Value]) -> bool {
        tuple.len() == self.arity()
            && tuple
                .iter()
                .zip(&self.columns)
                .all(|(v, c)| v.col_type() == c.ty)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

/// A materialized row.
pub type Tuple = Vec<Value>;

/// Serialize a tuple to the on-page byte format: `u16` column count followed
/// by each value's tagged encoding.
pub fn serialize_tuple(tuple: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + tuple.iter().map(Value::serialized_len).sum::<usize>());
    out.extend_from_slice(&(tuple.len() as u16).to_le_bytes());
    for v in tuple {
        v.serialize_into(&mut out);
    }
    out
}

/// Decode a tuple previously produced by [`serialize_tuple`].
pub fn deserialize_tuple(buf: &[u8]) -> Option<Tuple> {
    let count_bytes: [u8; 2] = buf.get(0..2)?.try_into().ok()?;
    let count = u16::from_le_bytes(count_bytes) as usize;
    let mut pos = 2;
    let mut tuple = Vec::with_capacity(count);
    for _ in 0..count {
        tuple.push(Value::deserialize_from(buf, &mut pos)?);
    }
    if pos == buf.len() {
        Some(tuple)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::from_pairs(&[("id", ColType::Int), ("name", ColType::Str)])
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = sample_schema();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn admits_checks_arity_and_types() {
        let s = sample_schema();
        assert!(s.admits(&[Value::Int(1), Value::from("a")]));
        assert!(!s.admits(&[Value::Int(1)]));
        assert!(!s.admits(&[Value::from("a"), Value::Int(1)]));
    }

    #[test]
    fn ints_schema_names_and_types() {
        let s = Schema::ints(3);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(0).name, "c0");
        assert_eq!(s.column(2).name, "c2");
        assert!(s.columns().iter().all(|c| c.ty == ColType::Int));
    }

    #[test]
    fn tuple_serialization_roundtrip() {
        let t = vec![Value::Int(5), Value::from("parent"), Value::Int(-9)];
        let buf = serialize_tuple(&t);
        assert_eq!(deserialize_tuple(&buf), Some(t));
    }

    #[test]
    fn tuple_deserialize_rejects_trailing_garbage() {
        let t = vec![Value::Int(5)];
        let mut buf = serialize_tuple(&t);
        buf.push(0xAB);
        assert_eq!(deserialize_tuple(&buf), None);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t: Tuple = vec![];
        let buf = serialize_tuple(&t);
        assert_eq!(deserialize_tuple(&buf), Some(t));
    }

    #[test]
    fn schema_display() {
        assert_eq!(sample_schema().to_string(), "(id integer, name char)");
    }
}
