//! # dkbms-rdbms — the DBMS layer of the D/KBMS testbed
//!
//! An in-process relational engine playing the role of the "commercial
//! relational database management system with SQL and embedded-SQL
//! interfaces" in the two-layer testbed architecture of Ramnarayan & Lu
//! (SIGMOD 1988). The Knowledge Manager compiles Horn-clause queries into
//! programs whose every database interaction is a SQL statement executed
//! through [`Engine::execute`].
//!
//! The stack, bottom to top:
//!
//! * [`disk`] — a simulated paged disk with physical I/O accounting;
//! * [`page`] — slotted pages;
//! * [`buffer`] — a clock-replacement buffer pool;
//! * [`heap`] — heap files of variable-length records;
//! * [`index`] — multi-column hash indexes;
//! * [`wal`] — checksummed page-image write-ahead log for crash safety;
//! * [`catalog`] — table/index metadata, temp-table lifecycle;
//! * [`sql`] — lexer, parser and AST for the SQL subset;
//! * [`stats`] — live table/column statistics (distinct counts,
//!   equi-width histograms) refreshed by reservoir sampling;
//! * [`rewrite`] — logical rewrite rules (predicate/projection pushdown)
//!   run over the bound query block before physical planning;
//! * [`cost`] — the cost model: selectivity estimation and join-order /
//!   access-path / join-method costing;
//! * [`plan`] — binding, access-path selection (index lookups, index
//!   nested-loop joins, hash joins), cost-based join ordering with a
//!   legacy heuristic mode for ablation;
//! * [`exec`] — the materializing executor with logical-work counters;
//! * [`governor`] — per-statement deadlines, cooperative cancellation,
//!   and row/memory budgets checked at operator batch boundaries;
//! * [`metrics`] — counters/gauges/histograms with JSON export, shared by
//!   the engine, the Knowledge Manager, and the bench harness;
//! * [`engine`] — the public facade.
//!
//! ## Example
//!
//! ```
//! use rdbms::Engine;
//!
//! let mut db = Engine::new();
//! db.execute("CREATE TABLE parent (par char, child char)").unwrap();
//! db.execute("INSERT INTO parent VALUES ('adam','bob'), ('bob','carol')").unwrap();
//! let rs = db
//!     .execute("SELECT a.par, b.child FROM parent a, parent b WHERE a.child = b.par")
//!     .unwrap();
//! assert_eq!(rs.rows.len(), 1); // adam is bob's parent, bob is carol's: one grandparent pair
//! ```

pub mod buffer;
pub mod catalog;
pub mod concurrent;
pub mod cost;
pub mod disk;
pub mod engine;
pub mod exec;
pub mod governor;
pub mod heap;
pub mod index;
pub mod metrics;
pub mod page;
pub mod plan;
pub mod rewrite;
pub mod schema;
pub mod snapshot;
pub mod spill;
pub mod sql;
pub mod stats;
pub mod value;
pub mod wal;

pub use catalog::DbError;
pub use concurrent::{DbSession, SessionStmt, SharedEngine};
pub use disk::{DiskStats, FaultInjector, RecoveryReport};
pub use engine::{Engine, EngineStats, PlannerMode, ResultSet, StmtId};
pub use exec::{OpProfile, SpillMode, DEFAULT_BATCH_ROWS};
pub use governor::{BudgetBreach, BudgetKind, ExecLimits, QueryGovernor};
pub use metrics::{Metric, Registry};
pub use rewrite::RewriteReport;
pub use schema::{Column, Schema, Tuple};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use value::{ColType, Value};
