//! Write-ahead log: a checksummed, page-image redo/undo log layered under
//! the buffer pool.
//!
//! The paper's testbed ran on a commercial DBMS and inherited its recovery
//! machinery for free; this module supplies the equivalent guarantee for
//! the simulated disk so stored-D/KB updates (§4.3) can be made atomic.
//! Every physical page write performed while a transaction is active is
//! preceded by a WAL record carrying both the before-image (for undo of
//! uncommitted transactions) and the after-image (for redo of committed
//! ones). Each record is framed with a length prefix and a CRC-32 so a
//! crash mid-append leaves a *detectably* torn tail that recovery discards
//! instead of replaying garbage.
//!
//! Record framing:
//!
//! ```text
//! [len: u32 LE]  length of the payload that follows
//! [payload]      tag byte + record fields
//! [crc: u32 LE]  CRC-32 (IEEE) of the payload
//! ```

use crate::disk::{FileId, PageId};
use crate::page::PAGE_SIZE;

/// Transaction identifier. The simulated engine runs one transaction at a
/// time, but ids are never reused so the log stays unambiguous.
pub type TxnId = u64;

const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ALLOC: u8 = 4;
const TAG_CREATE_FILE: u8 = 5;
const TAG_DROP_FILE: u8 = 6;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction started.
    Begin { txn: TxnId },
    /// A page was physically written: both images are logged so the write
    /// can be redone (committed) or undone (uncommitted).
    Write {
        txn: TxnId,
        file: FileId,
        page: PageId,
        before: Box<[u8]>,
        after: Box<[u8]>,
    },
    /// The transaction committed; everything logged for it must survive.
    Commit { txn: TxnId },
    /// A zeroed page was appended to `file`.
    Alloc { txn: TxnId, file: FileId },
    /// A fresh file was created at this id.
    CreateFile { txn: TxnId, file: FileId },
    /// A file drop was requested (applied only at commit).
    DropFile { txn: TxnId, file: FileId },
}

impl WalRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match *self {
            WalRecord::Begin { txn }
            | WalRecord::Write { txn, .. }
            | WalRecord::Commit { txn }
            | WalRecord::Alloc { txn, .. }
            | WalRecord::CreateFile { txn, .. }
            | WalRecord::DropFile { txn, .. } => txn,
        }
    }
}

/// The result of scanning the log from the start: every record up to the
/// first framing or checksum violation, plus whether a torn tail was cut.
#[derive(Debug, Default)]
pub struct WalScan {
    pub records: Vec<WalRecord>,
    /// Bytes after the last intact record that failed to frame or
    /// checksum — the signature of a crash mid-append.
    pub torn_tail: bool,
}

/// The in-memory log "file". Appends model durable sequential writes;
/// [`Wal::tear_tail`] models a crash that interrupted the final append.
#[derive(Debug, Default)]
pub struct Wal {
    buf: Vec<u8>,
    records: u64,
    /// Largest log size (bytes) observed before any truncation — the peak
    /// durable footprint a checkpoint interval ever needed.
    high_water: usize,
    /// Checkpoints taken ([`Wal::clear`] calls) over the log's lifetime.
    checkpoints: u64,
}

impl Wal {
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Total bytes currently in the log.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Largest log size in bytes ever reached between checkpoints.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// Checkpoints (whole-log truncations) taken so far.
    pub fn checkpoint_count(&self) -> u64 {
        self.checkpoints
    }

    /// Records appended since the last [`Wal::clear`] (torn bytes included
    /// in neither count).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one record with length framing and a CRC-32 trailer.
    pub fn append(&mut self, rec: &WalRecord) {
        let payload = encode_payload(rec);
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.records += 1;
        self.high_water = self.high_water.max(self.buf.len());
    }

    /// Drop the last `bytes` bytes of the log — the fault injector's model
    /// of a crash in the middle of an append.
    pub fn tear_tail(&mut self, bytes: usize) {
        let keep = self.buf.len().saturating_sub(bytes.max(1));
        self.buf.truncate(keep);
    }

    /// Truncate the whole log (checkpoint: every logged effect is known to
    /// be durably on disk).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.records = 0;
        self.checkpoints += 1;
    }

    /// Decode the log from the start, stopping at the first record that is
    /// incomplete or fails its checksum.
    pub fn scan(&self) -> WalScan {
        let mut out = WalScan::default();
        let mut pos = 0usize;
        while pos < self.buf.len() {
            let Some(rec) = decode_one(&self.buf, &mut pos) else {
                out.torn_tail = true;
                break;
            };
            out.records.push(rec);
        }
        out
    }
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    match rec {
        WalRecord::Begin { txn } => {
            p.push(TAG_BEGIN);
            p.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::Write {
            txn,
            file,
            page,
            before,
            after,
        } => {
            p.reserve(1 + 8 + 4 + 4 + 2 * PAGE_SIZE);
            p.push(TAG_WRITE);
            p.extend_from_slice(&txn.to_le_bytes());
            p.extend_from_slice(&file.0.to_le_bytes());
            p.extend_from_slice(&page.0.to_le_bytes());
            p.extend_from_slice(before);
            p.extend_from_slice(after);
        }
        WalRecord::Commit { txn } => {
            p.push(TAG_COMMIT);
            p.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::Alloc { txn, file } => {
            p.push(TAG_ALLOC);
            p.extend_from_slice(&txn.to_le_bytes());
            p.extend_from_slice(&file.0.to_le_bytes());
        }
        WalRecord::CreateFile { txn, file } => {
            p.push(TAG_CREATE_FILE);
            p.extend_from_slice(&txn.to_le_bytes());
            p.extend_from_slice(&file.0.to_le_bytes());
        }
        WalRecord::DropFile { txn, file } => {
            p.push(TAG_DROP_FILE);
            p.extend_from_slice(&txn.to_le_bytes());
            p.extend_from_slice(&file.0.to_le_bytes());
        }
    }
    p
}

/// Decode one framed record at `*pos`, advancing it. `None` means the tail
/// is torn (short frame, bad CRC, or malformed payload).
fn decode_one(buf: &[u8], pos: &mut usize) -> Option<WalRecord> {
    let remaining = buf.len() - *pos;
    if remaining < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
    if remaining < 4 + len + 4 {
        return None;
    }
    let payload = &buf[*pos + 4..*pos + 4 + len];
    let crc_at = *pos + 4 + len;
    let stored_crc = u32::from_le_bytes(buf[crc_at..crc_at + 4].try_into().unwrap());
    if crc32(payload) != stored_crc {
        return None;
    }
    let rec = decode_payload(payload)?;
    *pos = crc_at + 4;
    Some(rec)
}

fn decode_payload(p: &[u8]) -> Option<WalRecord> {
    let (&tag, rest) = p.split_first()?;
    let txn_of =
        |r: &[u8]| -> Option<TxnId> { Some(TxnId::from_le_bytes(r.get(..8)?.try_into().unwrap())) };
    let u32_at = |r: &[u8], at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(r.get(at..at + 4)?.try_into().unwrap()))
    };
    match tag {
        TAG_BEGIN => Some(WalRecord::Begin { txn: txn_of(rest)? }),
        TAG_COMMIT => Some(WalRecord::Commit { txn: txn_of(rest)? }),
        TAG_ALLOC => Some(WalRecord::Alloc {
            txn: txn_of(rest)?,
            file: FileId(u32_at(rest, 8)?),
        }),
        TAG_CREATE_FILE => Some(WalRecord::CreateFile {
            txn: txn_of(rest)?,
            file: FileId(u32_at(rest, 8)?),
        }),
        TAG_DROP_FILE => Some(WalRecord::DropFile {
            txn: txn_of(rest)?,
            file: FileId(u32_at(rest, 8)?),
        }),
        TAG_WRITE => {
            if rest.len() != 8 + 4 + 4 + 2 * PAGE_SIZE {
                return None;
            }
            let txn = txn_of(rest)?;
            let file = FileId(u32_at(rest, 8)?);
            let page = PageId(u32_at(rest, 12)?);
            let before: Box<[u8]> = rest[16..16 + PAGE_SIZE].into();
            let after: Box<[u8]> = rest[16 + PAGE_SIZE..].into();
            Some(WalRecord::Write {
                txn,
                file,
                page,
                before,
                after,
            })
        }
        _ => None,
    }
}

// CRC-32 (IEEE 802.3 polynomial), table-driven; built at compile time so
// the hot append path is a byte-per-iteration table walk.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Box<[u8]> {
        vec![fill; PAGE_SIZE].into_boxed_slice()
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::CreateFile {
                txn: 7,
                file: FileId(3),
            },
            WalRecord::Alloc {
                txn: 7,
                file: FileId(3),
            },
            WalRecord::Write {
                txn: 7,
                file: FileId(3),
                page: PageId(0),
                before: page(0),
                after: page(0xAB),
            },
            WalRecord::DropFile {
                txn: 7,
                file: FileId(1),
            },
            WalRecord::Commit { txn: 7 },
        ]
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip() {
        let mut wal = Wal::new();
        let recs = sample_records();
        for r in &recs {
            wal.append(r);
        }
        let scan = wal.scan();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records, recs);
        assert_eq!(wal.record_count(), recs.len() as u64);
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let mut full = Wal::new();
        for r in sample_records() {
            full.append(&r);
        }
        let bytes = full.buf.clone();
        // Cutting anywhere strictly inside the log must never yield more
        // records than survive intact, and must flag the tear — except at
        // exact record boundaries, which look like a clean (shorter) log.
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            let mut pos = 0;
            while pos < bytes.len() {
                decode_one(&bytes, &mut pos).unwrap();
                b.push(pos);
            }
            b
        };
        for cut in 0..bytes.len() {
            let torn = Wal {
                buf: bytes[..cut].to_vec(),
                records: 0,
                high_water: 0,
                checkpoints: 0,
            };
            let scan = torn.scan();
            assert_eq!(scan.torn_tail, !boundaries.contains(&cut), "cut at {cut}");
            // Never decodes past the cut.
            assert!(scan.records.len() <= sample_records().len());
        }
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r);
        }
        // Flip one payload byte of the *first* record: scanning stops there.
        wal.buf[6] ^= 0x01;
        let scan = wal.scan();
        assert!(scan.torn_tail);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn tear_tail_then_clear() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.tear_tail(3);
        let scan = wal.scan();
        assert!(scan.torn_tail);
        assert_eq!(scan.records, vec![WalRecord::Begin { txn: 1 }]);
        wal.clear();
        assert!(wal.is_empty());
        assert!(!wal.scan().torn_tail);
    }
}
