//! In-memory indexes over heap files.
//!
//! The paper's experiments hinge on indexes: the flatness of `t_extract`
//! versus total stored rules (Figure 7) and of `t_read` versus total derived
//! predicates (Figure 9) both come from indexes on the rule-storage and
//! dictionary relations. Two kinds are provided:
//!
//! * **hash** — exact-match lookups (the default; what the testbed's
//!   generated programs use);
//! * **ordered** — a B-tree-style ordered directory that additionally
//!   serves range predicates (`WHERE a < 5`).
//!
//! Directories live in memory while the indexed records stay on pages;
//! probe counts are tracked so experiments can report logical index work.

use crate::heap::RecordId;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone)]
enum Directory {
    Hash(HashMap<Vec<Value>, Vec<RecordId>>),
    Ordered(BTreeMap<Vec<Value>, Vec<RecordId>>),
}

/// A multi-column index: exact-match lookups on a fixed key, and — for
/// ordered indexes — range scans.
///
/// The probe counter is an [`AtomicU64`] so lookups can be counted while
/// the catalog (and thus the index) is borrowed immutably during execution
/// — including from the partitioned operators' worker threads, which share
/// one `&TableIndex` and probe it concurrently.
#[derive(Debug)]
pub struct TableIndex {
    name: String,
    /// Positions of the key columns within the table schema.
    key_cols: Vec<usize>,
    directory: Directory,
    probes: AtomicU64,
}

impl Clone for TableIndex {
    fn clone(&self) -> TableIndex {
        TableIndex {
            name: self.name.clone(),
            key_cols: self.key_cols.clone(),
            directory: self.directory.clone(),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

/// Backwards-compatible alias: the original index type was hash-only.
pub type HashIndex = TableIndex;

impl TableIndex {
    /// A hash index (exact-match only).
    pub fn new(name: impl Into<String>, key_cols: Vec<usize>) -> TableIndex {
        assert!(!key_cols.is_empty(), "index needs at least one key column");
        TableIndex {
            name: name.into(),
            key_cols,
            directory: Directory::Hash(HashMap::new()),
            probes: AtomicU64::new(0),
        }
    }

    /// An ordered index (exact-match and range scans).
    pub fn new_ordered(name: impl Into<String>, key_cols: Vec<usize>) -> TableIndex {
        assert!(!key_cols.is_empty(), "index needs at least one key column");
        TableIndex {
            name: name.into(),
            key_cols,
            directory: Directory::Ordered(BTreeMap::new()),
            probes: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    pub fn is_ordered(&self) -> bool {
        matches!(self.directory, Directory::Ordered(_))
    }

    /// Extract this index's key from a full tuple.
    pub fn key_of(&self, tuple: &[Value]) -> Vec<Value> {
        self.key_cols.iter().map(|&i| tuple[i].clone()).collect()
    }

    /// Register `rid` under the key of `tuple`.
    pub fn insert(&mut self, tuple: &[Value], rid: RecordId) {
        let key = self.key_of(tuple);
        match &mut self.directory {
            Directory::Hash(m) => m.entry(key).or_default().push(rid),
            Directory::Ordered(m) => m.entry(key).or_default().push(rid),
        }
    }

    /// Remove `rid` from the posting list of `tuple`'s key.
    pub fn remove(&mut self, tuple: &[Value], rid: RecordId) {
        let key = self.key_of(tuple);
        let emptied = match &mut self.directory {
            Directory::Hash(m) => match m.get_mut(&key) {
                Some(rids) => {
                    rids.retain(|r| *r != rid);
                    rids.is_empty()
                }
                None => false,
            },
            Directory::Ordered(m) => match m.get_mut(&key) {
                Some(rids) => {
                    rids.retain(|r| *r != rid);
                    rids.is_empty()
                }
                None => false,
            },
        };
        if emptied {
            match &mut self.directory {
                Directory::Hash(m) => {
                    m.remove(&key);
                }
                Directory::Ordered(m) => {
                    m.remove(&key);
                }
            }
        }
    }

    /// All record ids whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[RecordId] {
        self.probes.fetch_add(1, Ordering::Relaxed);
        match &self.directory {
            Directory::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            Directory::Ordered(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Record ids whose key lies in the given bounds, in key order. Only
    /// meaningful for ordered indexes; a hash index returns `None`.
    pub fn range(&self, lo: Bound<Vec<Value>>, hi: Bound<Vec<Value>>) -> Option<Vec<RecordId>> {
        let Directory::Ordered(m) = &self.directory else {
            return None;
        };
        self.probes.fetch_add(1, Ordering::Relaxed);
        // An inverted range is simply empty (BTreeMap::range would panic).
        if let (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) =
            (&lo, &hi)
        {
            let empty = a > b
                || (a == b
                    && (matches!(lo, Bound::Excluded(_)) || matches!(hi, Bound::Excluded(_))));
            if empty {
                return Some(Vec::new());
            }
        }
        Some(
            m.range((lo, hi))
                .flat_map(|(_, rids)| rids.iter().copied())
                .collect(),
        )
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.directory {
            Directory::Hash(m) => m.len(),
            Directory::Ordered(m) => m.len(),
        }
    }

    /// Total postings.
    pub fn entry_count(&self) -> usize {
        match &self.directory {
            Directory::Hash(m) => m.values().map(Vec::len).sum(),
            Directory::Ordered(m) => m.values().map(Vec::len).sum(),
        }
    }

    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Discard all entries (used when a table is truncated).
    pub fn clear(&mut self) {
        match &mut self.directory {
            Directory::Hash(m) => m.clear(),
            Directory::Ordered(m) => m.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::PageId;

    fn rid(page: u32, slot: u16) -> RecordId {
        RecordId {
            page: PageId(page),
            slot,
        }
    }

    #[test]
    fn insert_lookup_single_column() {
        let mut idx = HashIndex::new("i1", vec![0]);
        idx.insert(&[Value::Int(1), Value::from("a")], rid(0, 0));
        idx.insert(&[Value::Int(1), Value::from("b")], rid(0, 1));
        idx.insert(&[Value::Int(2), Value::from("c")], rid(0, 2));
        assert_eq!(idx.lookup(&[Value::Int(1)]), &[rid(0, 0), rid(0, 1)]);
        assert_eq!(idx.lookup(&[Value::Int(2)]), &[rid(0, 2)]);
        assert!(idx.lookup(&[Value::Int(3)]).is_empty());
        assert_eq!(idx.probes(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entry_count(), 3);
    }

    #[test]
    fn multi_column_key_uses_all_parts() {
        let mut idx = HashIndex::new("i2", vec![0, 1]);
        idx.insert(&[Value::Int(1), Value::from("a")], rid(0, 0));
        assert_eq!(idx.lookup(&[Value::Int(1), Value::from("a")]).len(), 1);
        assert!(idx.lookup(&[Value::Int(1), Value::from("b")]).is_empty());
    }

    #[test]
    fn key_can_skip_and_reorder_columns() {
        let mut idx = HashIndex::new("i3", vec![2, 0]);
        let tuple = [Value::Int(10), Value::from("mid"), Value::Int(30)];
        idx.insert(&tuple, rid(1, 1));
        assert_eq!(idx.key_of(&tuple), vec![Value::Int(30), Value::Int(10)]);
        assert_eq!(idx.lookup(&[Value::Int(30), Value::Int(10)]).len(), 1);
    }

    #[test]
    fn remove_shrinks_posting_list() {
        let mut idx = HashIndex::new("i4", vec![0]);
        let t = [Value::Int(1)];
        idx.insert(&t, rid(0, 0));
        idx.insert(&t, rid(0, 1));
        idx.remove(&t, rid(0, 0));
        assert_eq!(idx.lookup(&[Value::Int(1)]), &[rid(0, 1)]);
        idx.remove(&t, rid(0, 1));
        assert!(idx.lookup(&[Value::Int(1)]).is_empty());
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn clear_empties_index() {
        let mut idx = HashIndex::new("i5", vec![0]);
        idx.insert(&[Value::Int(1)], rid(0, 0));
        idx.clear();
        assert_eq!(idx.entry_count(), 0);
    }
}
