//! The simulated disk.
//!
//! The paper's testbed ran against a disk-based commercial DBMS. We model
//! the disk as an in-memory collection of paged files with explicit read and
//! write accounting, so experiments can report deterministic "physical I/O"
//! counts alongside wall-clock time. Every transfer moves a whole
//! [`crate::page::PAGE_SIZE`] page, exactly as a buffer manager
//! over a real disk would.

use crate::page::PAGE_SIZE;

/// Identifies a file on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Cumulative physical I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    pub pages_read: u64,
    pub pages_written: u64,
    pub pages_allocated: u64,
}

/// An in-memory paged "disk". Files are append-only collections of pages;
/// dropping a file releases its pages immediately (the engine uses this for
/// the temp-table churn the paper identifies as a major LFP overhead).
#[derive(Default)]
pub struct Disk {
    files: Vec<Option<Vec<Box<[u8]>>>>,
    stats: DiskStats,
}

impl Disk {
    pub fn new() -> Disk {
        Disk::default()
    }

    /// Create a new empty file.
    pub fn create_file(&mut self) -> FileId {
        // Reuse the slot of a previously dropped file if any, so long
        // sessions do not grow the file table without bound.
        if let Some(idx) = self.files.iter().position(Option::is_none) {
            self.files[idx] = Some(Vec::new());
            FileId(idx as u32)
        } else {
            self.files.push(Some(Vec::new()));
            FileId((self.files.len() - 1) as u32)
        }
    }

    /// Drop a file and all its pages.
    pub fn drop_file(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            *slot = None;
        }
    }

    fn file(&self, file: FileId) -> &Vec<Box<[u8]>> {
        self.files[file.0 as usize]
            .as_ref()
            .expect("access to dropped file")
    }

    fn file_mut(&mut self, file: FileId) -> &mut Vec<Box<[u8]>> {
        self.files[file.0 as usize]
            .as_mut()
            .expect("access to dropped file")
    }

    /// Append a zeroed page to `file`.
    pub fn allocate_page(&mut self, file: FileId) -> PageId {
        self.stats.pages_allocated += 1;
        let pages = self.file_mut(file);
        pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice());
        PageId((pages.len() - 1) as u32)
    }

    /// Number of pages currently allocated to `file`.
    pub fn page_count(&self, file: FileId) -> u32 {
        self.file(file).len() as u32
    }

    /// Read a page into `out`.
    pub fn read_page(&mut self, file: FileId, page: PageId, out: &mut [u8]) {
        self.stats.pages_read += 1;
        out.copy_from_slice(&self.file(file)[page.0 as usize]);
    }

    /// Write a page from `data`.
    pub fn write_page(&mut self, file: FileId, page: PageId, data: &[u8]) {
        self.stats.pages_written += 1;
        self.file_mut(file)[page.0 as usize].copy_from_slice(data);
    }

    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Whether `file` still exists.
    pub fn file_exists(&self, file: FileId) -> bool {
        matches!(self.files.get(file.0 as usize), Some(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_allocate_read_write() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        assert_eq!(disk.page_count(f), 1);

        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        disk.write_page(f, p, &data);

        let mut out = vec![0u8; PAGE_SIZE];
        disk.read_page(f, p, &mut out);
        assert_eq!(out[0], 0xAB);

        let s = disk.stats();
        assert_eq!(s.pages_allocated, 1);
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.pages_written, 1);
    }

    #[test]
    fn file_ids_are_reused_after_drop() {
        let mut disk = Disk::new();
        let f0 = disk.create_file();
        let f1 = disk.create_file();
        assert_ne!(f0, f1);
        disk.drop_file(f0);
        assert!(!disk.file_exists(f0));
        assert!(disk.file_exists(f1));
        let f2 = disk.create_file();
        assert_eq!(f2, f0, "dropped slot is reused");
        assert_eq!(disk.page_count(f2), 0, "reused file starts empty");
    }

    #[test]
    #[should_panic(expected = "dropped file")]
    fn access_to_dropped_file_panics() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        disk.drop_file(f);
        disk.allocate_page(f);
    }

    #[test]
    fn pages_are_zeroed_on_allocation() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f);
        let mut out = vec![0xFFu8; PAGE_SIZE];
        disk.read_page(f, p, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }
}
