//! The simulated disk.
//!
//! The paper's testbed ran against a disk-based commercial DBMS. We model
//! the disk as an in-memory collection of paged files with explicit read and
//! write accounting, so experiments can report deterministic "physical I/O"
//! counts alongside wall-clock time. Every transfer moves a whole
//! [`crate::page::PAGE_SIZE`] page, exactly as a buffer manager
//! over a real disk would.
//!
//! Two subsystems are layered directly on the physical I/O path:
//!
//! * a **write-ahead log** ([`crate::wal`]): while a transaction is active,
//!   every physical page write is preceded by a logged before/after image,
//!   and structural changes (page allocation, file create/drop) are logged
//!   too, so [`Disk::recover_wal`] can redo committed work and undo
//!   uncommitted work after a crash;
//! * a **fault injector**: a deterministic crash/error model (fail after N
//!   writes, torn half-page writes, torn WAL tails, transient read errors)
//!   used by the crash-point sweep tests. When a fault fires the disk
//!   enters a *crashed* state and refuses all further I/O until recovery,
//!   the moral equivalent of pulling the power cord.
//!
//! Both are strictly opt-in: with no WAL enabled and no injector armed,
//! the I/O path is byte-for-byte the original one.

use crate::catalog::DbError;
use crate::page::PAGE_SIZE;
use crate::wal::{TxnId, Wal, WalRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifies a file on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Page buffer: pages are shared copy-on-write between a disk and its
/// [`Disk::fork`] snapshots, so a fork is O(pages) pointer copies and a
/// write to either side clones only the page it touches.
type PageBuf = Arc<Vec<u8>>;

/// Cumulative physical I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    pub pages_read: u64,
    pub pages_written: u64,
    pub pages_allocated: u64,
    /// Pages physically cloned because a write hit a page still shared
    /// with a snapshot fork (the copy-on-write cost of MVCC reads).
    pub pages_cow: u64,
    /// Durable WAL flushes. Without group commit every commit is one
    /// fsync; with it a single fsync can cover a whole commit batch.
    pub fsyncs: u64,
    /// Fsyncs that covered more than one committed transaction.
    pub group_commits: u64,
    /// Transactions whose commit was made durable by a shared fsync
    /// (every deferred-fsync commit, batched or not).
    pub group_committed_txns: u64,
    /// WAL records appended (0 unless a transaction ran with WAL on).
    pub wal_records: u64,
    /// Total bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Checkpoints (whole-log truncations) taken by the WAL.
    pub wal_checkpoints: u64,
    /// Checkpoints forced by the size threshold while per-commit
    /// checkpointing was off (a subset of `wal_checkpoints`).
    pub wal_auto_checkpoints: u64,
    /// Peak WAL size in bytes ever reached between checkpoints.
    pub wal_high_water_bytes: u64,
    /// Reads that hit a transient fault and were retried.
    pub read_retries: u64,
    /// Writes the injector tore in half before crashing the disk.
    pub torn_writes: u64,
    /// Total faults the injector fired.
    pub injected_faults: u64,
}

/// How many times a transient read error is retried before giving up.
const READ_RETRY_LIMIT: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteFault {
    None,
    /// Crash before the page write takes effect.
    Fail,
    /// Write a prefix of the page, then crash.
    Torn,
}

/// Deterministic fault model for crash testing. All decisions derive from
/// the configuration and an internal xorshift stream, so a given seed or
/// explicit setting reproduces the identical fault sequence every run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Crash when this many page writes have been attempted (the N+1-th
    /// write fires the fault). Counts data-page writes and the commit
    /// record append, so a sweep over N covers every crash point of a
    /// transaction including "during commit".
    fail_after_writes: Option<u64>,
    /// When the crash fires on a data page, write a random-length prefix
    /// of it first (a torn page) instead of dropping the write entirely.
    torn_writes: bool,
    /// When the crash fires, also tear this many bytes off the WAL tail
    /// (simulates the crash landing mid-append of the log record).
    wal_tear_bytes: Option<usize>,
    /// Every Nth read fails transiently (succeeds when retried).
    transient_read_every: Option<u64>,
    /// When this many page writes have been attempted, set `cancel_flag`
    /// instead of crashing: models an operator hitting cancel while the
    /// engine is mid-write. Independent of `fail_after_writes` — a
    /// schedule can arm both.
    cancel_after_writes: Option<u64>,
    /// The cooperative cancellation flag to set (a clone of
    /// `Engine::cancel_handle`).
    cancel_flag: Option<Arc<AtomicBool>>,
    writes_seen: u64,
    reads_seen: u64,
    rng: u64,
}

impl FaultInjector {
    /// An injector with no faults armed; combine with the builder methods.
    pub fn new() -> FaultInjector {
        FaultInjector {
            fail_after_writes: None,
            torn_writes: false,
            wal_tear_bytes: None,
            transient_read_every: None,
            cancel_after_writes: None,
            cancel_flag: None,
            writes_seen: 0,
            reads_seen: 0,
            rng: 0x9E37_79B9_97F4_A7C1,
        }
    }

    /// Derive a full fault plan deterministically from a seed: a crash
    /// point in `[0, 64)`, torn or clean, with or without a WAL tear.
    pub fn from_seed(seed: u64) -> FaultInjector {
        let mut x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_97F4_A7C1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let fail_after = next() % 64;
        let torn = next() & 1 == 1;
        let wal_tear = if next() & 1 == 1 {
            Some((next() % 512 + 1) as usize)
        } else {
            None
        };
        let mut inj = FaultInjector::new()
            .fail_after_writes(fail_after)
            .torn_writes(torn);
        if let Some(bytes) = wal_tear {
            inj = inj.tear_wal_tail(bytes);
        }
        inj.rng = seed | 1;
        inj
    }

    pub fn fail_after_writes(mut self, n: u64) -> FaultInjector {
        self.fail_after_writes = Some(n);
        self
    }

    pub fn torn_writes(mut self, on: bool) -> FaultInjector {
        self.torn_writes = on;
        self
    }

    pub fn tear_wal_tail(mut self, bytes: usize) -> FaultInjector {
        self.wal_tear_bytes = Some(bytes);
        self
    }

    pub fn transient_read_every(mut self, n: u64) -> FaultInjector {
        assert!(n > 0, "transient read period must be positive");
        self.transient_read_every = Some(n);
        self
    }

    /// Arm a cancellation at the `n`-th page-write attempt: when it
    /// fires, `flag` (a clone of the engine's cancel handle) is set and
    /// the write itself proceeds normally. Sweeping `n` over a
    /// transaction's write points exercises "the user hit cancel at
    /// every possible moment" without the disk ever crashing.
    pub fn cancel_at_write(mut self, n: u64, flag: Arc<AtomicBool>) -> FaultInjector {
        self.cancel_after_writes = Some(n);
        self.cancel_flag = Some(flag);
        self
    }

    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    fn on_write(&mut self) -> WriteFault {
        let seen = self.writes_seen;
        self.writes_seen += 1;
        if let (Some(n), Some(flag)) = (self.cancel_after_writes, self.cancel_flag.as_ref()) {
            if seen >= n {
                flag.store(true, Ordering::Relaxed);
            }
        }
        match self.fail_after_writes {
            Some(n) if seen >= n => {
                if self.torn_writes {
                    WriteFault::Torn
                } else {
                    WriteFault::Fail
                }
            }
            _ => WriteFault::None,
        }
    }

    /// Whether this read fails transiently (a retry will re-roll).
    fn on_read(&mut self) -> bool {
        self.reads_seen += 1;
        match self.transient_read_every {
            Some(n) => self.reads_seen.is_multiple_of(n),
            None => false,
        }
    }

    /// Length of the prefix written for a torn page: at least 1 byte,
    /// strictly less than a full page, around half on average.
    fn torn_prefix_len(&mut self) -> usize {
        1 + (self.next_rand() as usize) % (PAGE_SIZE - 1)
    }
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector::new()
    }
}

/// Summary of what [`Disk::recover_wal`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions whose effects were replayed.
    pub committed_replayed: usize,
    /// Uncommitted transactions whose effects were undone.
    pub rolled_back: usize,
    pub pages_redone: u64,
    pub pages_undone: u64,
    /// A CRC-invalid or truncated log tail was discarded.
    pub torn_tail_discarded: bool,
}

/// An in-memory paged "disk". Files are append-only collections of pages;
/// dropping a file releases its pages immediately (the engine uses this for
/// the temp-table churn the paper identifies as a major LFP overhead) —
/// except during a transaction, where drops are deferred to commit so
/// rollback can resurrect the file.
#[derive(Default)]
pub struct Disk {
    files: Vec<Option<Vec<PageBuf>>>,
    stats: DiskStats,
    wal: Option<Wal>,
    active_txn: Option<TxnId>,
    next_txn: TxnId,
    deferred_drops: Vec<FileId>,
    injector: Option<FaultInjector>,
    crashed: bool,
    /// Commits whose durability fsync was deferred to the group-commit
    /// leader (see [`Disk::set_defer_fsync`] / [`Disk::fsync_wal`]).
    pending_fsync_commits: u64,
    /// When set, `commit_txn` does not count an fsync of its own; the
    /// session layer's commit leader calls [`Disk::fsync_wal`] once per
    /// drained batch instead.
    defer_fsync: bool,
    /// Clearing the WAL at commit (checkpointing) is the default; tests
    /// exercising the redo path disable it to keep committed records
    /// around for replay.
    checkpoint_on_commit: bool,
    /// With `checkpoint_on_commit` off, a commit still checkpoints once
    /// the log exceeds this many bytes, so redo-retaining mode cannot
    /// grow the log without bound. `None` disables the backstop.
    wal_autockpt_bytes: Option<u64>,
}

/// Default WAL auto-checkpoint threshold: large enough that redo tests
/// retaining a handful of commits never trip it, small enough that a
/// long-lived redo-retaining session is bounded.
pub const DEFAULT_WAL_AUTOCKPT_BYTES: u64 = 4 << 20;

impl Disk {
    pub fn new() -> Disk {
        Disk {
            checkpoint_on_commit: true,
            wal_autockpt_bytes: Some(DEFAULT_WAL_AUTOCKPT_BYTES),
            ..Disk::default()
        }
    }

    /// A copy-on-write snapshot of every live file. Pages are shared by
    /// `Arc`, so the fork costs O(#pages) pointer copies; the first write
    /// to a shared page — on either side — clones just that page
    /// (counted in [`DiskStats::pages_cow`]). The fork carries no WAL,
    /// no injector, and no transaction state: snapshots are read-mostly
    /// scratch space (MVCC readers), never a durability domain.
    ///
    /// Must not be called mid-transaction: the snapshot would see
    /// uncommitted page images.
    pub fn fork(&self) -> Disk {
        debug_assert!(
            self.active_txn.is_none(),
            "fork during an active transaction would snapshot uncommitted writes"
        );
        Disk {
            files: self.files.clone(),
            ..Disk::new()
        }
    }

    /// Number of live (non-dropped, non-deferred-dropped) file slots.
    /// Spill-file accounting: an aborted statement must return this to
    /// its pre-statement value once its spill streams are cleaned up.
    pub fn live_files(&self) -> usize {
        self.files.iter().filter(|f| f.is_some()).count()
    }

    // ------------------------------------------------------------------
    // Durability / fault-injection configuration
    // ------------------------------------------------------------------

    /// Turn on write-ahead logging. Idempotent; transactions require it.
    pub fn enable_wal(&mut self) {
        if self.wal.is_none() {
            self.wal = Some(Wal::new());
        }
    }

    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// The current log, when WAL is enabled (tests inspect it).
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    pub fn clear_fault_injector(&mut self) {
        self.injector = None;
    }

    /// Whether a previously injected fault has "powered off" the disk.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Keep committed WAL records instead of checkpointing at commit.
    pub fn set_checkpoint_on_commit(&mut self, on: bool) {
        self.checkpoint_on_commit = on;
    }

    /// Set (or disable, with `None`) the size threshold above which a
    /// commit checkpoints the log even when `checkpoint_on_commit` is
    /// off.
    pub fn set_wal_autocheckpoint_bytes(&mut self, threshold: Option<u64>) {
        self.wal_autockpt_bytes = threshold;
    }

    /// Defer per-commit durability flushes to an explicit
    /// [`Disk::fsync_wal`] call (the group-commit path). Off by default:
    /// every commit then counts one fsync of its own.
    pub fn set_defer_fsync(&mut self, on: bool) {
        self.defer_fsync = on;
    }

    /// Flush the WAL once on behalf of every commit since the last
    /// flush. Returns the number of commits this fsync made durable.
    pub fn fsync_wal(&mut self) -> u64 {
        let n = self.pending_fsync_commits;
        if n > 0 {
            self.stats.fsyncs += 1;
            self.stats.group_committed_txns += n;
            if n > 1 {
                self.stats.group_commits += 1;
            }
            self.pending_fsync_commits = 0;
        }
        n
    }

    fn check_crashed(&self) -> Result<(), DbError> {
        if self.crashed {
            Err(DbError::Io(
                "disk is in crashed state after an injected fault; run recovery".into(),
            ))
        } else {
            Ok(())
        }
    }

    /// Enter the crashed state and report the fault as an I/O error.
    fn crash(&mut self, what: &str) -> DbError {
        self.crashed = true;
        self.stats.injected_faults += 1;
        DbError::Io(format!("injected fault: {what}"))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Requires WAL; nested transactions are not
    /// supported.
    pub fn begin_txn(&mut self) -> Result<TxnId, DbError> {
        self.check_crashed()?;
        if self.wal.is_none() {
            return Err(DbError::Txn("begin_txn requires WAL to be enabled".into()));
        }
        if self.active_txn.is_some() {
            return Err(DbError::Txn("a transaction is already active".into()));
        }
        self.next_txn += 1;
        let txn = self.next_txn;
        self.active_txn = Some(txn);
        self.wal_append(WalRecord::Begin { txn });
        Ok(txn)
    }

    pub fn in_txn(&self) -> bool {
        self.active_txn.is_some()
    }

    /// Commit the active transaction: log the commit record (itself a
    /// crash point for the injector), apply deferred file drops, and
    /// checkpoint the log.
    pub fn commit_txn(&mut self) -> Result<(), DbError> {
        self.check_crashed()?;
        let txn = self
            .active_txn
            .ok_or_else(|| DbError::Txn("commit without an active transaction".into()))?;
        // The commit-record append is one more write point in the sweep:
        // a crash here must leave the transaction uncommitted.
        let commit_fault = self
            .injector
            .as_mut()
            .map(|inj| (inj.on_write(), inj.wal_tear_bytes.unwrap_or(1)));
        if let Some((fault, tear)) = commit_fault {
            if fault != WriteFault::None {
                self.wal_append(WalRecord::Commit { txn });
                if let Some(wal) = self.wal.as_mut() {
                    wal.tear_tail(tear);
                }
                return Err(self.crash("crash while appending commit record"));
            }
        }
        self.wal_append(WalRecord::Commit { txn });
        // The commit record is only durable once flushed; group commit
        // defers the flush so one fsync can cover a batch of commits.
        if self.defer_fsync {
            self.pending_fsync_commits += 1;
        } else {
            self.stats.fsyncs += 1;
        }
        let drops = std::mem::take(&mut self.deferred_drops);
        for file in drops {
            self.drop_file_now(file);
        }
        self.active_txn = None;
        if self.checkpoint_on_commit {
            if let Some(wal) = self.wal.as_mut() {
                wal.clear();
            }
        } else if let Some(limit) = self.wal_autockpt_bytes {
            // Redo-retaining mode keeps committed records for replay, but
            // not without bound: the commit just made every page durable,
            // so once the log outgrows the threshold it is safe to
            // checkpoint here — exactly the state a per-commit checkpoint
            // would have produced.
            if let Some(wal) = self.wal.as_mut() {
                if wal.byte_len() as u64 > limit {
                    wal.clear();
                    self.stats.wal_auto_checkpoints += 1;
                }
            }
        }
        Ok(())
    }

    /// Roll back the active transaction using WAL before-images. Only
    /// valid on a healthy disk; a crashed disk must go through
    /// [`Disk::recover_wal`] instead.
    pub fn rollback_txn(&mut self) -> Result<(), DbError> {
        self.check_crashed()?;
        let txn = self
            .active_txn
            .ok_or_else(|| DbError::Txn("rollback without an active transaction".into()))?;
        let records: Vec<WalRecord> = self
            .wal
            .as_ref()
            .map(|w| w.scan().records)
            .unwrap_or_default()
            .into_iter()
            .filter(|r| r.txn() == txn)
            .collect();
        self.undo_records(&records);
        self.deferred_drops.clear();
        self.active_txn = None;
        if let Some(wal) = self.wal.as_mut() {
            wal.clear();
        }
        Ok(())
    }

    /// Crash recovery: disarm the injector, scan the log (discarding any
    /// torn tail), redo every committed transaction's effects in order,
    /// undo every uncommitted transaction's effects in reverse, then
    /// checkpoint. The caller is responsible for discarding cached pages
    /// and rebuilding volatile (in-memory) state afterwards.
    pub fn recover_wal(&mut self) -> Result<RecoveryReport, DbError> {
        self.crashed = false;
        self.injector = None;
        let mut report = RecoveryReport::default();
        let Some(wal) = self.wal.as_ref() else {
            self.active_txn = None;
            self.deferred_drops.clear();
            return Ok(report);
        };
        let scan = wal.scan();
        report.torn_tail_discarded = scan.torn_tail;
        let committed: std::collections::BTreeSet<TxnId> = scan
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let begun: std::collections::BTreeSet<TxnId> = scan
            .records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Begin { txn } => Some(*txn),
                _ => None,
            })
            .collect();

        // Redo committed transactions in log order.
        let mut deferred: Vec<FileId> = Vec::new();
        for rec in scan.records.iter().filter(|r| committed.contains(&r.txn())) {
            match rec {
                WalRecord::CreateFile { file, .. } => {
                    self.ensure_file_slot(*file);
                }
                WalRecord::Alloc { file, .. } => {
                    self.ensure_file_slot(*file);
                    self.file_mut(*file).push(Arc::new(vec![0u8; PAGE_SIZE]));
                }
                WalRecord::Write {
                    file, page, after, ..
                } => {
                    self.ensure_file_slot(*file);
                    let pages = self.file_mut(*file);
                    while pages.len() <= page.0 as usize {
                        pages.push(Arc::new(vec![0u8; PAGE_SIZE]));
                    }
                    pages[page.0 as usize] = Arc::new(after.to_vec());
                    report.pages_redone += 1;
                }
                WalRecord::DropFile { file, .. } => deferred.push(*file),
                WalRecord::Begin { .. } | WalRecord::Commit { .. } => {}
            }
        }
        for file in deferred {
            self.drop_file_now(file);
        }
        report.committed_replayed = committed.len();

        // Undo uncommitted transactions in reverse log order.
        let uncommitted: Vec<WalRecord> = scan
            .records
            .iter()
            .filter(|r| !committed.contains(&r.txn()))
            .cloned()
            .collect();
        report.pages_undone = self.undo_records(&uncommitted);
        report.rolled_back = begun.iter().filter(|t| !committed.contains(t)).count();

        self.deferred_drops.clear();
        self.active_txn = None;
        if let Some(wal) = self.wal.as_mut() {
            wal.clear();
        }
        Ok(report)
    }

    /// Apply before-images / structural undos in reverse order. Returns
    /// the number of pages restored.
    fn undo_records(&mut self, records: &[WalRecord]) -> u64 {
        let mut pages_undone = 0;
        for rec in records.iter().rev() {
            match rec {
                WalRecord::Write {
                    file, page, before, ..
                } => {
                    if let Some(Some(pages)) = self.files.get_mut(file.0 as usize) {
                        if let Some(slot) = pages.get_mut(page.0 as usize) {
                            *slot = Arc::new(before.to_vec());
                            pages_undone += 1;
                        }
                    }
                }
                WalRecord::Alloc { file, .. } => {
                    // Reverse order guarantees the last allocation of each
                    // file is undone first, so popping is exact.
                    if let Some(Some(pages)) = self.files.get_mut(file.0 as usize) {
                        pages.pop();
                    }
                }
                WalRecord::CreateFile { file, .. } => {
                    self.drop_file_now(*file);
                }
                // Drops were deferred, so there is nothing to undo.
                WalRecord::DropFile { .. } | WalRecord::Begin { .. } | WalRecord::Commit { .. } => {
                }
            }
        }
        pages_undone
    }

    fn wal_append(&mut self, rec: WalRecord) {
        if let Some(wal) = self.wal.as_mut() {
            let before = wal.byte_len();
            wal.append(&rec);
            self.stats.wal_records += 1;
            self.stats.wal_bytes += (wal.byte_len() - before) as u64;
        }
    }

    fn ensure_file_slot(&mut self, file: FileId) {
        let idx = file.0 as usize;
        if self.files.len() <= idx {
            self.files.resize_with(idx + 1, || None);
        }
        if self.files[idx].is_none() {
            self.files[idx] = Some(Vec::new());
        }
    }

    // ------------------------------------------------------------------
    // Files and pages
    // ------------------------------------------------------------------

    /// Create a new empty file.
    pub fn create_file(&mut self) -> FileId {
        // Reuse the slot of a previously dropped file if any, so long
        // sessions do not grow the file table without bound. Slots with a
        // pending deferred drop are still live and must not be reused.
        let reusable = self
            .files
            .iter()
            .enumerate()
            .position(|(i, f)| f.is_none() && !self.deferred_drops.contains(&FileId(i as u32)));
        let id = if let Some(idx) = reusable {
            self.files[idx] = Some(Vec::new());
            FileId(idx as u32)
        } else {
            self.files.push(Some(Vec::new()));
            FileId((self.files.len() - 1) as u32)
        };
        if let Some(txn) = self.active_txn {
            self.wal_append(WalRecord::CreateFile { txn, file: id });
        }
        id
    }

    /// Drop a file and all its pages. Inside a transaction the drop is
    /// deferred to commit (and cancelled by rollback); outside one it is
    /// immediate.
    pub fn drop_file(&mut self, file: FileId) {
        if let Some(txn) = self.active_txn {
            self.wal_append(WalRecord::DropFile { txn, file });
            self.deferred_drops.push(file);
        } else {
            self.drop_file_now(file);
        }
    }

    fn drop_file_now(&mut self, file: FileId) {
        if let Some(slot) = self.files.get_mut(file.0 as usize) {
            *slot = None;
        }
    }

    /// Discard every page of `file` but keep the file itself alive (the
    /// TRUNCATE fast path). Truncation is not WAL-logged, so callers must
    /// not invoke this inside a transaction — the engine falls back to
    /// logged per-row deletes there.
    pub fn truncate_file(&mut self, file: FileId) -> Result<(), DbError> {
        self.check_crashed()?;
        debug_assert!(
            self.active_txn.is_none(),
            "truncate_file is not transactional"
        );
        self.file_mut(file).clear();
        Ok(())
    }

    fn file(&self, file: FileId) -> &Vec<PageBuf> {
        self.files[file.0 as usize]
            .as_ref()
            .expect("access to dropped file")
    }

    fn file_mut(&mut self, file: FileId) -> &mut Vec<PageBuf> {
        self.files[file.0 as usize]
            .as_mut()
            .expect("access to dropped file")
    }

    /// Mutable bytes of a page, cloning it first (copy-on-write) if it
    /// is still shared with a [`Disk::fork`] snapshot.
    fn page_mut(&mut self, file: FileId, page: PageId) -> &mut Vec<u8> {
        let slot = &mut self.files[file.0 as usize]
            .as_mut()
            .expect("access to dropped file")[page.0 as usize];
        if Arc::get_mut(slot).is_none() {
            self.stats.pages_cow += 1;
        }
        Arc::make_mut(slot)
    }

    /// Append a zeroed page to `file`.
    pub fn allocate_page(&mut self, file: FileId) -> Result<PageId, DbError> {
        self.check_crashed()?;
        if let Some(txn) = self.active_txn {
            self.wal_append(WalRecord::Alloc { txn, file });
        }
        self.stats.pages_allocated += 1;
        let pages = self.file_mut(file);
        pages.push(Arc::new(vec![0u8; PAGE_SIZE]));
        Ok(PageId((pages.len() - 1) as u32))
    }

    /// Number of pages currently allocated to `file`.
    pub fn page_count(&self, file: FileId) -> u32 {
        self.file(file).len() as u32
    }

    /// Read a page into `out`. Transient injected faults are retried up
    /// to [`READ_RETRY_LIMIT`] times before surfacing as an error.
    pub fn read_page(&mut self, file: FileId, page: PageId, out: &mut [u8]) -> Result<(), DbError> {
        self.check_crashed()?;
        let mut attempts = 0;
        while self.injector.as_mut().is_some_and(FaultInjector::on_read) {
            self.stats.read_retries += 1;
            attempts += 1;
            if attempts > READ_RETRY_LIMIT {
                return Err(DbError::Io(format!(
                    "read of file {} page {} failed after {} retries",
                    file.0, page.0, READ_RETRY_LIMIT
                )));
            }
        }
        self.stats.pages_read += 1;
        out.copy_from_slice(&self.file(file)[page.0 as usize]);
        Ok(())
    }

    /// Write a page from `data`. While a transaction is active the write
    /// is logged (before + after image) ahead of touching the page.
    pub fn write_page(&mut self, file: FileId, page: PageId, data: &[u8]) -> Result<(), DbError> {
        self.check_crashed()?;
        if self.wal.is_some() {
            if let Some(txn) = self.active_txn {
                let before: Box<[u8]> = self.file(file)[page.0 as usize].as_slice().into();
                self.wal_append(WalRecord::Write {
                    txn,
                    file,
                    page,
                    before,
                    after: data.into(),
                });
            }
        }
        let fault = match self.injector.as_mut() {
            None => None,
            Some(inj) => match inj.on_write() {
                WriteFault::None => None,
                WriteFault::Fail => Some((WriteFault::Fail, inj.wal_tear_bytes, 0)),
                WriteFault::Torn => {
                    let n = inj.torn_prefix_len();
                    Some((WriteFault::Torn, None, n))
                }
            },
        };
        match fault {
            None => {}
            Some((WriteFault::Fail, wal_tear, _)) => {
                // The crash may also land mid-append of the WAL record
                // for this very write: tear the tail so recovery sees
                // a CRC-invalid suffix. The page itself is untouched,
                // which is exactly what a torn log implies.
                if let Some(bytes) = wal_tear {
                    if self.active_txn.is_some() {
                        if let Some(wal) = self.wal.as_mut() {
                            wal.tear_tail(bytes);
                        }
                    }
                }
                return Err(self.crash("crash before page write"));
            }
            Some((_, _, n)) => {
                self.stats.torn_writes += 1;
                self.page_mut(file, page)[..n].copy_from_slice(&data[..n]);
                return Err(self.crash("torn page write"));
            }
        }
        self.stats.pages_written += 1;
        self.page_mut(file, page).copy_from_slice(data);
        Ok(())
    }

    pub fn stats(&self) -> DiskStats {
        let mut s = self.stats;
        if let Some(wal) = self.wal.as_ref() {
            s.wal_checkpoints = wal.checkpoint_count();
            s.wal_high_water_bytes = wal.high_water_bytes() as u64;
        }
        s
    }

    /// Whether `file` still exists.
    pub fn file_exists(&self, file: FileId) -> bool {
        matches!(self.files.get(file.0 as usize), Some(Some(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn create_allocate_read_write() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        assert_eq!(disk.page_count(f), 1);

        let mut data = vec![0u8; PAGE_SIZE];
        data[0] = 0xAB;
        disk.write_page(f, p, &data).unwrap();

        let mut out = vec![0u8; PAGE_SIZE];
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);

        let s = disk.stats();
        assert_eq!(s.pages_allocated, 1);
        assert_eq!(s.pages_read, 1);
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.wal_records, 0, "no WAL traffic without a transaction");
    }

    #[test]
    fn file_ids_are_reused_after_drop() {
        let mut disk = Disk::new();
        let f0 = disk.create_file();
        let f1 = disk.create_file();
        assert_ne!(f0, f1);
        disk.drop_file(f0);
        assert!(!disk.file_exists(f0));
        assert!(disk.file_exists(f1));
        let f2 = disk.create_file();
        assert_eq!(f2, f0, "dropped slot is reused");
        assert_eq!(disk.page_count(f2), 0, "reused file starts empty");
    }

    #[test]
    #[should_panic(expected = "dropped file")]
    fn access_to_dropped_file_panics() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        disk.drop_file(f);
        let _ = disk.allocate_page(f);
    }

    #[test]
    fn pages_are_zeroed_on_allocation() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        let mut out = vec![0xFFu8; PAGE_SIZE];
        disk.read_page(f, p, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn rollback_restores_before_images_and_structure() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(1)).unwrap();

        disk.begin_txn().unwrap();
        disk.write_page(f, p, &page_of(2)).unwrap();
        let p2 = disk.allocate_page(f).unwrap();
        disk.write_page(f, p2, &page_of(3)).unwrap();
        let g = disk.create_file();
        disk.allocate_page(g).unwrap();
        disk.rollback_txn().unwrap();

        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(1), "before-image restored");
        assert_eq!(disk.page_count(f), 1, "allocation undone");
        assert!(!disk.file_exists(g), "created file removed");
        assert!(!disk.in_txn());
        assert!(disk.wal().unwrap().is_empty());
    }

    #[test]
    fn commit_applies_deferred_drops_and_checkpoints() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let doomed = disk.create_file();
        disk.begin_txn().unwrap();
        disk.drop_file(doomed);
        assert!(disk.file_exists(doomed), "drop deferred during txn");
        disk.commit_txn().unwrap();
        assert!(!disk.file_exists(doomed), "drop applied at commit");
        assert!(disk.wal().unwrap().is_empty(), "checkpoint cleared the log");
    }

    #[test]
    fn rollback_cancels_deferred_drop() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(9)).unwrap();
        disk.begin_txn().unwrap();
        disk.drop_file(f);
        disk.rollback_txn().unwrap();
        assert!(disk.file_exists(f));
        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(9));
    }

    #[test]
    fn redo_replays_committed_work_after_losing_data_writes() {
        let mut disk = Disk::new();
        disk.enable_wal();
        disk.set_checkpoint_on_commit(false);
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.begin_txn().unwrap();
        disk.write_page(f, p, &page_of(7)).unwrap();
        disk.commit_txn().unwrap();

        // Simulate the media losing the data write after commit: smash
        // the page, then recover. Redo must restore the after-image.
        *Arc::make_mut(&mut disk.file_mut(f)[p.0 as usize]) = page_of(0);
        let report = disk.recover_wal().unwrap();
        assert_eq!(report.committed_replayed, 1);
        assert!(report.pages_redone >= 1);
        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(7), "redo restored committed data");
    }

    #[test]
    fn crash_poisons_disk_until_recovery() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(1)).unwrap();

        disk.set_fault_injector(FaultInjector::new().fail_after_writes(0));
        disk.begin_txn().unwrap();
        assert!(disk.write_page(f, p, &page_of(2)).is_err());
        assert!(disk.crashed());
        // Everything fails until recovery, including reads and rollback.
        let mut out = page_of(0);
        assert!(disk.read_page(f, p, &mut out).is_err());
        assert!(disk.rollback_txn().is_err());

        let report = disk.recover_wal().unwrap();
        assert_eq!(report.rolled_back, 1);
        assert!(!disk.crashed());
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(1), "uncommitted write never became visible");
    }

    #[test]
    fn torn_page_write_is_undone_by_recovery() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(1)).unwrap();

        disk.set_fault_injector(FaultInjector::new().fail_after_writes(0).torn_writes(true));
        disk.begin_txn().unwrap();
        assert!(disk.write_page(f, p, &page_of(2)).is_err());
        assert_eq!(disk.stats().torn_writes, 1);
        // The page now holds a mix of old and new bytes.
        disk.recover_wal().unwrap();
        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(1), "torn write rolled back from before-image");
    }

    #[test]
    fn torn_wal_tail_is_discarded() {
        let mut disk = Disk::new();
        disk.enable_wal();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(1)).unwrap();

        disk.set_fault_injector(FaultInjector::new().fail_after_writes(0).tear_wal_tail(100));
        disk.begin_txn().unwrap();
        assert!(disk.write_page(f, p, &page_of(2)).is_err());
        let report = disk.recover_wal().unwrap();
        assert!(report.torn_tail_discarded);
        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(1));
    }

    #[test]
    fn transient_reads_retry_and_are_counted() {
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.write_page(f, p, &page_of(5)).unwrap();
        disk.set_fault_injector(FaultInjector::new().transient_read_every(2));
        let mut out = page_of(0);
        for _ in 0..10 {
            disk.read_page(f, p, &mut out).unwrap();
            assert_eq!(out, page_of(5));
        }
        assert!(disk.stats().read_retries > 0);
        assert!(!disk.crashed(), "transient faults do not crash the disk");
    }

    #[test]
    fn seeded_injector_is_deterministic() {
        let a = FaultInjector::from_seed(1234);
        let b = FaultInjector::from_seed(1234);
        assert_eq!(a.fail_after_writes, b.fail_after_writes);
        assert_eq!(a.torn_writes, b.torn_writes);
        assert_eq!(a.wal_tear_bytes, b.wal_tear_bytes);
    }

    #[test]
    fn txn_misuse_is_reported() {
        let mut disk = Disk::new();
        assert!(
            matches!(disk.begin_txn(), Err(DbError::Txn(_))),
            "needs WAL"
        );
        disk.enable_wal();
        disk.begin_txn().unwrap();
        assert!(
            matches!(disk.begin_txn(), Err(DbError::Txn(_))),
            "no nesting"
        );
        disk.commit_txn().unwrap();
        assert!(matches!(disk.commit_txn(), Err(DbError::Txn(_))));
        assert!(matches!(disk.rollback_txn(), Err(DbError::Txn(_))));
    }

    #[test]
    fn wal_auto_checkpoints_when_threshold_exceeded() {
        let mut disk = Disk::new();
        disk.enable_wal();
        disk.set_checkpoint_on_commit(false);
        disk.set_wal_autocheckpoint_bytes(Some(PAGE_SIZE as u64));
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        // Each committed write logs two page images (> PAGE_SIZE), so the
        // commit-time backstop fires every round and the log never
        // accumulates more than one transaction.
        for fill in 1..=5u8 {
            disk.begin_txn().unwrap();
            disk.write_page(f, p, &page_of(fill)).unwrap();
            disk.commit_txn().unwrap();
            assert!(disk.wal().unwrap().is_empty(), "backstop checkpointed");
        }
        assert_eq!(disk.stats().wal_auto_checkpoints, 5);
        // Raising the threshold stops the backstop from firing.
        disk.set_wal_autocheckpoint_bytes(Some(64 << 20));
        disk.begin_txn().unwrap();
        disk.write_page(f, p, &page_of(9)).unwrap();
        disk.commit_txn().unwrap();
        assert!(!disk.wal().unwrap().is_empty(), "records retained for redo");
        assert_eq!(disk.stats().wal_auto_checkpoints, 5);
    }

    #[test]
    fn cancel_at_write_sets_flag_without_crashing() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut disk = Disk::new();
        let f = disk.create_file();
        let p = disk.allocate_page(f).unwrap();
        disk.set_fault_injector(FaultInjector::new().cancel_at_write(2, Arc::clone(&flag)));
        disk.write_page(f, p, &page_of(1)).unwrap();
        disk.write_page(f, p, &page_of(2)).unwrap();
        assert!(!flag.load(Ordering::Relaxed), "not yet at the write point");
        disk.write_page(f, p, &page_of(3)).unwrap();
        assert!(flag.load(Ordering::Relaxed), "third write set the flag");
        assert!(!disk.crashed(), "cancellation is not a crash");
        let mut out = page_of(0);
        disk.read_page(f, p, &mut out).unwrap();
        assert_eq!(out, page_of(3), "the cancelled-at write still landed");
    }
}
