//! Live table and column statistics for the cost-based planner.
//!
//! Each catalog [`Table`](crate::catalog::Table) carries a [`TableStats`]:
//! staleness bookkeeping that is kept fresh on every insert/delete/truncate,
//! plus per-column distinct-count and equi-width histogram estimates that
//! are refreshed by a cheap reservoir-sampling scan (`ANALYZE`, run
//! automatically by the engine when a table's modification counter crosses
//! its churn threshold). Row counts themselves are *not* duplicated here —
//! the heap's live `tuple_count` is exact and already maintained on every
//! mutation — so the planner always reads fresh cardinalities and the
//! sampled estimates only cover what a counter cannot: value distributions.
//!
//! Statistics live inside the catalog's `Arc<Table>` entries, so an MVCC
//! fork ([`Engine::fork`](crate::engine::Engine::fork)) snapshots them for
//! free: a session plans against the statistics of its own snapshot and
//! never observes a concurrent committer's refresh mid-plan.
//!
//! Sampling is deterministic (a fixed xorshift stream seeded per analyze),
//! so two engines replaying the same statement sequence build identical
//! statistics and therefore identical plans — a property the concurrent
//! commit-replay protocol relies on.

use crate::schema::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// Rows retained by the reservoir sampler during an analyze scan.
pub const RESERVOIR_CAP: usize = 256;
/// Buckets in an equi-width integer histogram.
pub const HIST_BUCKETS: usize = 16;
/// Minimum modifications before auto-analyze reconsiders a table; above
/// it, a table is re-analyzed once churn reaches a quarter of the rows it
/// was last analyzed at.
pub const ANALYZE_MIN_MODS: u64 = 256;
/// Tables below this row count are never auto-analyzed: with so few rows
/// every plan costs about the same, and skipping them keeps the statistics
/// version still while the LFP runtime churns its tiny delta tables —
/// an analyze there would invalidate cached plans every iteration.
/// An explicit [`Engine::analyze_table`](crate::engine::Engine::analyze_table)
/// still installs estimates at any size.
pub const ANALYZE_ROWS_FLOOR: u64 = 256;

/// Per-table statistics snapshot. `columns` is empty until the first
/// analyze; estimators fall back to flat defaults then.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Bumped on every analyze; cached plans record the versions they were
    /// costed from and re-plan when one moves. Truncate does *not* bump it:
    /// the LFP runtime recycles its temp tables with TRUNCATE every
    /// iteration and relies on cached plans surviving, and the row-drift
    /// check already catches a truncated table whose refill changes scale.
    pub version: u64,
    /// Catalog epoch current when the last analyze ran. A later epoch means
    /// DDL happened since; estimates may describe stale index coverage.
    pub analyzed_epoch: u64,
    /// Live row count at the last analyze.
    pub analyzed_rows: u64,
    /// Inserts + deletes since the last analyze (truncate resets it).
    pub mods_since_analyze: u64,
    /// Per-column estimates, parallel to the table schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Record `n` row modifications (inserts or deletes).
    pub fn note_mods(&mut self, n: u64) {
        self.mods_since_analyze = self.mods_since_analyze.saturating_add(n);
    }

    /// Truncate discards all content: column estimates are dropped (they
    /// describe rows that no longer exist) and the churn bookkeeping
    /// resets. The version stays put — truncate-and-refill is the LFP
    /// runtime's temp-table recycling idiom, and invalidating every cached
    /// plan each iteration would defeat the plan cache. A refill at a
    /// different scale is caught by the replan drift check; a big refill
    /// re-analyzes (and bumps the version) through the ordinary churn
    /// threshold.
    pub fn on_truncate(&mut self) {
        self.analyzed_rows = 0;
        self.mods_since_analyze = 0;
        self.columns.clear();
    }

    /// Whether an auto-analyze is due given the live row count. Tables
    /// under [`ANALYZE_ROWS_FLOOR`] are never due — defaults estimate them
    /// well enough and their cached plans stay valid.
    pub fn is_stale(&self, live_rows: u64) -> bool {
        if live_rows < ANALYZE_ROWS_FLOOR {
            return false;
        }
        if self.columns.is_empty() {
            return true;
        }
        self.mods_since_analyze >= ANALYZE_MIN_MODS.max(self.analyzed_rows / 4)
    }

    /// Install a fresh set of column estimates built from a sample.
    pub fn install(&mut self, columns: Vec<ColumnStats>, live_rows: u64, epoch: u64) {
        self.version += 1;
        self.analyzed_epoch = epoch;
        self.analyzed_rows = live_rows;
        self.mods_since_analyze = 0;
        self.columns = columns;
    }

    /// Column estimates, if the column has been analyzed.
    pub fn column(&self, col: usize) -> Option<&ColumnStats> {
        self.columns.get(col)
    }
}

/// Estimates for one column, built from a reservoir sample.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Estimated distinct values in the whole table (Duj1 estimator,
    /// clamped to `[observed, row_count]`).
    pub n_distinct: u64,
    /// Smallest and largest sampled values.
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Equi-width histogram over the sampled integer domain; `None` for
    /// non-integer columns or degenerate samples.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Fraction of rows expected to satisfy `col = <some literal>`.
    pub fn eq_selectivity(&self) -> f64 {
        1.0 / self.n_distinct.max(1) as f64
    }

    /// Fraction of rows expected inside `(lo, hi)`. Histogram-driven for
    /// integer columns; flat 1/3 per bounded side otherwise.
    pub fn range_selectivity(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> f64 {
        if let Some(h) = &self.histogram {
            let lo_i = match lo {
                Bound::Included(Value::Int(v)) | Bound::Excluded(Value::Int(v)) => Some(*v),
                _ => None,
            };
            let hi_i = match hi {
                Bound::Included(Value::Int(v)) | Bound::Excluded(Value::Int(v)) => Some(*v),
                _ => None,
            };
            if lo_i.is_some() || hi_i.is_some() {
                return h.range_fraction(lo_i, hi_i);
            }
        }
        let mut sel = 1.0;
        if !matches!(lo, Bound::Unbounded) {
            sel /= 3.0;
        }
        if !matches!(hi, Bound::Unbounded) {
            sel /= 3.0;
        }
        sel
    }
}

/// Equi-width histogram over a sampled integer domain. Counts are sample
/// counts; fractions are relative to the sample size.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub lo: i64,
    pub hi: i64,
    pub counts: Vec<u64>,
    pub sampled: u64,
}

impl Histogram {
    fn bucket_width(&self) -> f64 {
        ((self.hi - self.lo) as f64 + 1.0) / self.counts.len() as f64
    }

    /// Fraction of sampled rows with value in `[lo, hi]` (either bound may
    /// be open); linear interpolation inside partially covered buckets.
    pub fn range_fraction(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        if self.sampled == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(self.lo).max(self.lo);
        let hi = hi.unwrap_or(self.hi).min(self.hi);
        if lo > hi {
            return 0.0;
        }
        let w = self.bucket_width();
        let mut covered = 0.0f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let b_lo = self.lo as f64 + i as f64 * w;
            let b_hi = b_lo + w;
            let o_lo = (lo as f64).max(b_lo);
            let o_hi = ((hi as f64) + 1.0).min(b_hi);
            if o_hi > o_lo {
                covered += c as f64 * (o_hi - o_lo) / w;
            }
        }
        (covered / self.sampled as f64).clamp(0.0, 1.0)
    }
}

/// Deterministic reservoir sampler (Algorithm R with a fixed xorshift
/// stream). Deterministic sampling keeps replayed statement sequences
/// producing identical statistics and identical plans.
pub struct Reservoir {
    rows: Vec<Tuple>,
    seen: u64,
    cap: usize,
    rng: u64,
}

impl Reservoir {
    pub fn new(cap: usize, seed: u64) -> Reservoir {
        Reservoir {
            rows: Vec::with_capacity(cap.min(1024)),
            seen: 0,
            cap,
            // A zero state would freeze the xorshift stream.
            rng: seed | 1,
        }
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Offer one row to the reservoir.
    pub fn offer(&mut self, row: Tuple) {
        self.seen += 1;
        if self.rows.len() < self.cap {
            self.rows.push(row);
            return;
        }
        let j = self.next_rng() % self.seen;
        if (j as usize) < self.cap {
            let slot = j as usize;
            self.rows[slot] = row;
        }
    }

    pub fn seen(&self) -> u64 {
        self.seen
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Build per-column estimates from the sampled rows. `total_rows` is
    /// the live row count of the scanned table (the scale-up target for
    /// distinct estimation).
    pub fn column_stats(&self, arity: usize) -> Vec<ColumnStats> {
        let total = self.seen;
        (0..arity)
            .map(|c| build_column(self.rows.iter().map(|r| &r[c]), total))
            .collect()
    }
}

/// Build one column's estimates from sampled values. `total_rows` is the
/// table's live row count; the sample is `values` (size `n <= total_rows`).
fn build_column<'a>(values: impl Iterator<Item = &'a Value>, total_rows: u64) -> ColumnStats {
    let mut counts: HashMap<&Value, u64> = HashMap::new();
    let mut min: Option<&Value> = None;
    let mut max: Option<&Value> = None;
    let mut n = 0u64;
    let mut ints: Vec<i64> = Vec::new();
    for v in values {
        n += 1;
        *counts.entry(v).or_default() += 1;
        if min.map(|m| v < m).unwrap_or(true) {
            min = Some(v);
        }
        if max.map(|m| v > m).unwrap_or(true) {
            max = Some(v);
        }
        if let Value::Int(i) = v {
            ints.push(*i);
        }
    }
    let d = counts.len() as u64;
    let f1 = counts.values().filter(|&&c| c == 1).count() as u64;
    let n_distinct = estimate_distinct(d, f1, n, total_rows);

    // Histogram only when every sampled value was an integer and the
    // domain is non-degenerate.
    let histogram = if !ints.is_empty() && ints.len() as u64 == n {
        let lo = *ints.iter().min().expect("non-empty");
        let hi = *ints.iter().max().expect("non-empty");
        if hi > lo {
            let buckets = HIST_BUCKETS.min((hi - lo + 1) as usize);
            let mut h = Histogram {
                lo,
                hi,
                counts: vec![0; buckets],
                sampled: n,
            };
            let w = ((hi - lo) as f64 + 1.0) / buckets as f64;
            for i in &ints {
                let b = (((i - lo) as f64 / w) as usize).min(buckets - 1);
                h.counts[b] += 1;
            }
            Some(h)
        } else {
            None
        }
    } else {
        None
    };
    ColumnStats {
        n_distinct,
        min: min.cloned(),
        max: max.cloned(),
        histogram,
    }
}

/// Duj1 distinct-count estimator: `n*d / (n - f1 + f1*n/N)` where `d`
/// distinct values were observed in a sample of `n` rows out of `N`, `f1`
/// of them exactly once. Degenerates to `d` for a full sample (`n == N`)
/// and is clamped to `[d, N]`.
pub fn estimate_distinct(d: u64, f1: u64, n: u64, total_rows: u64) -> u64 {
    if n == 0 || total_rows == 0 {
        return 0;
    }
    if n >= total_rows {
        return d; // full scan: exact
    }
    let (df, f1f, nf, big_n) = (d as f64, f1 as f64, n as f64, total_rows as f64);
    let denom = nf - f1f + f1f * nf / big_n;
    let est = if denom > 0.0 { nf * df / denom } else { big_n };
    (est.round() as u64).clamp(d, total_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(vals: &[i64]) -> Vec<Tuple> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn reservoir_keeps_all_when_under_cap() {
        let mut r = Reservoir::new(10, 42);
        for row in int_rows(&[1, 2, 3]) {
            r.offer(row);
        }
        assert_eq!(r.seen(), 3);
        assert_eq!(r.rows().len(), 3);
    }

    #[test]
    fn reservoir_caps_and_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(4, 7);
            for row in int_rows(&(0..100).collect::<Vec<_>>()) {
                r.offer(row);
            }
            r.rows().to_vec()
        };
        let a = run();
        assert_eq!(a.len(), 4);
        assert_eq!(a, run(), "same seed, same sample");
    }

    #[test]
    fn full_sample_distinct_is_exact() {
        assert_eq!(estimate_distinct(5, 2, 10, 10), 5);
        assert_eq!(estimate_distinct(5, 2, 12, 10), 5);
    }

    #[test]
    fn unique_sample_scales_to_table() {
        // Every sampled value distinct and seen once: the column looks
        // unique, so the estimate approaches the table size.
        let est = estimate_distinct(100, 100, 100, 10_000);
        assert!(est > 5_000, "unique-looking column scales up, got {est}");
        assert!(est <= 10_000);
    }

    #[test]
    fn low_cardinality_sample_stays_low() {
        // 3 distinct values, none seen once: the sample saw everything.
        let est = estimate_distinct(3, 0, 100, 10_000);
        assert_eq!(est, 3);
    }

    #[test]
    fn distinct_estimate_is_bounded() {
        for n in [1u64, 10, 100] {
            for d in 1..=n {
                for f1 in 0..=d {
                    let est = estimate_distinct(d, f1, n, 1000);
                    assert!(est >= d && est <= 1000, "d={d} f1={f1} n={n} -> {est}");
                }
            }
        }
    }

    #[test]
    fn histogram_fractions_cover_domain() {
        let mut r = Reservoir::new(1024, 1);
        for row in int_rows(&(0..512).collect::<Vec<_>>()) {
            r.offer(row);
        }
        let cols = r.column_stats(1);
        let h = cols[0].histogram.as_ref().expect("int histogram");
        assert!((h.range_fraction(None, None) - 1.0).abs() < 1e-9);
        let half = h.range_fraction(Some(0), Some(255));
        assert!((half - 0.5).abs() < 0.05, "half the domain ~ 0.5: {half}");
        assert_eq!(h.range_fraction(Some(600), Some(700)), 0.0);
    }

    #[test]
    fn staleness_thresholds() {
        let mut s = TableStats::default();
        assert!(s.is_stale(1000), "never analyzed");
        assert!(!s.is_stale(0), "empty tables have nothing to sample");
        assert!(
            !s.is_stale(ANALYZE_ROWS_FLOOR - 1),
            "tiny tables are never auto-analyzed"
        );
        s.install(
            vec![ColumnStats {
                n_distinct: 5,
                min: None,
                max: None,
                histogram: None,
            }],
            2000,
            0,
        );
        assert!(!s.is_stale(2000));
        s.note_mods(400);
        assert!(!s.is_stale(2000), "400 < 2000/4");
        s.note_mods(200);
        assert!(s.is_stale(2000), "600 >= 2000/4 >= 256");
        s.on_truncate();
        assert!(s.columns.is_empty());
        assert!(s.is_stale(1000), "content gone, estimates dropped");
    }
}
