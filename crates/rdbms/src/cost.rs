//! The cost model: selectivity estimation from live statistics, cost-based
//! join ordering, and access-path / join-method choice.
//!
//! Cardinalities come from three sources, most exact first:
//!
//! 1. live heap `tuple_count` — exact, maintained on every mutation;
//! 2. live `distinct_keys()` of a single-column index on the column —
//!    exact, free (the index already maintains the directory);
//! 3. sampled [`TableStats`](crate::stats::TableStats) — distinct-count
//!    and histogram estimates refreshed by reservoir sampling.
//!
//! When none apply, estimators fall back to the flat constants the legacy
//! heuristic planner used (`1/20` per equality, `1/3` per range side), so
//! an unanalyzed table plans no worse than before.
//!
//! Cost units are abstract "tuple visits": a sequential scan pays 1 per
//! row, an index fetch pays [`C_FETCH`] (probe + heap fetch + decode), a
//! hash insert [`C_BUILD`]. The constants only need to rank alternatives,
//! not predict wall time.

use crate::catalog::{Catalog, Table};
use crate::plan::{ExecCond, PhysPlan, ProjExpr};
use crate::rewrite::{Binding, Resolved};
use crate::sql::ast::CmpOp;
use crate::value::Value;
use std::ops::Bound;

/// Which planner makes physical decisions. `Heuristic` reproduces the
/// legacy flat-heuristic planner (the ablation baseline for `experiments
/// optimizer`); `CostBased` is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    Heuristic,
    CostBased,
}

/// Cost of reading one row in a sequential scan.
pub(crate) const C_SCAN: f64 = 1.0;
/// Cost of one index probe (hash/ordered directory lookup).
pub(crate) const C_PROBE: f64 = 1.0;
/// Cost of fetching one row through an index (probe result → buffer-pool
/// latch → decode); random access is costed at twice a sequential read.
pub(crate) const C_FETCH: f64 = 2.0;
/// Cost of inserting one row into a hash-join build table (allocate +
/// hash + copy; costed slightly above an index fetch so a probe strategy
/// wins ties on small inputs, where the build's fixed overhead dominates).
pub(crate) const C_BUILD: f64 = 2.0;
/// Fallback equality selectivity when no distinct count is known —
/// matches the legacy heuristic's flat `base/20`.
pub(crate) const DEFAULT_EQ_SEL: f64 = 1.0 / 20.0;
/// Fallback selectivity per bounded range side.
pub(crate) const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Row-estimate floor used when compounding steps, so a zero-row estimate
/// cannot collapse every downstream cost to zero.
const EST_FLOOR: f64 = 0.05;

/// Distinct-value count for a column: exact from a single-column index
/// directory when one exists and is non-empty, else the sampled estimate.
pub(crate) fn col_distinct(t: &Table, col: usize) -> Option<u64> {
    for ix in &t.indexes {
        if ix.key_cols() == [col] {
            let d = ix.distinct_keys() as u64;
            if d > 0 {
                return Some(d);
            }
        }
    }
    t.stats.column(col).map(|c| c.n_distinct.max(1))
}

/// Selectivity of one table-local condition (positions are local to the
/// table's schema).
pub(crate) fn local_selectivity(t: &Table, c: &ExecCond) -> f64 {
    match c {
        ExecCond::ColCmpLit(col, CmpOp::Eq, _) | ExecCond::ColCmpParam(col, CmpOp::Eq, _) => {
            col_distinct(t, *col)
                .map(|d| 1.0 / d as f64)
                .unwrap_or(DEFAULT_EQ_SEL)
        }
        // `!=` rarely filters much; the legacy heuristic ignored it too.
        ExecCond::ColCmpLit(_, CmpOp::Ne, _) | ExecCond::ColCmpParam(_, CmpOp::Ne, _) => 1.0,
        ExecCond::ColCmpLit(col, op, v) => range_selectivity_one(t, *col, *op, Some(v)),
        ExecCond::ColCmpParam(col, op, _) => range_selectivity_one(t, *col, *op, None),
        ExecCond::InList(col, vs) => {
            let per = col_distinct(t, *col)
                .map(|d| 1.0 / d as f64)
                .unwrap_or(DEFAULT_EQ_SEL);
            (per * vs.len() as f64).min(1.0)
        }
        ExecCond::ColCmpCol(a, op, b) => match op {
            CmpOp::Eq => col_distinct(t, *a)
                .or_else(|| col_distinct(t, *b))
                .map(|d| 1.0 / d.max(1) as f64)
                .unwrap_or(0.1),
            CmpOp::Ne => 1.0,
            _ => DEFAULT_RANGE_SEL,
        },
    }
}

/// Selectivity of `col <op> v` for an inequality operator, histogram-driven
/// when the column has been analyzed (a `None` value is a `?` parameter —
/// unknown at plan time, flat fallback).
fn range_selectivity_one(t: &Table, col: usize, op: CmpOp, v: Option<&Value>) -> f64 {
    if let (Some(cs), Some(v)) = (t.stats.column(col), v) {
        let (lo, hi) = match op {
            CmpOp::Gt => (Bound::Excluded(v), Bound::Unbounded),
            CmpOp::Ge => (Bound::Included(v), Bound::Unbounded),
            CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(v)),
            CmpOp::Le => (Bound::Unbounded, Bound::Included(v)),
            _ => return 1.0,
        };
        return cs.range_selectivity(lo, hi).clamp(0.0005, 1.0);
    }
    DEFAULT_RANGE_SEL
}

/// Estimated row count of one relation after its pushed-down local
/// predicates.
pub(crate) fn est_table_rows(catalog: &Catalog, table: &str, conds: &[ExecCond]) -> f64 {
    let Ok(t) = catalog.table(table) else {
        return 0.0;
    };
    let mut e = t.heap.tuple_count() as f64;
    for c in conds {
        e *= local_selectivity(t, c);
    }
    e.max(0.0)
}

/// Selectivity of one equi-join predicate: `1 / max(d_left, d_right)`
/// over the joined columns' distinct counts, with the legacy flat `1/20`
/// when neither side is known.
pub(crate) fn join_selectivity(catalog: &Catalog, l: (&str, usize), r: (&str, usize)) -> f64 {
    let d = |(name, col): (&str, usize)| -> Option<u64> {
        catalog.table(name).ok().and_then(|t| col_distinct(t, col))
    };
    let denom = match (d(l), d(r)) {
        (Some(a), Some(b)) => a.max(b),
        (Some(a), None) | (None, Some(a)) => a,
        (None, None) => 20,
    };
    1.0 / denom.max(1) as f64
}

/// Cost-based join order. For 2–3 relations every permutation is costed
/// exhaustively; beyond that a greedy smallest-next-intermediate
/// extension keeps planning linear. Returns FROM-relation indices in
/// build order.
pub(crate) fn join_order(
    catalog: &Catalog,
    bindings: &[Binding],
    local_exec: &[Vec<ExecCond>],
    joins: &[(Resolved, Resolved)],
) -> Vec<usize> {
    let n = bindings.len();
    if n == 1 {
        return vec![0];
    }
    let base: Vec<f64> = (0..n)
        .map(|r| est_table_rows(catalog, &bindings[r].table, &local_exec[r]))
        .collect();
    if n <= 3 {
        let mut best: Option<(f64, Vec<usize>)> = None;
        for perm in permutations(n) {
            let cost = order_cost(catalog, bindings, joins, &base, &perm);
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, perm));
            }
        }
        return best.expect("n >= 2 has permutations").1;
    }
    // Greedy: seed with the smallest estimated relation, then repeatedly
    // add the connected relation producing the smallest next intermediate.
    let mut remaining: Vec<usize> = (0..n).collect();
    let seed = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| base[a].total_cmp(&base[b]))
        .expect("non-empty");
    remaining.retain(|&r| r != seed);
    let mut order = vec![seed];
    let mut cur = base[seed].max(EST_FLOOR);
    while !remaining.is_empty() {
        let mut pick: Option<(usize, f64)> = None; // (position in remaining, out rows)
        for (pos, &rel) in remaining.iter().enumerate() {
            let sel = step_selectivity(catalog, bindings, joins, &order, rel);
            let Some(sel) = sel else { continue }; // not connected
            let out = cur * base[rel].max(EST_FLOOR) * sel;
            if pick.map(|(_, o)| out < o).unwrap_or(true) {
                pick = Some((pos, out));
            }
        }
        // No connected relation left: fall back to the first remaining
        // (a cross join is unavoidable).
        let (pos, out) = pick.unwrap_or_else(|| {
            let rel = remaining[0];
            (0, cur * base[rel].max(EST_FLOOR))
        });
        order.push(remaining.remove(pos));
        cur = out.max(EST_FLOOR);
    }
    order
}

/// Combined selectivity of all join predicates connecting `rel` to the
/// already-placed relations; `None` when no predicate connects it.
fn step_selectivity(
    catalog: &Catalog,
    bindings: &[Binding],
    joins: &[(Resolved, Resolved)],
    placed: &[usize],
    rel: usize,
) -> Option<f64> {
    let mut sel = 1.0;
    let mut connected = false;
    for (a, b) in joins {
        let (this, other) = if a.rel == rel && placed.contains(&b.rel) {
            (a, b)
        } else if b.rel == rel && placed.contains(&a.rel) {
            (b, a)
        } else {
            continue;
        };
        connected = true;
        sel *= join_selectivity(
            catalog,
            (&bindings[other.rel].table, other.col),
            (&bindings[this.rel].table, this.col),
        );
    }
    connected.then_some(sel)
}

/// Total cost of building the join tree in `order`: each step pays for
/// reading the incoming relation, probing once per accumulated row (the
/// per-outer-row work every join method shares), and materializing the
/// step's output. The probe term is what breaks the two-relation tie —
/// reading both sides costs the same either way, but driving the join
/// from the smaller side probes fewer times.
fn order_cost(
    catalog: &Catalog,
    bindings: &[Binding],
    joins: &[(Resolved, Resolved)],
    base: &[f64],
    order: &[usize],
) -> f64 {
    let mut cur = base[order[0]].max(EST_FLOOR);
    let mut cost = cur;
    let mut placed = vec![order[0]];
    for &rel in &order[1..] {
        let rel_rows = base[rel].max(EST_FLOOR);
        let out = match step_selectivity(catalog, bindings, joins, &placed, rel) {
            Some(sel) => cur * rel_rows * sel,
            None => cur * rel_rows, // cross join: full product
        };
        cost += rel_rows * C_SCAN + cur * C_PROBE + out;
        cur = out.max(EST_FLOOR);
        placed.push(rel);
    }
    cost
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    match n {
        2 => vec![vec![0, 1], vec![1, 0]],
        3 => vec![
            vec![0, 1, 2],
            vec![0, 2, 1],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 0, 1],
            vec![2, 1, 0],
        ],
        _ => unreachable!("exhaustive enumeration is capped at 3 relations"),
    }
}

/// Whether probing `index_pos` on `t` per outer row beats materializing
/// the inner side into a hash table. `outer_rows` is the estimated size of
/// the already-built side, `inner_est` the inner side after its local
/// filters. This is the plan-time half of the adaptivity template; the
/// executor re-checks against live cardinalities at run time (see the
/// hash fallback in `exec.rs`), because a cached plan's estimates go
/// stale inside an LFP loop.
pub(crate) fn prefer_index_nl(
    t: &Table,
    index_pos: usize,
    outer_rows: f64,
    inner_est: f64,
) -> bool {
    let inner_rows = t.heap.tuple_count() as f64;
    let d = t.indexes[index_pos].distinct_keys().max(1) as f64;
    let matches = inner_rows / d;
    let nl = outer_rows * (C_PROBE + matches * C_FETCH);
    let hash = inner_rows * C_SCAN + inner_est.max(0.0) * C_BUILD + outer_rows * C_PROBE;
    nl <= hash
}

/// Whether an ordered-index range scan beats a sequential scan for the
/// given bounds: fetching `sel * N` rows through the index (random I/O,
/// [`C_FETCH`] each) must undercut scanning all `N` sequentially.
pub(crate) fn range_scan_pays(t: &Table, col: usize, lo: &Bound<Value>, hi: &Bound<Value>) -> f64 {
    let sel = if let Some(cs) = t.stats.column(col) {
        cs.range_selectivity(bound_ref(lo), bound_ref(hi))
            .clamp(0.0005, 1.0)
    } else {
        let mut s = 1.0;
        if !matches!(lo, Bound::Unbounded) {
            s *= DEFAULT_RANGE_SEL;
        }
        if !matches!(hi, Bound::Unbounded) {
            s *= DEFAULT_RANGE_SEL;
        }
        s
    };
    sel
}

fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Per-operator row estimates for a physical plan, in pre-order (the
/// order `PhysPlan::explain()` lists operators and the EXPLAIN ANALYZE
/// profiler records them). Works for plans from either planner mode, so
/// the heuristic baseline gets estimate annotations too.
pub fn estimate_plan(catalog: &Catalog, plan: &PhysPlan) -> Vec<u64> {
    let mut out = Vec::new();
    est_walk(catalog, plan, &mut out);
    out
}

/// Column provenance of one operator's output layout: `(table, local
/// column)` when the slot still traces to a base-table column.
type Origins = Vec<Option<(String, usize)>>;

fn table_origins(t: &Table) -> Origins {
    (0..t.schema.arity())
        .map(|c| Some((t.name.clone(), c)))
        .collect()
}

/// Selectivity of a condition over a combined layout, using each slot's
/// provenance to reach per-column statistics.
fn origin_selectivity(catalog: &Catalog, origins: &Origins, c: &ExecCond) -> f64 {
    let distinct = |pos: usize| -> Option<u64> {
        origins
            .get(pos)
            .and_then(|o| o.as_ref())
            .and_then(|(t, col)| catalog.table(t).ok().and_then(|t| col_distinct(t, *col)))
    };
    let table_of = |pos: usize| -> Option<&Table> {
        origins
            .get(pos)
            .and_then(|o| o.as_ref())
            .and_then(|(t, _)| catalog.table(t).ok())
    };
    match c {
        ExecCond::ColCmpLit(col, CmpOp::Eq, _) | ExecCond::ColCmpParam(col, CmpOp::Eq, _) => {
            distinct(*col)
                .map(|d| 1.0 / d as f64)
                .unwrap_or(DEFAULT_EQ_SEL)
        }
        ExecCond::ColCmpLit(_, CmpOp::Ne, _) | ExecCond::ColCmpParam(_, CmpOp::Ne, _) => 1.0,
        ExecCond::ColCmpLit(col, op, v) => {
            match (table_of(*col), origins.get(*col).and_then(|o| o.as_ref())) {
                (Some(t), Some((_, local))) => range_selectivity_one(t, *local, *op, Some(v)),
                _ => DEFAULT_RANGE_SEL,
            }
        }
        ExecCond::ColCmpParam(..) => DEFAULT_RANGE_SEL,
        ExecCond::InList(col, vs) => {
            let per = distinct(*col)
                .map(|d| 1.0 / d as f64)
                .unwrap_or(DEFAULT_EQ_SEL);
            (per * vs.len() as f64).min(1.0)
        }
        ExecCond::ColCmpCol(a, op, b) => match op {
            CmpOp::Eq => distinct(*a)
                .into_iter()
                .chain(distinct(*b))
                .max()
                .map(|d| 1.0 / d.max(1) as f64)
                .unwrap_or(0.1),
            CmpOp::Ne => 1.0,
            _ => DEFAULT_RANGE_SEL,
        },
    }
}

fn conds_selectivity(catalog: &Catalog, origins: &Origins, conds: &[ExecCond]) -> f64 {
    conds
        .iter()
        .map(|c| origin_selectivity(catalog, origins, c))
        .product()
}

struct EstOut {
    rows: f64,
    origins: Origins,
}

/// Walk the plan in pre-order, pushing each node's estimate into `out`
/// (slot reserved before children so indices match the profiler) and
/// returning the node's estimated rows plus output-column provenance.
fn est_walk(catalog: &Catalog, plan: &PhysPlan, out: &mut Vec<u64>) -> EstOut {
    let idx = out.len();
    out.push(0);
    let est = match plan {
        PhysPlan::SeqScan { table, filters } => match catalog.table(table) {
            Ok(t) => EstOut {
                rows: t.heap.tuple_count() as f64
                    * conds_selectivity(catalog, &table_origins(t), filters),
                origins: table_origins(t),
            },
            Err(_) => EstOut {
                rows: 0.0,
                origins: Vec::new(),
            },
        },
        PhysPlan::IndexLookup {
            table,
            index_pos,
            key,
            residual,
        } => match catalog.table(table) {
            Ok(t) => {
                let origins = table_origins(t);
                let n = t.heap.tuple_count() as f64;
                let key_sel: f64 = t.indexes[*index_pos]
                    .key_cols()
                    .iter()
                    .take(key.len())
                    .map(|&kc| {
                        col_distinct(t, kc)
                            .map(|d| 1.0 / d as f64)
                            .unwrap_or(DEFAULT_EQ_SEL)
                    })
                    .product();
                EstOut {
                    rows: n * key_sel * conds_selectivity(catalog, &origins, residual),
                    origins,
                }
            }
            Err(_) => EstOut {
                rows: 0.0,
                origins: Vec::new(),
            },
        },
        PhysPlan::IndexRange {
            table, residual, ..
        } => match catalog.table(table) {
            Ok(t) => {
                let origins = table_origins(t);
                // The residual repeats the range bounds, so estimating from
                // the residual alone avoids double-counting them.
                EstOut {
                    rows: t.heap.tuple_count() as f64
                        * conds_selectivity(catalog, &origins, residual),
                    origins,
                }
            }
            Err(_) => EstOut {
                rows: 0.0,
                origins: Vec::new(),
            },
        },
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let l = est_walk(catalog, left, out);
            let r = est_walk(catalog, right, out);
            let mut sel = 1.0;
            for (&lk, &rk) in left_keys.iter().zip(right_keys) {
                sel *= pair_selectivity(catalog, &l.origins, lk, &r.origins, rk);
            }
            let mut origins = l.origins;
            origins.extend(r.origins);
            let rows = l.rows * r.rows * sel * conds_selectivity(catalog, &origins, residual);
            EstOut { rows, origins }
        }
        PhysPlan::IndexNlJoin {
            left,
            table,
            index_pos,
            left_keys: _,
            inner_filters,
            residual,
        } => {
            let l = est_walk(catalog, left, out);
            match catalog.table(table) {
                Ok(t) => {
                    let inner_origins = table_origins(t);
                    let n = t.heap.tuple_count() as f64;
                    let d = t.indexes[*index_pos].distinct_keys().max(1) as f64;
                    let matches = n / d;
                    let inner_sel = conds_selectivity(catalog, &inner_origins, inner_filters);
                    let mut origins = l.origins;
                    origins.extend(inner_origins);
                    let rows = l.rows
                        * matches
                        * inner_sel
                        * conds_selectivity(catalog, &origins, residual);
                    EstOut { rows, origins }
                }
                Err(_) => EstOut {
                    rows: 0.0,
                    origins: l.origins,
                },
            }
        }
        PhysPlan::CrossJoin {
            left,
            right,
            residual,
        } => {
            let l = est_walk(catalog, left, out);
            let r = est_walk(catalog, right, out);
            let mut origins = l.origins;
            origins.extend(r.origins);
            let rows = l.rows * r.rows * conds_selectivity(catalog, &origins, residual);
            EstOut { rows, origins }
        }
        PhysPlan::AntiJoin { child, .. } => {
            let c = est_walk(catalog, child, out);
            // Coarse: without correlation-hit statistics, assume half the
            // outer rows survive.
            EstOut {
                rows: c.rows * 0.5,
                origins: c.origins,
            }
        }
        PhysPlan::Filter { child, conds } => {
            let c = est_walk(catalog, child, out);
            let rows = c.rows * conds_selectivity(catalog, &c.origins, conds);
            EstOut {
                rows,
                origins: c.origins,
            }
        }
        PhysPlan::Project { child, exprs } => {
            let c = est_walk(catalog, child, out);
            let origins = exprs
                .iter()
                .map(|e| match e {
                    ProjExpr::Col(i) => c.origins.get(*i).cloned().flatten(),
                    ProjExpr::Lit(_) => None,
                })
                .collect();
            EstOut {
                rows: c.rows,
                origins,
            }
        }
        PhysPlan::Distinct { child } | PhysPlan::Sort { child, .. } => {
            // Distinct's shrink is unknowable without multi-column stats;
            // pass the child's estimate through as an upper bound.
            est_walk(catalog, child, out)
        }
        PhysPlan::CountStar { child } => {
            est_walk(catalog, child, out);
            EstOut {
                rows: 1.0,
                origins: vec![None],
            }
        }
        PhysPlan::GroupCount { child, keys } => {
            let c = est_walk(catalog, child, out);
            let distincts: Option<f64> = keys
                .iter()
                .map(|&k| {
                    c.origins
                        .get(k)
                        .and_then(|o| o.as_ref())
                        .and_then(|(t, col)| {
                            catalog.table(t).ok().and_then(|t| col_distinct(t, *col))
                        })
                        .map(|d| d as f64)
                })
                .product();
            let rows = match distincts {
                Some(d) => c.rows.min(d),
                None => c.rows,
            };
            let mut origins: Origins = keys
                .iter()
                .map(|&k| c.origins.get(k).cloned().flatten())
                .collect();
            origins.push(None); // the count column
            EstOut { rows, origins }
        }
        PhysPlan::UnionAll { left, right } | PhysPlan::UnionDistinct { left, right } => {
            let l = est_walk(catalog, left, out);
            let r = est_walk(catalog, right, out);
            EstOut {
                rows: l.rows + r.rows,
                origins: l.origins,
            }
        }
        PhysPlan::Except { left, right } => {
            let l = est_walk(catalog, left, out);
            est_walk(catalog, right, out);
            EstOut {
                rows: l.rows,
                origins: l.origins,
            }
        }
    };
    out[idx] = est.rows.round().max(0.0) as u64;
    est
}

/// Join selectivity between two layout slots, via their provenance.
fn pair_selectivity(
    catalog: &Catalog,
    l_origins: &Origins,
    lk: usize,
    r_origins: &Origins,
    rk: usize,
) -> f64 {
    let d = |origins: &Origins, pos: usize| -> Option<u64> {
        origins
            .get(pos)
            .and_then(|o| o.as_ref())
            .and_then(|(t, col)| catalog.table(t).ok().and_then(|t| col_distinct(t, *col)))
    };
    let denom = match (d(l_origins, lk), d(r_origins, rk)) {
        (Some(a), Some(b)) => a.max(b),
        (Some(a), None) | (None, Some(a)) => a,
        (None, None) => 20,
    };
    1.0 / denom.max(1) as f64
}
