//! A small shared metrics layer: named counters, gauges, and summary
//! histograms with hand-rolled JSON export (the workspace deliberately has
//! no serialization dependency).
//!
//! The registry backs the three observability surfaces this testbed
//! reports on: the per-operator EXPLAIN ANALYZE profile, the engine-level
//! buffer/disk/WAL counters ([`crate::Engine::metrics`]), and the
//! Knowledge Manager's per-iteration LFP traces — which the bench crate
//! serializes into `BENCH_trace.json`.
//!
//! The parallel execution layer reports through the same registry:
//! `exec.threads` (the engine's configured worker count),
//! `exec.tasks_spawned` (partitioned worker tasks launched so far), and
//! `exec.partition_skew` (worst observed percentage by which the slowest
//! partition exceeded the mean partition time; 0 when splits were even or
//! nothing ran in parallel).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A summary histogram: count, sum, min, max. Enough to re-derive means
/// and totals offline without committing to a bucket layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// A flat, name-ordered collection of metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `delta` to a counter, creating it at zero first if needed.
    /// A name previously used for another metric kind is overwritten.
    pub fn counter(&mut self, name: &str, delta: u64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Counter(c)) => *c += delta,
            _ => {
                self.metrics
                    .insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Set a gauge to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Record one observation into a histogram, creating it if needed.
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.metrics.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            _ => {
                let mut h = Histogram::default();
                h.observe(value);
                self.metrics.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Current value of a counter (0 when absent or of another kind).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A recorded histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// All metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Export as a JSON object grouped by metric kind:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "\"{}\":{}", json_escape(name), c);
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "\"{}\":{}", json_escape(name), json_num(*g));
                }
                Metric::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let _ = write!(
                        histograms,
                        "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
                        json_escape(name),
                        h.count,
                        json_num(h.sum),
                        json_num(h.min),
                        json_num(h.max),
                        json_num(h.mean())
                    );
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = Registry::new();
        r.counter("pages_read", 3);
        r.counter("pages_read", 2);
        assert_eq!(r.counter_value("pages_read"), 5);
        let json = r.to_json();
        assert!(json.contains("\"pages_read\":5"), "{json}");
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = Registry::new();
        r.gauge("hit_rate", 0.25);
        r.gauge("hit_rate", 0.5);
        assert_eq!(r.gauge_value("hit_rate"), Some(0.5));
        assert!(r.to_json().contains("\"hit_rate\":0.5"));
    }

    #[test]
    fn histograms_track_count_sum_min_max() {
        let mut r = Registry::new();
        r.observe("iter_ms", 4.0);
        r.observe("iter_ms", 2.0);
        r.observe("iter_ms", 6.0);
        let h = r.histogram("iter_ms").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
        assert_eq!(h.mean(), 4.0);
        let json = r.to_json();
        assert!(json.contains("\"iter_ms\":{\"count\":3"), "{json}");
    }

    #[test]
    fn json_is_grouped_and_escaped() {
        let mut r = Registry::new();
        r.counter("a\"b", 1);
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\\\""));
        assert!(json.ends_with("\"histograms\":{}}"));
    }

    #[test]
    fn nonfinite_observations_are_ignored() {
        let mut r = Registry::new();
        r.observe("x", f64::NAN);
        r.observe("x", 1.0);
        assert_eq!(r.histogram("x").unwrap().count(), 1);
    }
}
