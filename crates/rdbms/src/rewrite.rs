//! Logical rewrite rules, run over a bound query block before physical
//! planning.
//!
//! The planner used to fold predicate placement into its join-tree loop;
//! this module makes each rewrite an explicit, named rule so the set is
//! auditable and extensible (the shape SNIPPETS' planner guidelines call
//! `optimize()` rules):
//!
//! * [`rule_predicate_pushdown`] — classify every WHERE conjunct to the
//!   lowest operator that can evaluate it: single-relation conjuncts
//!   become per-relation local filters (pushed into scans / index
//!   residuals), two-relation equalities become join keys, and the rest
//!   stay cross-relation residuals attached once both sides are joined.
//! * [`rule_projection_pruning`] — compute, per relation, the set of
//!   columns actually consumed above its scan (projection, GROUP BY, join
//!   keys, cross residuals). The physical planner narrows join inputs to
//!   those columns, shrinking intermediate tuples.
//!
//! The output is a [`QueryBlock`]: bindings plus classified conditions
//! plus pruning sets, consumed by `plan::plan_select`. A
//! [`RewriteReport`] counts rule applications; the engine surfaces the
//! totals as `plan.rewrite_*` metrics.

use crate::catalog::{Catalog, DbError};
use crate::schema::Schema;
use crate::sql::ast::*;
use crate::value::Value;
use std::collections::BTreeSet;

/// One relation appearing in the FROM list, after binding.
pub(crate) struct Binding {
    /// Canonical table name (as stored in the catalog entry).
    pub table: String,
    /// Name by which columns qualify this occurrence.
    pub binding: String,
    pub schema: Schema,
    pub tuple_count: u64,
}

/// A column resolved to (relation index in FROM order, local column index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Resolved {
    pub rel: usize,
    pub col: usize,
}

/// A condition with relation-local column positions.
#[derive(Debug, Clone)]
pub(crate) enum LocalCond {
    ColCmpCol(usize, CmpOp, usize),
    ColCmpLit(usize, CmpOp, Value),
    ColCmpParam(usize, CmpOp, usize),
    InList(usize, Vec<Value>),
}

/// A fully resolved cross-relation condition.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedCond {
    ColCmpCol(Resolved, CmpOp, Resolved),
}

/// A classified WHERE conjunct.
enum Classified {
    /// Touches exactly one relation.
    Local(usize, LocalCond),
    /// `a.x = b.y` with a != b.
    EquiJoin(Resolved, Resolved),
    /// Anything else touching two relations.
    CrossResidual(ResolvedCond),
}

/// Counts of rewrite-rule applications for one planned block (summed over
/// sub-blocks for compound queries). Surfaced as `plan.rewrite_*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// WHERE conjuncts pushed below the join tree (local filters).
    pub predicates_pushed: u64,
    /// Columns dropped from join inputs by projection pruning.
    pub projections_pruned: u64,
}

impl RewriteReport {
    pub fn absorb(&mut self, other: RewriteReport) {
        self.predicates_pushed += other.predicates_pushed;
        self.projections_pruned += other.projections_pruned;
    }
}

/// The logical form of one SELECT block after binding and rewriting.
pub(crate) struct QueryBlock<'a> {
    pub bindings: Vec<Binding>,
    /// Per-relation pushed-down predicates (parallel to `bindings`).
    pub local: Vec<Vec<LocalCond>>,
    /// Equi-join predicates between distinct relations.
    pub joins: Vec<(Resolved, Resolved)>,
    /// Cross-relation residual predicates.
    pub cross: Vec<ResolvedCond>,
    /// `NOT EXISTS` conjuncts, planned as anti-joins after the positive
    /// join tree is complete.
    pub anti: Vec<(&'a TableRef, &'a [Condition])>,
    /// Per relation: `Some(cols)` when only those columns (sorted, local
    /// positions) are consumed above the relation's scan; `None` keeps the
    /// full tuple.
    pub needed: Vec<Option<Vec<usize>>>,
    pub report: RewriteReport,
}

/// Bind a SELECT block against the catalog and run the rewrite rules.
pub(crate) fn build_block<'a>(
    catalog: &Catalog,
    block: &'a SelectBlock,
) -> Result<QueryBlock<'a>, DbError> {
    let mut bindings = Vec::with_capacity(block.from.len());
    for tref in &block.from {
        let table = catalog.table(&tref.table)?;
        let binding = tref.binding().to_ascii_lowercase();
        if bindings.iter().any(|b: &Binding| b.binding == binding) {
            return Err(DbError::Plan(format!(
                "duplicate relation binding: {binding}"
            )));
        }
        bindings.push(Binding {
            table: table.name.clone(),
            binding,
            schema: table.schema.clone(),
            tuple_count: table.heap.tuple_count(),
        });
    }

    let mut report = RewriteReport::default();
    let (local, joins, cross, anti) =
        rule_predicate_pushdown(&bindings, &block.where_clause, &mut report)?;
    let needed = rule_projection_pruning(&bindings, block, &joins, &cross, &anti, &mut report);

    Ok(QueryBlock {
        bindings,
        local,
        joins,
        cross,
        anti,
        needed,
        report,
    })
}

type PushdownOut<'a> = (
    Vec<Vec<LocalCond>>,
    Vec<(Resolved, Resolved)>,
    Vec<ResolvedCond>,
    Vec<(&'a TableRef, &'a [Condition])>,
);

/// Rule: place every WHERE conjunct at the lowest operator that can
/// evaluate it. Single-relation conjuncts are *pushed down* to their
/// relation (they run inside the scan or as index residuals, before any
/// join multiplies rows); two-relation equalities become join keys;
/// everything else survives as a cross-relation residual. `NOT EXISTS`
/// conjuncts are split out for anti-join planning.
fn rule_predicate_pushdown<'a>(
    bindings: &[Binding],
    where_clause: &'a [Condition],
    report: &mut RewriteReport,
) -> Result<PushdownOut<'a>, DbError> {
    let mut local: Vec<Vec<LocalCond>> = vec![Vec::new(); bindings.len()];
    let mut joins: Vec<(Resolved, Resolved)> = Vec::new();
    let mut cross: Vec<ResolvedCond> = Vec::new();
    let mut anti: Vec<(&TableRef, &[Condition])> = Vec::new();
    for cond in where_clause {
        if let Condition::NotExists { table, conds } = cond {
            anti.push((table, conds.as_slice()));
            continue;
        }
        match classify(bindings, cond)? {
            Classified::Local(rel, c) => {
                report.predicates_pushed += 1;
                local[rel].push(c);
            }
            Classified::EquiJoin(a, b) => joins.push((a, b)),
            Classified::CrossResidual(c) => cross.push(c),
        }
    }
    Ok((local, joins, cross, anti))
}

/// Rule: per relation, the columns consumed above its scan — by the
/// projection list, GROUP BY, join keys, or cross residuals. Local
/// filters run inside the scan itself, so their columns do *not* pin a
/// column into the join pipeline. Returns `None` (keep all) for a
/// relation whose every column is consumed, for single-relation blocks
/// (nothing to narrow between operators), for `SELECT *`, and whenever a
/// `NOT EXISTS` conjunct is present (its correlation keys resolve during
/// anti-join planning, after this rule runs — keeping full tuples is the
/// conservative choice).
fn rule_projection_pruning(
    bindings: &[Binding],
    block: &SelectBlock,
    joins: &[(Resolved, Resolved)],
    cross: &[ResolvedCond],
    anti: &[(&TableRef, &[Condition])],
    report: &mut RewriteReport,
) -> Vec<Option<Vec<usize>>> {
    let n = bindings.len();
    let keep_all = vec![None; n];
    if n < 2 || !anti.is_empty() {
        return keep_all;
    }
    let mut used: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for item in &block.projections {
        match item {
            SelectItem::Star => return keep_all,
            SelectItem::CountStar { .. } => {}
            SelectItem::Expr { expr, .. } => match expr {
                Scalar::Col(c) => match resolve_col(bindings, c) {
                    Ok(r) => {
                        used[r.rel].insert(r.col);
                    }
                    // Leave unresolvable references for the planner's own
                    // resolution pass to report.
                    Err(_) => return keep_all,
                },
                Scalar::Lit(_) | Scalar::Param(_) => {}
            },
        }
    }
    for g in &block.group_by {
        match resolve_col(bindings, g) {
            Ok(r) => {
                used[r.rel].insert(r.col);
            }
            Err(_) => return keep_all,
        }
    }
    // ORDER BY resolves against output columns, which the projection pass
    // above already pinned.
    for (a, b) in joins {
        used[a.rel].insert(a.col);
        used[b.rel].insert(b.col);
    }
    for ResolvedCond::ColCmpCol(a, _, b) in cross {
        used[a.rel].insert(a.col);
        used[b.rel].insert(b.col);
    }
    bindings
        .iter()
        .enumerate()
        .map(|(rel, b)| {
            let arity = b.schema.arity();
            if used[rel].len() >= arity {
                None
            } else {
                report.projections_pruned += (arity - used[rel].len()) as u64;
                Some(used[rel].iter().copied().collect())
            }
        })
        .collect()
}

fn classify(bindings: &[Binding], cond: &Condition) -> Result<Classified, DbError> {
    match cond {
        Condition::NotExists { .. } => {
            unreachable!("NOT EXISTS conjuncts are handled before classification")
        }
        Condition::InList { col, values } => {
            let r = resolve_col(bindings, col)?;
            let expected = bindings[r.rel].schema.column(r.col).ty;
            for v in values {
                if v.col_type() != expected {
                    return Err(DbError::TypeMismatch(format!(
                        "IN list value {v} does not match column type {expected}"
                    )));
                }
            }
            Ok(Classified::Local(
                r.rel,
                LocalCond::InList(r.col, values.clone()),
            ))
        }
        Condition::Cmp { left, op, right } => match (left, right) {
            (Scalar::Lit(a), Scalar::Lit(b)) => Err(DbError::Plan(format!(
                "constant comparison not supported: {a} vs {b}"
            ))),
            (Scalar::Col(c), Scalar::Lit(v)) => {
                let r = resolve_col(bindings, c)?;
                check_lit_type(bindings, r, v)?;
                Ok(Classified::Local(
                    r.rel,
                    LocalCond::ColCmpLit(r.col, *op, v.clone()),
                ))
            }
            (Scalar::Lit(v), Scalar::Col(c)) => {
                let r = resolve_col(bindings, c)?;
                check_lit_type(bindings, r, v)?;
                Ok(Classified::Local(
                    r.rel,
                    LocalCond::ColCmpLit(r.col, flip(*op), v.clone()),
                ))
            }
            (Scalar::Col(a), Scalar::Col(b)) => {
                let ra = resolve_col(bindings, a)?;
                let rb = resolve_col(bindings, b)?;
                if ra.rel == rb.rel {
                    Ok(Classified::Local(
                        ra.rel,
                        LocalCond::ColCmpCol(ra.col, *op, rb.col),
                    ))
                } else if *op == CmpOp::Eq {
                    Ok(Classified::EquiJoin(ra, rb))
                } else {
                    Ok(Classified::CrossResidual(ResolvedCond::ColCmpCol(
                        ra, *op, rb,
                    )))
                }
            }
            (Scalar::Col(c), Scalar::Param(p)) => {
                let r = resolve_col(bindings, c)?;
                Ok(Classified::Local(
                    r.rel,
                    LocalCond::ColCmpParam(r.col, *op, *p),
                ))
            }
            (Scalar::Param(p), Scalar::Col(c)) => {
                let r = resolve_col(bindings, c)?;
                Ok(Classified::Local(
                    r.rel,
                    LocalCond::ColCmpParam(r.col, flip(*op), *p),
                ))
            }
            (Scalar::Param(_), Scalar::Param(_) | Scalar::Lit(_))
            | (Scalar::Lit(_), Scalar::Param(_)) => Err(DbError::Plan(
                "a parameter must be compared against a column".into(),
            )),
        },
    }
}

pub(crate) fn check_lit_type(bindings: &[Binding], r: Resolved, v: &Value) -> Result<(), DbError> {
    let expected = bindings[r.rel].schema.column(r.col).ty;
    if v.col_type() != expected {
        return Err(DbError::TypeMismatch(format!(
            "literal {v} does not match column type {expected}"
        )));
    }
    Ok(())
}

pub(crate) fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

pub(crate) fn resolve_col(bindings: &[Binding], c: &ColRef) -> Result<Resolved, DbError> {
    match &c.table {
        Some(qual) => {
            let qual = qual.to_ascii_lowercase();
            let rel = bindings
                .iter()
                .position(|b| b.binding == qual)
                .ok_or_else(|| DbError::Plan(format!("unknown relation: {qual}")))?;
            let col = bindings[rel]
                .schema
                .index_of(&c.column)
                .ok_or_else(|| DbError::NoSuchColumn(format!("{qual}.{}", c.column)))?;
            Ok(Resolved { rel, col })
        }
        None => {
            let mut found = None;
            for (rel, b) in bindings.iter().enumerate() {
                if let Some(col) = b.schema.index_of(&c.column) {
                    if found.is_some() {
                        return Err(DbError::Plan(format!("ambiguous column: {}", c.column)));
                    }
                    found = Some(Resolved { rel, col });
                }
            }
            found.ok_or_else(|| DbError::NoSuchColumn(c.column.clone()))
        }
    }
}
