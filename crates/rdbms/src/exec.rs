//! Physical-plan executor.
//!
//! A materializing executor: each operator produces its full result before
//! the parent consumes it. This mirrors how the testbed's generated
//! embedded-SQL programs behaved (every LFP iteration materialized
//! temporaries), and keeps join state simple. Logical work is counted in
//! [`ExecStats`] so experiments can report machine-independent costs.

use crate::buffer::BufferPool;
use crate::catalog::{Catalog, DbError};
use crate::disk::Disk;
use crate::governor::{QueryGovernor, GOVERNOR_CHECK_INTERVAL};
use crate::heap::RecordId;
use crate::plan::{ExecCond, KeyExpr, PhysPlan, ProjExpr};
use crate::schema::{deserialize_tuple, serialize_tuple, Tuple};
use crate::spill::{decode_seq_tuple, encode_seq_tuple, partition_of, SpillFile, SpillWriter};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// When memory-bounded operators may divert state to spill files
/// instead of failing the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillMode {
    /// Never spill: a memory-budget breach surfaces as the typed
    /// `DbError::Budget` error, exactly the PR-5 behaviour.
    Disabled,
    /// Spill when an operator's materialized state would exceed the
    /// governor's remaining memory budget (the default). Without a
    /// memory budget this is indistinguishable from `Disabled`.
    #[default]
    Enabled,
    /// Always take the spill path, budget or not — lets test suites and
    /// CI exercise the spill code on small data (`RDBMS_SPILL=force`).
    Forced,
}

/// Logical execution counters, cumulative across statements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples read by sequential scans.
    pub tuples_scanned: u64,
    /// Tuples fetched through an index (lookups and index joins).
    pub tuples_fetched: u64,
    /// Index probes issued.
    pub index_probes: u64,
    /// Tuples emitted by join operators.
    pub join_output: u64,
    /// Index nested-loop joins that flipped to a hash build at runtime
    /// because the outer side outgrew the planner's estimate.
    pub join_adaptive_flips: u64,
    /// Rows returned to the caller.
    pub rows_output: u64,
    /// Prepared-statement executions that reused a cached physical plan.
    pub plan_cache_hits: u64,
    /// Prepared-statement executions that had to (re)plan, including the
    /// first execution after `prepare` and any catalog-epoch invalidation.
    pub plan_cache_misses: u64,
    /// Cached plans discarded because a base table's live cardinality
    /// drifted past the replan threshold since plan time (counted
    /// separately from hits and misses).
    pub plan_replans: u64,
    /// Wall time spent lexing/parsing SQL, in nanoseconds.
    pub parse_ns: u64,
    /// Wall time spent planning queries, in nanoseconds.
    pub plan_ns: u64,
    /// Wall time spent executing physical plans, in nanoseconds.
    pub exec_ns: u64,
    /// Worker tasks spawned by partitioned parallel operators.
    pub tasks_spawned: u64,
    /// Worst partition imbalance observed, as the percentage by which the
    /// slowest worker of a partitioned operator exceeded the mean worker
    /// time (0 = perfectly even, or no parallel run yet).
    pub partition_skew: u64,
    /// Spill partitions created by memory-bounded operators (Grace
    /// hash-join and hash-dedup partitions; one per partition per side
    /// pair, not per file).
    pub spill_partitions: u64,
    /// Bytes written to spill files (record payloads, before page
    /// padding), across joins, sorts, and dedup operators.
    pub spill_bytes: u64,
    /// Sorted runs produced by the external merge-sort.
    pub sort_runs: u64,
    /// Row batches moved between operators (scan pages gathered, probe
    /// chunks processed): the unit at which the governor is polled.
    pub batches: u64,
}

/// Per-operator runtime counters collected while executing under
/// `EXPLAIN ANALYZE`. Nodes are stored in pre-order; `depth` reconstructs
/// the tree shape (a node's children are the entries that follow it with
/// `depth + 1`, up to the next entry at its own depth or less).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// Operator description, identical to the EXPLAIN line (unindented).
    pub label: String,
    pub depth: usize,
    /// Rows this operator emitted to its parent.
    pub rows_out: u64,
    /// Inclusive wall time, children included.
    pub elapsed_ns: u64,
    /// Heap tuples scanned by this operator itself (children excluded).
    pub tuples_scanned: u64,
    /// Tuples fetched through an index by this operator itself.
    pub tuples_fetched: u64,
    /// Index probes issued by this operator itself.
    pub index_probes: u64,
    /// Rows on the build side of a hash join.
    pub build_rows: u64,
    /// Candidate rows dropped by this operator's residual / pushed-down
    /// filters (a scanned-but-filtered tuple, a joined row failing a
    /// residual condition, a filtered inner tuple of an index join).
    pub residual_dropped: u64,
    /// Spill partitions this operator created (0 = ran in memory).
    pub spill_partitions: u64,
    /// Bytes this operator wrote to spill files.
    pub spill_bytes: u64,
    /// Sorted runs this operator spilled (external sort only).
    pub sort_runs: u64,
    /// Row batches this operator processed.
    pub batches: u64,
    /// The planner's cardinality estimate for this operator, attached by
    /// EXPLAIN ANALYZE after execution (`None` outside that path).
    pub est_rows: Option<u64>,
}

/// Collects the [`OpProfile`] tree during execution. Installed in
/// [`ExecCtx::profiler`] only by EXPLAIN ANALYZE, so the ordinary
/// execution path pays a single `Option` test per plan node.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Vec<OpProfile>,
    stack: Vec<usize>,
}

impl Profiler {
    fn enter(&mut self, plan: &PhysPlan) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(OpProfile {
            label: plan.label(),
            depth: self.stack.len(),
            ..OpProfile::default()
        });
        self.stack.push(idx);
        idx
    }

    fn exit(&mut self, idx: usize, elapsed_ns: u64, rows_out: u64) {
        self.stack.pop();
        let node = &mut self.nodes[idx];
        node.elapsed_ns = elapsed_ns;
        node.rows_out = rows_out;
    }

    fn current(&mut self) -> Option<&mut OpProfile> {
        self.stack.last().map(|&i| &mut self.nodes[i])
    }

    /// The collected pre-order profile.
    pub fn into_nodes(self) -> Vec<OpProfile> {
        self.nodes
    }
}

/// Everything an operator needs at runtime.
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub disk: &'a mut Disk,
    pub pool: &'a mut BufferPool,
    pub stats: &'a mut ExecStats,
    /// Bind values for `?` placeholders; empty for unparameterized plans.
    /// Arity and ordinals are validated by the engine before execution.
    pub params: &'a [Value],
    /// When set, `execute_plan` records an [`OpProfile`] per plan node.
    pub profiler: Option<Profiler>,
    /// Worker count for partitioned operators; 1 runs everything inline on
    /// the calling thread (the default, byte-identical to the historical
    /// single-threaded executor).
    pub parallelism: usize,
    /// The statement's execution governor. Checked at operator entry and
    /// every [`GOVERNOR_CHECK_INTERVAL`] rows inside scan/join loops,
    /// including partitioned worker closures. `None` means ungoverned
    /// (internal maintenance statements).
    pub governor: Option<&'a QueryGovernor>,
    /// Whether memory-bounded operators may spill to disk instead of
    /// failing on a memory-budget breach.
    pub spill: SpillMode,
    /// Rows per batch exchanged at operator boundaries: sequential scans
    /// gather this many records per buffer-pool visit, probe/filter
    /// loops poll the governor once per batch. Answers are identical at
    /// any setting; only the check cadence and latch traffic change.
    pub batch_rows: usize,
}

impl ExecCtx<'_> {
    /// Count a sequential-scan tuple read, attributing it to the operator
    /// currently executing when profiling is on.
    #[inline]
    fn count_scanned(&mut self) {
        self.stats.tuples_scanned += 1;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.tuples_scanned += 1;
            }
        }
    }

    /// Count an index-fetched tuple.
    #[inline]
    fn count_fetched(&mut self) {
        self.stats.tuples_fetched += 1;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.tuples_fetched += 1;
            }
        }
    }

    /// Count an index probe.
    #[inline]
    fn count_probe(&mut self) {
        self.stats.index_probes += 1;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.index_probes += 1;
            }
        }
    }

    /// Record a candidate row dropped by a residual or pushed-down filter.
    #[inline]
    fn prof_drop(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.residual_dropped += 1;
            }
        }
    }

    /// Record the hash-join build-side size.
    #[inline]
    fn prof_build(&mut self, rows: u64) {
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.build_rows = rows;
            }
        }
    }

    /// Count one processed row batch.
    #[inline]
    fn count_batch(&mut self) {
        self.stats.batches += 1;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.batches += 1;
            }
        }
    }

    /// Record a spill fan-out: `parts` partitions written, `bytes` of
    /// record payload spilled (both sides / all runs included).
    fn count_spill(&mut self, parts: u64, bytes: u64) {
        self.stats.spill_partitions += parts;
        self.stats.spill_bytes += bytes;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.spill_partitions += parts;
                op.spill_bytes += bytes;
            }
        }
    }

    /// Record external-sort runs spilled.
    fn count_sort_runs(&mut self, runs: u64) {
        self.stats.sort_runs += runs;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.sort_runs += runs;
            }
        }
    }

    /// Fold one worker's locally accumulated counters into the global
    /// stats and the profiled operator, so totals are identical to a
    /// serial run no matter how the rows were partitioned.
    fn absorb(&mut self, c: WorkerCounts) {
        self.stats.tuples_scanned += c.scanned;
        self.stats.index_probes += c.probes;
        self.stats.join_output += c.join_output;
        self.stats.batches += c.batches;
        if let Some(p) = self.profiler.as_mut() {
            if let Some(op) = p.current() {
                op.tuples_scanned += c.scanned;
                op.index_probes += c.probes;
                op.residual_dropped += c.dropped;
                op.batches += c.batches;
            }
        }
    }
}

/// Execution counters a partitioned worker accumulates locally; merged
/// into [`ExecStats`] (and the profiler) by [`ExecCtx::absorb`] after the
/// workers join, so parallel runs report the same totals as serial ones.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerCounts {
    scanned: u64,
    probes: u64,
    join_output: u64,
    dropped: u64,
    batches: u64,
}

/// Minimum rows each worker must receive before a partitioned operator
/// spawns threads: below this, thread start-up dominates the row work.
const PAR_MIN_ROWS_PER_WORKER: usize = 256;

/// Outer cardinality below which a full-key anti-join always probes the
/// index: at this scale a probe and a hash-set lookup cost the same, and
/// skipping the inner scan is a guaranteed win.
const ANTI_JOIN_PROBE_FLOOR: u64 = 256;

/// Periodic cooperative governor check for row loops: probes the
/// governor once every [`GOVERNOR_CHECK_INTERVAL`] iterations so the
/// atomic loads stay off the per-row fast path. Safe to call from
/// partitioned worker threads (the governor is all atomics).
#[inline]
fn gov_tick(gov: Option<&QueryGovernor>, i: usize) -> Result<(), DbError> {
    if let Some(g) = gov {
        if i.is_multiple_of(GOVERNOR_CHECK_INTERVAL) {
            g.check()?;
        }
    }
    Ok(())
}

/// Approximate heap footprint of one materialized tuple, for charging
/// hash-join build sides against the memory budget. Deliberately a
/// cheap over-estimate (enum discriminant + payload), not an exact
/// allocator measurement.
fn tuple_bytes(t: &Tuple) -> u64 {
    t.iter()
        .map(|v| match v {
            Value::Int(_) => 16u64,
            Value::Str(s) => 24 + s.len() as u64,
        })
        .sum::<u64>()
        + 24
}

/// Default rows per operator batch. Matches [`GOVERNOR_CHECK_INTERVAL`]
/// so moving governor polls from "every 256 rows inside the loop" to
/// "once per batch" keeps the breach-detection latency unchanged.
pub const DEFAULT_BATCH_ROWS: usize = GOVERNOR_CHECK_INTERVAL;

/// Floor on the spill partition / sort-run byte target: below this the
/// per-file fixed costs (page padding, directory churn) dominate and
/// more partitions only slow things down.
const SPILL_MIN_PARTITION_BYTES: u64 = 64 * 1024;

/// Partition / run byte target when no memory budget constrains the
/// operator (i.e. `SpillMode::Forced` on an ungoverned statement).
const SPILL_DEFAULT_PARTITION_BYTES: u64 = 256 * 1024;

/// Cap on Grace partitions / sort runs, so the merge fan-in and the
/// number of live spill files stay bounded no matter the input size
/// (oversized inputs get proportionally larger partitions instead).
const SPILL_MAX_PARTITIONS: u64 = 64;

/// Should an operator whose materialized state needs `bytes` take the
/// spill path? `Enabled` spills only when the governor's remaining
/// memory budget cannot hold the state in full; `Forced` always does.
fn spill_engaged(ctx: &ExecCtx<'_>, bytes: u64) -> bool {
    match ctx.spill {
        SpillMode::Disabled => false,
        SpillMode::Forced => true,
        SpillMode::Enabled => ctx
            .governor
            .and_then(QueryGovernor::bytes_remaining)
            .is_some_and(|remaining| bytes > remaining),
    }
}

/// Byte target for one spill partition: what still fits in the memory
/// budget (each partition is re-loaded whole during its probe/merge
/// phase), floored so partitions stay page-efficient.
fn spill_partition_bytes(ctx: &ExecCtx<'_>) -> u64 {
    ctx.governor
        .and_then(QueryGovernor::bytes_remaining)
        .map_or(SPILL_DEFAULT_PARTITION_BYTES, |remaining| {
            remaining.max(SPILL_MIN_PARTITION_BYTES)
        })
}

/// Partition fan-out for `bytes` of state: enough partitions that each
/// fits the budget, at least 2 (a spill that cannot subdivide is not a
/// spill), at most [`SPILL_MAX_PARTITIONS`].
fn spill_partition_count(ctx: &ExecCtx<'_>, bytes: u64) -> usize {
    bytes
        .div_ceil(spill_partition_bytes(ctx).max(1))
        .clamp(2, SPILL_MAX_PARTITIONS) as usize
}

/// Hash-scatter `rows` into `parts` spill streams by FNV of the key
/// columns (`None` = the whole tuple, for dedup operators). When
/// `tag_seq` each record carries its input ordinal so downstream
/// merges can restore exact input order. On error the partially
/// written streams are dropped before returning.
fn scatter_partitions(
    disk: &mut Disk,
    gov: Option<&QueryGovernor>,
    rows: &[Tuple],
    parts: usize,
    key_cols: Option<&[usize]>,
    tag_seq: bool,
) -> Result<Vec<SpillFile>, DbError> {
    let mut writers: Vec<SpillWriter> = (0..parts).map(|_| SpillWriter::new(disk)).collect();
    let mut failed = None;
    for (seq, row) in rows.iter().enumerate() {
        let step = gov_tick(gov, seq).and_then(|()| {
            let part = match key_cols {
                Some(cols) => {
                    let key: Vec<Value> = cols.iter().map(|&k| row[k].clone()).collect();
                    partition_of(&key, parts)
                }
                None => partition_of(row, parts),
            };
            let payload = if tag_seq {
                encode_seq_tuple(seq as u64, row)
            } else {
                serialize_tuple(row)
            };
            writers[part].push(disk, &payload)
        });
        if let Err(e) = step {
            failed = Some(e);
            break;
        }
    }
    if let Some(e) = failed {
        for w in writers {
            w.abandon(disk);
        }
        return Err(e);
    }
    let mut files = Vec::with_capacity(parts);
    let mut writers = writers.into_iter();
    for w in writers.by_ref() {
        match w.finish(disk) {
            Ok(f) => files.push(f),
            Err(e) => {
                for f in files {
                    f.destroy(disk);
                }
                for w in writers {
                    w.abandon(disk);
                }
                return Err(e);
            }
        }
    }
    Ok(files)
}

/// Read one spilled (untagged) tuple.
fn read_spilled_tuple(
    r: &mut crate::spill::SpillReader,
    disk: &mut Disk,
) -> Result<Option<Tuple>, DbError> {
    match r.next(disk)? {
        None => Ok(None),
        Some(payload) => deserialize_tuple(&payload)
            .map(Some)
            .ok_or_else(|| DbError::Corruption("spilled tuple does not deserialize".into())),
    }
}

/// Compare two rows on the sort key columns.
fn cmp_keys(a: &Tuple, b: &Tuple, keys: &[usize]) -> std::cmp::Ordering {
    for &k in keys {
        let ord = a[k].cmp(&b[k]);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Contiguous chunk ranges splitting `n` items across `workers` chunks.
/// Each chunk is sized by the rows *remaining* when it is cut
/// (`ceil(remaining / remaining_workers)`), so the division stays
/// balanced to within one row even when `n` sits just above the
/// `PAR_MIN_ROWS_PER_WORKER` floor, and a sub-floor tail can never be
/// stranded on its own worker: if cutting the chunk would leave fewer
/// than the floor per remaining worker, the tail folds into the current
/// chunk instead of spawning under-fed threads.
fn chunk_ranges(n: usize, workers: usize) -> Vec<std::ops::Range<usize>> {
    let workers = workers.min(n).max(1);
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        if start >= n {
            break;
        }
        let remaining = n - start;
        let remaining_workers = workers - w;
        let mut len = remaining.div_ceil(remaining_workers);
        // Fold the tail: splitting further would leave the remaining
        // workers below the spawn floor, so the imbalance of one big
        // chunk beats the start-up cost of starving threads. (The
        // callers' worker selection already guarantees the floor, so
        // this only fires for direct calls with oversized counts.)
        if remaining_workers > 1
            && remaining - len < (remaining_workers - 1) * PAR_MIN_ROWS_PER_WORKER
        {
            len = remaining;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Run `f` over `items`, partitioned into contiguous chunks across the
/// context's worker budget. Outputs are concatenated in chunk order, so
/// the result is byte-identical to one serial pass (`f` over the whole
/// slice) — order-preserving partitioning is what keeps every answer
/// independent of the parallelism setting. Falls back to the inline serial
/// pass when parallelism is 1 or the input is too small to pay for thread
/// start-up. Worker counters and the partition-skew gauge are merged after
/// the scoped threads join; on error the first failing chunk (in chunk
/// order) wins, again matching the serial pass.
fn par_run<T, F>(ctx: &mut ExecCtx<'_>, items: &[T], f: F) -> Result<Vec<Tuple>, DbError>
where
    T: Sync,
    F: Fn(&[T], &mut WorkerCounts) -> Result<Vec<Tuple>, DbError> + Sync,
{
    let workers = ctx
        .parallelism
        .min(items.len() / PAR_MIN_ROWS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        let mut counts = WorkerCounts::default();
        let out = f(items, &mut counts);
        ctx.absorb(counts);
        return out;
    }
    let ranges = chunk_ranges(items.len(), workers);
    let results = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let chunk = &items[r.clone()];
                s.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let mut counts = WorkerCounts::default();
                    let out = f(chunk, &mut counts);
                    (out, counts, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        join_workers(handles)
    });
    finish_par(ctx, results)
}

/// [`par_run`] over an owned vector: the items are moved into per-worker
/// chunk vectors (one pointer move per element, no deep clone), so
/// filter-style operators can pass surviving rows through untouched.
fn par_run_owned<T, F>(ctx: &mut ExecCtx<'_>, items: Vec<T>, f: F) -> Result<Vec<Tuple>, DbError>
where
    T: Send,
    F: Fn(Vec<T>, &mut WorkerCounts) -> Result<Vec<Tuple>, DbError> + Sync,
{
    let workers = ctx
        .parallelism
        .min(items.len() / PAR_MIN_ROWS_PER_WORKER)
        .max(1);
    if workers <= 1 {
        let mut counts = WorkerCounts::default();
        let out = f(items, &mut counts);
        ctx.absorb(counts);
        return out;
    }
    let ranges = chunk_ranges(items.len(), workers);
    let mut it = items.into_iter();
    let chunks: Vec<Vec<T>> = ranges
        .iter()
        .map(|r| it.by_ref().take(r.len()).collect())
        .collect();
    let results = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    let t0 = std::time::Instant::now();
                    let mut counts = WorkerCounts::default();
                    let out = f(chunk, &mut counts);
                    (out, counts, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        join_workers(handles)
    });
    finish_par(ctx, results)
}

type WorkerResult = (Result<Vec<Tuple>, DbError>, WorkerCounts, u64);

fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, WorkerResult>>,
) -> Vec<WorkerResult> {
    handles
        .into_iter()
        .map(|h| h.join().expect("partitioned worker panicked"))
        .collect()
}

/// Worker runs shorter than this are dominated by thread start-up and
/// scheduler jitter, not row work; their timings say nothing about the
/// partitioning, so they are excluded from the skew gauge. This is what
/// produced the ~200% `exec.partition_skew` readings near the
/// rows-per-worker floor: microsecond-scale workers where a single
/// descheduling tick triples one worker's wall time.
const SKEW_MIN_MEAN_NS: u64 = 100_000;

/// Merge worker counters and the partition-skew gauge, then concatenate
/// chunk outputs in chunk order (first error, in chunk order, wins).
fn finish_par(ctx: &mut ExecCtx<'_>, results: Vec<WorkerResult>) -> Result<Vec<Tuple>, DbError> {
    ctx.stats.tasks_spawned += results.len() as u64;
    let mean_ns = (results.iter().map(|(_, _, ns)| ns).sum::<u64>() / results.len() as u64).max(1);
    let max_ns = results.iter().map(|(_, _, ns)| *ns).max().unwrap_or(0);
    if mean_ns >= SKEW_MIN_MEAN_NS {
        let skew = (max_ns * 100 / mean_ns).saturating_sub(100);
        ctx.stats.partition_skew = ctx.stats.partition_skew.max(skew);
    }
    let mut err = None;
    let mut out = Vec::new();
    for (chunk_out, counts, _) in results {
        ctx.absorb(counts);
        match chunk_out {
            Ok(rows) if err.is_none() => out.extend(rows),
            Ok(_) => {}
            Err(e) => err = err.or(Some(e)),
        }
    }
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Evaluate one resolved condition against a flat row.
fn eval_cond(cond: &ExecCond, row: &[Value], params: &[Value]) -> bool {
    match cond {
        ExecCond::ColCmpCol(a, op, b) => op.eval(row[*a].cmp(&row[*b])),
        ExecCond::ColCmpLit(a, op, v) => op.eval(row[*a].cmp(v)),
        ExecCond::ColCmpParam(a, op, p) => op.eval(row[*a].cmp(&params[*p])),
        ExecCond::InList(a, vs) => vs.contains(&row[*a]),
    }
}

pub(crate) fn eval_all(conds: &[ExecCond], row: &[Value], params: &[Value]) -> bool {
    conds.iter().all(|c| eval_cond(c, row, params))
}

/// Materialize an index-lookup key, substituting bind values for params.
fn resolve_key(key: &[KeyExpr], params: &[Value]) -> Vec<Value> {
    key.iter()
        .map(|k| match k {
            KeyExpr::Lit(v) => v.clone(),
            KeyExpr::Param(p) => params[*p].clone(),
        })
        .collect()
}

/// Decode a stored payload, surfacing damage as [`DbError::Corruption`]
/// instead of panicking so callers can attempt recovery.
fn decode_tuple(table: &str, rid: RecordId, payload: &[u8]) -> Result<Tuple, DbError> {
    deserialize_tuple(payload).ok_or_else(|| {
        DbError::Corruption(format!(
            "table {table}: stored tuple at {rid:?} does not deserialize"
        ))
    })
}

/// Fetch the record an index entry points at; a dangling entry means the
/// index and heap have diverged, which is corruption, not a logic bug.
fn fetch_indexed(
    ctx: &mut ExecCtx<'_>,
    table: &crate::catalog::Table,
    rid: RecordId,
) -> Result<Vec<u8>, DbError> {
    table.heap.get(ctx.disk, ctx.pool, rid)?.ok_or_else(|| {
        DbError::Corruption(format!(
            "table {}: index entry points at missing record {rid:?}",
            table.name
        ))
    })
}

/// Execute `plan` to completion. When a [`Profiler`] is installed in the
/// context, each node's wall time, output cardinality, and operator-local
/// counters are recorded on the way.
pub fn execute_plan(plan: &PhysPlan, ctx: &mut ExecCtx<'_>) -> Result<Vec<Tuple>, DbError> {
    if ctx.profiler.is_none() {
        let rows = run_plan(plan, ctx)?;
        // Every operator's materialized output counts against the row
        // budget: "rows processed", not "rows returned", so a blow-up in
        // an intermediate join trips the governor even if the final
        // projection is tiny.
        if let Some(g) = ctx.governor {
            g.charge_rows(rows.len() as u64)?;
        }
        return Ok(rows);
    }
    let idx = ctx.profiler.as_mut().expect("profiler present").enter(plan);
    let start = std::time::Instant::now();
    let result = run_plan(plan, ctx);
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let rows_out = result.as_ref().map(|r| r.len() as u64).unwrap_or(0);
    ctx.profiler
        .as_mut()
        .expect("profiler present")
        .exit(idx, elapsed_ns, rows_out);
    let rows = result?;
    if let Some(g) = ctx.governor {
        g.charge_rows(rows.len() as u64)?;
    }
    Ok(rows)
}

fn run_plan(plan: &PhysPlan, ctx: &mut ExecCtx<'_>) -> Result<Vec<Tuple>, DbError> {
    if let Some(g) = ctx.governor {
        g.check()?;
    }
    match plan {
        PhysPlan::SeqScan { table, filters } => {
            let t = ctx.catalog.table(table)?;
            let mut scan = t.heap.scan();
            let batch = ctx.batch_rows.max(1);
            if ctx.parallelism > 1 {
                // Page I/O stays on this thread (the buffer pool is a
                // single-writer resource); workers split the CPU-bound
                // decode + filter work over the gathered payloads.
                let mut raw: Vec<(RecordId, Vec<u8>)> = Vec::new();
                loop {
                    if let Some(g) = ctx.governor {
                        g.check()?;
                    }
                    let chunk = scan.next_batch(ctx.disk, ctx.pool, batch)?;
                    if chunk.is_empty() {
                        break;
                    }
                    raw.extend(chunk);
                }
                let params = ctx.params;
                let gov = ctx.governor;
                return par_run(ctx, &raw, |chunk, c| {
                    let mut out = Vec::new();
                    for sub in chunk.chunks(batch) {
                        if let Some(g) = gov {
                            g.check()?;
                        }
                        c.batches += 1;
                        for (rid, payload) in sub {
                            c.scanned += 1;
                            let tuple = decode_tuple(table, *rid, payload)?;
                            if eval_all(filters, &tuple, params) {
                                out.push(tuple);
                            } else {
                                c.dropped += 1;
                            }
                        }
                    }
                    Ok(out)
                });
            }
            let mut out = Vec::new();
            loop {
                if let Some(g) = ctx.governor {
                    g.check()?;
                }
                let chunk = scan.next_batch(ctx.disk, ctx.pool, batch)?;
                if chunk.is_empty() {
                    break;
                }
                ctx.count_batch();
                for (rid, payload) in chunk {
                    ctx.count_scanned();
                    let tuple = decode_tuple(table, rid, &payload)?;
                    if eval_all(filters, &tuple, ctx.params) {
                        out.push(tuple);
                    } else {
                        ctx.prof_drop();
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::IndexLookup {
            table,
            index_pos,
            key,
            residual,
        } => {
            let t = ctx.catalog.table(table)?;
            let index = &t.indexes[*index_pos];
            let key = resolve_key(key, ctx.params);
            ctx.count_probe();
            let rids: Vec<_> = index.lookup(&key).to_vec();
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                let payload = fetch_indexed(ctx, t, rid)?;
                ctx.count_fetched();
                let tuple = decode_tuple(table, rid, &payload)?;
                if eval_all(residual, &tuple, ctx.params) {
                    out.push(tuple);
                } else {
                    ctx.prof_drop();
                }
            }
            Ok(out)
        }
        PhysPlan::IndexRange {
            table,
            index_pos,
            lo,
            hi,
            residual,
        } => {
            let t = ctx.catalog.table(table)?;
            let index = &t.indexes[*index_pos];
            let to_key = |b: &std::ops::Bound<Value>| match b {
                std::ops::Bound::Included(v) => std::ops::Bound::Included(vec![v.clone()]),
                std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(vec![v.clone()]),
                std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
            };
            let rids = index
                .range(to_key(lo), to_key(hi))
                .expect("planner only ranges over ordered indexes");
            ctx.count_probe();
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                let payload = fetch_indexed(ctx, t, rid)?;
                ctx.count_fetched();
                let tuple = decode_tuple(table, rid, &payload)?;
                if eval_all(residual, &tuple, ctx.params) {
                    out.push(tuple);
                } else {
                    ctx.prof_drop();
                }
            }
            Ok(out)
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let left_rows = execute_plan(left, ctx)?;
            let right_rows = execute_plan(right, ctx)?;
            // Build the hash table on the smaller side; output rows are
            // always left-columns-then-right-columns regardless.
            let build_left = left_rows.len() <= right_rows.len();
            let (build, build_keys, probe, probe_keys) = if build_left {
                (left_rows, left_keys, right_rows, right_keys)
            } else {
                (right_rows, right_keys, left_rows, left_keys)
            };
            let build_bytes: u64 = build.iter().map(tuple_bytes).sum();
            if spill_engaged(ctx, build_bytes) && !build.is_empty() {
                return grace_hash_join(
                    ctx,
                    build,
                    build_keys,
                    probe,
                    probe_keys,
                    build_left,
                    residual,
                    build_bytes,
                );
            }
            // The build side is the join's materialized state: charge it
            // against the memory budget before committing to building it.
            // With spilling off (or no budget set) a breach is fatal here,
            // exactly as before spilling existed.
            if let Some(g) = ctx.governor {
                g.charge_bytes(build_bytes)?;
            }
            let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
            for (bi, row) in build.iter().enumerate() {
                gov_tick(ctx.governor, bi)?;
                let key: Vec<Value> = build_keys.iter().map(|&i| row[i].clone()).collect();
                table.entry(key).or_default().push(row);
            }
            ctx.prof_build(build.len() as u64);
            // The hash table is built once and shared read-only; probe rows
            // are partitioned into contiguous chunks whose outputs are
            // concatenated in probe order, so the joined rows come out in
            // exactly the serial order at any parallelism setting.
            let params = ctx.params;
            let gov = ctx.governor;
            let batch = ctx.batch_rows.max(1);
            par_run(ctx, &probe, |chunk, c| {
                let mut out = Vec::new();
                for sub in chunk.chunks(batch) {
                    if let Some(g) = gov {
                        g.check()?;
                    }
                    c.batches += 1;
                    for prow in sub {
                        let key: Vec<Value> = probe_keys.iter().map(|&i| prow[i].clone()).collect();
                        if let Some(matches) = table.get(&key) {
                            for brow in matches {
                                let (lrow, rrow): (&Tuple, &Tuple) = if build_left {
                                    (brow, prow)
                                } else {
                                    (prow, brow)
                                };
                                let mut joined = Vec::with_capacity(lrow.len() + rrow.len());
                                joined.extend_from_slice(lrow);
                                joined.extend_from_slice(rrow);
                                if eval_all(residual, &joined, params) {
                                    c.join_output += 1;
                                    out.push(joined);
                                } else {
                                    c.dropped += 1;
                                }
                            }
                        }
                    }
                }
                Ok(out)
            })
        }
        PhysPlan::IndexNlJoin {
            left,
            table,
            index_pos,
            left_keys,
            inner_filters,
            residual,
        } => {
            let left_rows = execute_plan(left, ctx)?;
            let t = ctx.catalog.table(table)?;
            let index = &t.indexes[*index_pos];
            let batch = ctx.batch_rows.max(1);
            // The planner chose probing from its estimates at plan time;
            // whether it still pays is re-checked here against live
            // cardinalities. When the outer side has grown to the size of
            // the inner relation — a cached plan iterations stale inside
            // an LFP loop — one inner scan into a hash table beats
            // hammering the index once per outer row. Output order is the
            // probing order either way.
            let probe_pays =
                (left_rows.len() as u64) < t.heap.tuple_count().max(ANTI_JOIN_PROBE_FLOOR);
            if !probe_pays {
                ctx.stats.join_adaptive_flips += 1;
                let key_cols = index.key_cols().to_vec();
                let mut inner_table: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                let mut scan = t.heap.scan();
                loop {
                    if let Some(g) = ctx.governor {
                        g.check()?;
                    }
                    let chunk = scan.next_batch(ctx.disk, ctx.pool, batch)?;
                    if chunk.is_empty() {
                        break;
                    }
                    ctx.count_batch();
                    for (rid, payload) in chunk {
                        ctx.count_scanned();
                        let tuple = decode_tuple(table, rid, &payload)?;
                        if !eval_all(inner_filters, &tuple, ctx.params) {
                            ctx.prof_drop();
                            continue;
                        }
                        let key: Vec<Value> = key_cols.iter().map(|&i| tuple[i].clone()).collect();
                        inner_table.entry(key).or_default().push(tuple);
                    }
                }
                ctx.prof_build(inner_table.values().map(|v| v.len() as u64).sum());
                let mut out = Vec::new();
                for (li, lrow) in left_rows.iter().enumerate() {
                    gov_tick(ctx.governor, li)?;
                    let key: Vec<Value> = left_keys.iter().map(|&i| lrow[i].clone()).collect();
                    if let Some(matches) = inner_table.get(&key) {
                        for inner in matches {
                            let mut joined = Vec::with_capacity(lrow.len() + inner.len());
                            joined.extend_from_slice(lrow);
                            joined.extend_from_slice(inner);
                            if eval_all(residual, &joined, ctx.params) {
                                ctx.stats.join_output += 1;
                                out.push(joined);
                            } else {
                                ctx.prof_drop();
                            }
                        }
                    }
                }
                return Ok(out);
            }
            let mut out = Vec::new();
            for (li, lrow) in left_rows.iter().enumerate() {
                if li % batch == 0 {
                    if let Some(g) = ctx.governor {
                        g.check()?;
                    }
                    ctx.count_batch();
                }
                let key: Vec<Value> = left_keys.iter().map(|&i| lrow[i].clone()).collect();
                ctx.count_probe();
                let rids: Vec<_> = index.lookup(&key).to_vec();
                for rid in rids {
                    let payload = fetch_indexed(ctx, t, rid)?;
                    ctx.count_fetched();
                    let inner = decode_tuple(table, rid, &payload)?;
                    if !eval_all(inner_filters, &inner, ctx.params) {
                        ctx.prof_drop();
                        continue;
                    }
                    let mut joined = Vec::with_capacity(lrow.len() + inner.len());
                    joined.extend_from_slice(lrow);
                    joined.extend(inner);
                    if eval_all(residual, &joined, ctx.params) {
                        ctx.stats.join_output += 1;
                        out.push(joined);
                    } else {
                        ctx.prof_drop();
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::AntiJoin {
            child,
            table,
            inner_filters,
            outer_keys,
            inner_keys,
            index_pos,
        } => {
            let rows = execute_plan(child, ctx)?;
            let t = ctx.catalog.table(table)?;
            // The planner records an index as a *capability*; whether
            // probing actually pays is decided here against live
            // cardinalities (a cached plan's estimates can be iterations
            // stale inside an LFP loop). Probing issues one lookup per
            // outer row, so it wins when the outer side is small relative
            // to the inner relation; when the probing side has grown to
            // the size of the accumulated relation itself — every naive
            // LFP termination check — one inner scan into a fresh hash
            // set is cheaper than hammering the persistent index.
            let probe_pays = (rows.len() as u64) < t.heap.tuple_count().max(ANTI_JOIN_PROBE_FLOOR);
            if let (Some(pos), true) = (*index_pos, probe_pays) {
                // The correlation keys are exactly the index key: a row of
                // the inner table matches iff the probe hits, so no scan
                // and no tuple fetch are needed. Probes are pure reads of
                // the in-memory directory, so outer rows partition across
                // workers; order is preserved by chunk concatenation.
                let index = &t.indexes[pos];
                let gov = ctx.governor;
                return par_run_owned(ctx, rows, |chunk, c| {
                    let mut out = Vec::new();
                    for (ri, row) in chunk.into_iter().enumerate() {
                        gov_tick(gov, ri)?;
                        let key: Vec<Value> = outer_keys.iter().map(|&i| row[i].clone()).collect();
                        c.probes += 1;
                        if index.lookup(&key).is_empty() {
                            out.push(row);
                        }
                    }
                    Ok(out)
                });
            }
            // Materialize the (filtered) inner side once. When the planner
            // found a full-key index but probing lost the cost race above,
            // the (reordered) key pairs still correlate the two sides, and
            // `inner_filters` is empty — the scan fallback is unchanged.
            let mut scan = t.heap.scan();
            let batch = ctx.batch_rows.max(1);
            let mut keys: HashSet<Vec<Value>> = HashSet::new();
            let mut inner_nonempty = false;
            loop {
                if let Some(g) = ctx.governor {
                    g.check()?;
                }
                let chunk = scan.next_batch(ctx.disk, ctx.pool, batch)?;
                if chunk.is_empty() {
                    break;
                }
                ctx.count_batch();
                for (rid, payload) in chunk {
                    ctx.count_scanned();
                    let tuple = decode_tuple(table, rid, &payload)?;
                    if !eval_all(inner_filters, &tuple, ctx.params) {
                        continue;
                    }
                    inner_nonempty = true;
                    if !inner_keys.is_empty() {
                        keys.insert(inner_keys.iter().map(|&i| tuple[i].clone()).collect());
                    }
                }
            }
            if outer_keys.is_empty() {
                // Uncorrelated NOT EXISTS: all-or-nothing.
                return Ok(if inner_nonempty { Vec::new() } else { rows });
            }
            // Membership tests against the frozen key set are pure reads;
            // partition the outer rows like the probing path.
            let gov = ctx.governor;
            par_run_owned(ctx, rows, |chunk, _c| {
                let mut out = Vec::new();
                for (ri, row) in chunk.into_iter().enumerate() {
                    gov_tick(gov, ri)?;
                    let key: Vec<Value> = outer_keys.iter().map(|&i| row[i].clone()).collect();
                    if !keys.contains(&key) {
                        out.push(row);
                    }
                }
                Ok(out)
            })
        }
        PhysPlan::CrossJoin {
            left,
            right,
            residual,
        } => {
            let left_rows = execute_plan(left, ctx)?;
            let right_rows = execute_plan(right, ctx)?;
            let mut out = Vec::new();
            let mut steps = 0usize;
            for lrow in &left_rows {
                for rrow in &right_rows {
                    gov_tick(ctx.governor, steps)?;
                    steps += 1;
                    let mut joined = Vec::with_capacity(lrow.len() + rrow.len());
                    joined.extend_from_slice(lrow);
                    joined.extend_from_slice(rrow);
                    if eval_all(residual, &joined, ctx.params) {
                        ctx.stats.join_output += 1;
                        out.push(joined);
                    } else {
                        ctx.prof_drop();
                    }
                }
            }
            Ok(out)
        }
        PhysPlan::Filter { child, conds } => {
            let rows = execute_plan(child, ctx)?;
            let batch = ctx.batch_rows.max(1);
            let mut out = Vec::with_capacity(rows.len());
            for (i, r) in rows.into_iter().enumerate() {
                if i % batch == 0 {
                    if let Some(g) = ctx.governor {
                        g.check()?;
                    }
                    ctx.count_batch();
                }
                if eval_all(conds, &r, ctx.params) {
                    out.push(r);
                } else {
                    ctx.prof_drop();
                }
            }
            Ok(out)
        }
        PhysPlan::Project { child, exprs } => {
            let rows = execute_plan(child, ctx)?;
            Ok(rows
                .into_iter()
                .map(|row| {
                    exprs
                        .iter()
                        .map(|e| match e {
                            ProjExpr::Col(i) => row[*i].clone(),
                            ProjExpr::Lit(v) => v.clone(),
                        })
                        .collect()
                })
                .collect())
        }
        PhysPlan::Distinct { child } => {
            let rows = execute_plan(child, ctx)?;
            let state: u64 = rows.iter().map(tuple_bytes).sum();
            if spill_engaged(ctx, state) && !rows.is_empty() {
                return spill_dedup(ctx, rows, None, state);
            }
            let mut seen = HashSet::with_capacity(rows.len());
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
        PhysPlan::Sort { child, keys } => {
            let mut rows = execute_plan(child, ctx)?;
            let state: u64 = rows.iter().map(tuple_bytes).sum();
            if spill_engaged(ctx, state) && !rows.is_empty() {
                return external_sort(ctx, rows, keys, state);
            }
            rows.sort_by(|a, b| cmp_keys(a, b, keys));
            Ok(rows)
        }
        PhysPlan::CountStar { child } => {
            let rows = execute_plan(child, ctx)?;
            Ok(vec![vec![Value::Int(rows.len() as i64)]])
        }
        PhysPlan::GroupCount { child, keys } => {
            let rows = execute_plan(child, ctx)?;
            // Insertion-ordered grouping so output is deterministic.
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut counts: HashMap<Vec<Value>, i64> = HashMap::new();
            for row in rows {
                let key: Vec<Value> = keys.iter().map(|&i| row[i].clone()).collect();
                match counts.get_mut(&key) {
                    Some(c) => *c += 1,
                    None => {
                        counts.insert(key.clone(), 1);
                        order.push(key);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|key| {
                    let count = counts[&key];
                    let mut row = key;
                    row.push(Value::Int(count));
                    row
                })
                .collect())
        }
        PhysPlan::UnionAll { left, right } => {
            let mut rows = execute_plan(left, ctx)?;
            rows.extend(execute_plan(right, ctx)?);
            Ok(rows)
        }
        PhysPlan::UnionDistinct { left, right } => {
            let mut rows = execute_plan(left, ctx)?;
            rows.extend(execute_plan(right, ctx)?);
            let state: u64 = rows.iter().map(tuple_bytes).sum();
            if spill_engaged(ctx, state) && !rows.is_empty() {
                return spill_dedup(ctx, rows, None, state);
            }
            let mut seen = HashSet::with_capacity(rows.len());
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
        PhysPlan::Except { left, right } => {
            let rows = execute_plan(left, ctx)?;
            let right_rows = execute_plan(right, ctx)?;
            let state: u64 = rows.iter().chain(right_rows.iter()).map(tuple_bytes).sum();
            if spill_engaged(ctx, state) && !rows.is_empty() {
                return spill_dedup(ctx, rows, Some(right_rows), state);
            }
            let exclude: HashSet<Tuple> = right_rows.into_iter().collect();
            let mut seen = HashSet::new();
            Ok(rows
                .into_iter()
                .filter(|r| !exclude.contains(r) && seen.insert(r.clone()))
                .collect())
        }
    }
}

/// Grace hash join: both sides are hash-scattered on the join key into
/// per-partition spill files, then each partition is joined on its own
/// with a build table that fits the remaining memory budget. Probe rows
/// carry their input ordinal through the scatter; since every row with
/// a given key lands in exactly one partition, a final stable sort on
/// the ordinal restores exact probe-major order — byte-identical to the
/// in-memory join at any partition count.
#[allow(clippy::too_many_arguments)]
fn grace_hash_join(
    ctx: &mut ExecCtx<'_>,
    build: Vec<Tuple>,
    build_keys: &[usize],
    probe: Vec<Tuple>,
    probe_keys: &[usize],
    build_left: bool,
    residual: &[ExecCond],
    build_bytes: u64,
) -> Result<Vec<Tuple>, DbError> {
    let parts = spill_partition_count(ctx, build_bytes);
    ctx.prof_build(build.len() as u64);
    let build_files = scatter_partitions(
        ctx.disk,
        ctx.governor,
        &build,
        parts,
        Some(build_keys),
        false,
    )?;
    drop(build);
    let probe_files = match scatter_partitions(
        ctx.disk,
        ctx.governor,
        &probe,
        parts,
        Some(probe_keys),
        true,
    ) {
        Ok(files) => files,
        Err(e) => {
            for f in build_files {
                f.destroy(ctx.disk);
            }
            return Err(e);
        }
    };
    drop(probe);
    let spilled: u64 = build_files
        .iter()
        .chain(probe_files.iter())
        .map(SpillFile::bytes)
        .sum();
    ctx.count_spill(parts as u64, spilled);
    let mut counts = WorkerCounts::default();
    let mut tagged: Vec<(u64, Tuple)> = Vec::new();
    let mut result = Ok(());
    'parts: for (bf, pf) in build_files.iter().zip(probe_files.iter()) {
        // Load this partition's build side (its rows keep their relative
        // build order) and hash it; only now does the build state become
        // memory-resident, sized by the partition target.
        let mut part_build: Vec<Tuple> = Vec::with_capacity(bf.records() as usize);
        let mut reader = bf.reader();
        loop {
            match read_spilled_tuple(&mut reader, ctx.disk) {
                Ok(Some(t)) => part_build.push(t),
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break 'parts;
                }
            }
            if let Err(e) = gov_tick(ctx.governor, part_build.len()) {
                result = Err(e);
                break 'parts;
            }
        }
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (bi, row) in part_build.iter().enumerate() {
            let key: Vec<Value> = build_keys.iter().map(|&k| row[k].clone()).collect();
            table.entry(key).or_default().push(bi);
        }
        counts.batches += 1;
        let mut reader = pf.reader();
        let mut pi = 0usize;
        loop {
            let payload = match reader.next(ctx.disk) {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break 'parts;
                }
            };
            if let Err(e) = gov_tick(ctx.governor, pi) {
                result = Err(e);
                break 'parts;
            }
            pi += 1;
            let (seq, prow) = match decode_seq_tuple(&payload) {
                Ok(v) => v,
                Err(e) => {
                    result = Err(e);
                    break 'parts;
                }
            };
            let key: Vec<Value> = probe_keys.iter().map(|&k| prow[k].clone()).collect();
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    let brow = &part_build[bi];
                    let (lrow, rrow): (&Tuple, &Tuple) = if build_left {
                        (brow, &prow)
                    } else {
                        (&prow, brow)
                    };
                    let mut joined = Vec::with_capacity(lrow.len() + rrow.len());
                    joined.extend_from_slice(lrow);
                    joined.extend_from_slice(rrow);
                    if eval_all(residual, &joined, ctx.params) {
                        counts.join_output += 1;
                        tagged.push((seq, joined));
                    } else {
                        counts.dropped += 1;
                    }
                }
            }
        }
    }
    for f in build_files.into_iter().chain(probe_files) {
        f.destroy(ctx.disk);
    }
    ctx.absorb(counts);
    result?;
    tagged.sort_by_key(|&(seq, _)| seq);
    Ok(tagged.into_iter().map(|(_, t)| t).collect())
}

/// External merge sort: cut the input into consecutive runs sized to
/// the remaining memory budget, stable-sort and spill each, then merge
/// with ties broken by run index. Consecutive runs + stable run sort +
/// lowest-run-wins tie-breaking is exactly one big stable sort, so the
/// output is byte-identical to the in-memory path.
fn external_sort(
    ctx: &mut ExecCtx<'_>,
    rows: Vec<Tuple>,
    keys: &[usize],
    total_bytes: u64,
) -> Result<Vec<Tuple>, DbError> {
    let n = rows.len();
    let run_target = spill_partition_bytes(ctx).max(total_bytes.div_ceil(SPILL_MAX_PARTITIONS));
    let mut runs: Vec<SpillFile> = Vec::new();
    let mut cur: Vec<Tuple> = Vec::new();
    let mut cur_bytes = 0u64;
    let spill_run = |cur: &mut Vec<Tuple>, disk: &mut Disk| -> Result<SpillFile, DbError> {
        cur.sort_by(|a, b| cmp_keys(a, b, keys));
        let mut w = SpillWriter::new(disk);
        for t in cur.iter() {
            if let Err(e) = w.push(disk, &serialize_tuple(t)) {
                w.abandon(disk);
                return Err(e);
            }
        }
        cur.clear();
        w.finish(disk)
    };
    let mut result = Ok(());
    for (i, row) in rows.into_iter().enumerate() {
        if let Err(e) = gov_tick(ctx.governor, i) {
            result = Err(e);
            break;
        }
        cur_bytes += tuple_bytes(&row);
        cur.push(row);
        if cur_bytes >= run_target {
            match spill_run(&mut cur, ctx.disk) {
                Ok(f) => runs.push(f),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
            cur_bytes = 0;
        }
    }
    if result.is_ok() && !cur.is_empty() {
        match spill_run(&mut cur, ctx.disk) {
            Ok(f) => runs.push(f),
            Err(e) => result = Err(e),
        }
    }
    if let Err(e) = result {
        for f in runs {
            f.destroy(ctx.disk);
        }
        return Err(e);
    }
    ctx.count_sort_runs(runs.len() as u64);
    ctx.count_spill(0, runs.iter().map(SpillFile::bytes).sum());
    // K-way merge: pick the smallest head, lowest run index on ties
    // (strict less-than never displaces an equal earlier run).
    let mut readers: Vec<crate::spill::SpillReader> = runs.iter().map(SpillFile::reader).collect();
    let mut heads: Vec<Option<Tuple>> = Vec::with_capacity(readers.len());
    let mut out = Vec::with_capacity(n);
    let mut merge = || -> Result<(), DbError> {
        for r in &mut readers {
            heads.push(read_spilled_tuple(r, ctx.disk)?);
        }
        loop {
            gov_tick(ctx.governor, out.len())?;
            let mut best: Option<usize> = None;
            for i in 0..heads.len() {
                if heads[i].is_none() {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let (hi, hb) = (heads[i].as_ref().unwrap(), heads[b].as_ref().unwrap());
                        if cmp_keys(hi, hb, keys) == std::cmp::Ordering::Less {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            let Some(b) = best else { break };
            out.push(heads[b].take().unwrap());
            heads[b] = read_spilled_tuple(&mut readers[b], ctx.disk)?;
        }
        Ok(())
    };
    let merged = merge();
    for f in runs {
        f.destroy(ctx.disk);
    }
    merged?;
    Ok(out)
}

/// Spilled duplicate elimination (DISTINCT / UNION / EXCEPT): rows are
/// hash-scattered on the whole tuple with input ordinals, each
/// partition is deduplicated independently (every duplicate of a tuple
/// shares its partition), and survivors merge back in ordinal order —
/// first occurrence wins, exactly like the in-memory hash set. For
/// EXCEPT the right side scatters with the same hash so each partition
/// carries its own exclusion set.
fn spill_dedup(
    ctx: &mut ExecCtx<'_>,
    rows: Vec<Tuple>,
    exclude: Option<Vec<Tuple>>,
    state_bytes: u64,
) -> Result<Vec<Tuple>, DbError> {
    let parts = spill_partition_count(ctx, state_bytes);
    let row_files = scatter_partitions(ctx.disk, ctx.governor, &rows, parts, None, true)?;
    drop(rows);
    let ex_files = match &exclude {
        None => Vec::new(),
        Some(ex) => match scatter_partitions(ctx.disk, ctx.governor, ex, parts, None, false) {
            Ok(files) => files,
            Err(e) => {
                for f in row_files {
                    f.destroy(ctx.disk);
                }
                return Err(e);
            }
        },
    };
    drop(exclude);
    let spilled: u64 = row_files
        .iter()
        .chain(ex_files.iter())
        .map(SpillFile::bytes)
        .sum();
    ctx.count_spill(parts as u64, spilled);
    let mut tagged: Vec<(u64, Tuple)> = Vec::new();
    let mut run = || -> Result<(), DbError> {
        for (p, rf) in row_files.iter().enumerate() {
            let mut excluded: HashSet<Tuple> = HashSet::new();
            if let Some(ef) = ex_files.get(p) {
                let mut reader = ef.reader();
                while let Some(t) = read_spilled_tuple(&mut reader, ctx.disk)? {
                    gov_tick(ctx.governor, excluded.len())?;
                    excluded.insert(t);
                }
            }
            let mut seen: HashSet<Tuple> = HashSet::new();
            let mut reader = rf.reader();
            let mut i = 0usize;
            while let Some(payload) = reader.next(ctx.disk)? {
                gov_tick(ctx.governor, i)?;
                i += 1;
                let (seq, t) = decode_seq_tuple(&payload)?;
                if !excluded.contains(&t) && seen.insert(t.clone()) {
                    tagged.push((seq, t));
                }
            }
        }
        Ok(())
    };
    let outcome = run();
    for f in row_files.into_iter().chain(ex_files) {
        f.destroy(ctx.disk);
    }
    outcome?;
    tagged.sort_by_key(|&(seq, _)| seq);
    Ok(tagged.into_iter().map(|(_, t)| t).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes(n: usize, workers: usize) -> Vec<usize> {
        let ranges = chunk_ranges(n, workers);
        // Chunks must tile [0, n) contiguously in order.
        let mut expect = 0;
        for r in &ranges {
            assert_eq!(r.start, expect, "gap or overlap at {r:?} for n={n}");
            assert!(r.end > r.start, "empty chunk {r:?} for n={n}");
            expect = r.end;
        }
        assert_eq!(expect, n);
        ranges.iter().map(|r| r.len()).collect()
    }

    /// Near the rows-per-worker floor — the regime the skew gauge flagged
    /// — remaining-rows sizing keeps partition cardinalities within one
    /// row of each other, so any residual skew is scheduler noise, not
    /// partitioning.
    #[test]
    fn partition_sizes_balanced_near_floor() {
        for n in [512, 513, 600, 767, 1023, 1024, 2048, 4097] {
            let workers = (n / PAR_MIN_ROWS_PER_WORKER).clamp(1, 4);
            let s = sizes(n, workers);
            assert_eq!(s.len(), workers);
            let (min, max) = (*s.iter().min().unwrap(), *s.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "n={n} workers={workers}: row skew {s:?} exceeds one row"
            );
            assert!(
                min >= PAR_MIN_ROWS_PER_WORKER,
                "n={n}: chunk below spawn floor in {s:?}"
            );
        }
    }

    /// A worker count too large for the input folds the tail instead of
    /// starving threads below the spawn floor.
    #[test]
    fn partition_tail_folds_instead_of_starving() {
        assert_eq!(sizes(300, 4), vec![300]);
        assert_eq!(sizes(520, 2), vec![260, 260]);
        // 700/3 would leave ~233-row chunks (< floor): folds to one.
        assert_eq!(sizes(700, 3), vec![700]);
    }

    #[test]
    fn partition_degenerate_inputs() {
        assert_eq!(sizes(1, 8), vec![1]);
        assert_eq!(sizes(5, 1), vec![5]);
        // Empty inputs never reach chunk_ranges (par_run's serial
        // fallback handles them), but it must not panic or emit chunks.
        assert!(chunk_ranges(0, 4).is_empty());
    }
}
