//! Property tests for the EXPLAIN ANALYZE operator profile: whatever the
//! planner chooses for random data and predicates, the per-operator row
//! counts must be mutually consistent and agree with the query's actual
//! result.

use proptest::prelude::*;
use rdbms::{Engine, OpProfile, Value};

/// Children of pre-order node `i`: the nodes that follow at `depth + 1`
/// before the next node at `depth` or less.
fn children(profile: &[OpProfile], i: usize) -> Vec<usize> {
    let d = profile[i].depth;
    let mut out = Vec::new();
    for (j, op) in profile.iter().enumerate().skip(i + 1) {
        if op.depth <= d {
            break;
        }
        if op.depth == d + 1 {
            out.push(j);
        }
    }
    out
}

fn engine_with_data(edges: &[(u8, u8)], labels: &[u8]) -> Engine {
    let mut e = Engine::new();
    e.execute("CREATE TABLE edge (src char, dst char)").unwrap();
    e.execute("CREATE TABLE label (node char, tag integer)")
        .unwrap();
    e.execute("CREATE INDEX label_node ON label (node)")
        .unwrap();
    e.insert_rows(
        "edge",
        edges
            .iter()
            .map(|&(a, b)| vec![Value::from(format!("v{a}")), Value::from(format!("v{b}"))])
            .collect(),
    )
    .unwrap();
    e.insert_rows(
        "label",
        labels
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                vec![
                    Value::from(format!("v{}", i as u8 % 10)),
                    Value::Int(t as i64),
                ]
            })
            .collect(),
    )
    .unwrap();
    e
}

/// Check the structural invariants of one profile tree.
fn check_profile(profile: &[OpProfile], result_rows: u64) {
    assert!(!profile.is_empty());
    assert_eq!(profile[0].depth, 0);
    // The root emits exactly the query's result cardinality.
    assert_eq!(
        profile[0].rows_out, result_rows,
        "root must emit the result: {profile:?}"
    );
    for (i, op) in profile.iter().enumerate() {
        let kids = children(profile, i);
        let label = &op.label;
        if label.starts_with("HashJoin") || label.starts_with("CrossJoin") {
            assert_eq!(kids.len(), 2, "{label}");
            let product = profile[kids[0]]
                .rows_out
                .saturating_mul(profile[kids[1]].rows_out);
            assert!(
                op.rows_out <= product,
                "join emits at most the product of its inputs: {op:?}"
            );
        }
        if label.starts_with("IndexNlJoin") {
            // Every emitted row came from a fetched inner tuple.
            assert!(
                op.rows_out
                    <= profile[kids[0]]
                        .rows_out
                        .saturating_mul(op.tuples_fetched.max(1)),
                "{op:?}"
            );
            if op.rows_out > 0 {
                assert!(op.tuples_fetched > 0, "{op:?}");
            }
        }
        // Pure row-shapers never change cardinality.
        if label.starts_with("Project") || label.starts_with("Sort") {
            assert_eq!(op.rows_out, profile[kids[0]].rows_out, "{op:?}");
        }
        // Filters and Distinct only ever shrink their input.
        if label.starts_with("Filter") || label.starts_with("Distinct") {
            assert!(op.rows_out <= profile[kids[0]].rows_out, "{op:?}");
        }
    }
}

fn run_case(e: &mut Engine, sql: &str) {
    let expected = e.execute(sql).unwrap().rows.len() as u64;
    e.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    let profile = e.last_profile().to_vec();
    check_profile(&profile, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn per_operator_row_counts_are_consistent(
        edges in prop::collection::vec((0u8..10, 0u8..10), 0..30),
        labels in prop::collection::vec(0u8..5, 0..20),
        tag in 0u8..5,
    ) {
        let mut e = engine_with_data(&edges, &labels);
        // A hash/cross join, an index join, a filtered scan, and a distinct
        // projection: every profiled operator family shows up across cases.
        run_case(&mut e, "SELECT a.src, b.dst FROM edge a, edge b WHERE a.dst = b.src");
        run_case(&mut e, "SELECT e.src, l.tag FROM edge e, label l WHERE e.dst = l.node");
        run_case(&mut e, &format!("SELECT node FROM label WHERE tag = {tag}"));
        run_case(&mut e, "SELECT DISTINCT dst FROM edge ORDER BY dst");
        run_case(
            &mut e,
            &format!(
                "SELECT DISTINCT e.src FROM edge e, label l \
                 WHERE e.src = l.node AND l.tag IN ({tag}, 9)"
            ),
        );
    }

    /// Profiling is observation only: EXPLAIN ANALYZE returns the same
    /// answer cardinality as the bare statement, every time.
    #[test]
    fn analyze_does_not_change_answers(
        edges in prop::collection::vec((0u8..6, 0u8..6), 0..15),
    ) {
        let mut e = engine_with_data(&edges, &[]);
        let sql = "SELECT a.src, b.dst FROM edge a, edge b WHERE a.dst = b.src";
        let before = e.execute(sql).unwrap().rows;
        e.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
        let after = e.execute(sql).unwrap().rows;
        prop_assert_eq!(before, after);
    }
}
