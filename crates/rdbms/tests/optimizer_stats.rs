//! Statistics subsystem invariants.
//!
//! Two angles on the optimizer's statistics: a property test that drives a
//! random interleaving of inserts, point deletes, truncates, and explicit
//! analyzes through the engine and checks that every installed estimate
//! stays inside its documented bounds; and a shared-engine test that a
//! session plans against the statistics of its own MVCC snapshot rather
//! than whatever a concurrent committer has since installed.

use proptest::prelude::*;
use rdbms::stats::RESERVOIR_CAP;
use rdbms::{Engine, SharedEngine, Value};

#[derive(Debug, Clone)]
enum StatsOp {
    /// Append a batch of rows with keys drawn from a small domain.
    Insert(Vec<i64>),
    /// Point delete of every row with the given key.
    DeleteEq(i64),
    /// Drop all content, keeping the schema.
    Truncate,
    /// Force a statistics refresh regardless of the churn threshold.
    Analyze,
}

fn arb_stats_op() -> impl Strategy<Value = StatsOp> {
    prop_oneof![
        4 => prop::collection::vec(0i64..64, 1..40).prop_map(StatsOp::Insert),
        2 => (0i64..64).prop_map(StatsOp::DeleteEq),
        1 => Just(StatsOp::Truncate),
        1 => Just(StatsOp::Analyze),
    ]
}

/// Every estimate the engine installs must stay inside its documented
/// bounds, no matter what the table has been through.
fn check_stats_bounds(e: &Engine, live: u64) -> Result<(), TestCaseError> {
    let stats = e.table_stats("t").expect("table exists");
    if stats.columns.is_empty() {
        return Ok(());
    }
    prop_assert_eq!(stats.columns.len(), 2, "estimates parallel the schema");
    prop_assert!(
        stats.analyzed_rows <= live || stats.mods_since_analyze > 0,
        "analyzed_rows {} can only exceed live {} after later deletes",
        stats.analyzed_rows,
        live
    );
    for col in &stats.columns {
        prop_assert!(
            col.n_distinct >= 1,
            "analyzed column saw at least one value"
        );
        prop_assert!(
            col.n_distinct <= stats.analyzed_rows,
            "n_distinct {} exceeds rows at analyze {}",
            col.n_distinct,
            stats.analyzed_rows
        );
        let sel = col.eq_selectivity();
        prop_assert!(sel > 0.0 && sel <= 1.0, "eq selectivity {sel} out of (0,1]");
        prop_assert!(col.min <= col.max);
        if let Some(h) = &col.histogram {
            prop_assert!(h.hi > h.lo, "degenerate domains carry no histogram");
            prop_assert!(h.sampled <= RESERVOIR_CAP as u64);
            prop_assert!(h.sampled <= stats.analyzed_rows);
            prop_assert_eq!(h.counts.iter().sum::<u64>(), h.sampled);
            let whole = h.range_fraction(None, None);
            prop_assert!(
                (whole - 1.0).abs() < 1e-9,
                "whole-domain fraction {whole} != 1"
            );
            let half = h.range_fraction(Some(h.lo), Some((h.lo + h.hi) / 2));
            prop_assert!((0.0..=1.0).contains(&half));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/delete/truncate/analyze interleavings never push an
    /// estimate outside its bounds, and never corrupt query answers: the
    /// engine's row count and a point lookup always match a replayed
    /// in-memory model of the table.
    #[test]
    fn estimates_stay_bounded_under_churn(ops in prop::collection::vec(arb_stats_op(), 1..24)) {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k int, v int)").unwrap();
        e.execute("CREATE INDEX t_k ON t (k)").unwrap();
        let mut model: Vec<(i64, i64)> = Vec::new();
        let mut next_v = 0i64;

        for op in &ops {
            match op {
                StatsOp::Insert(keys) => {
                    let rows: Vec<Vec<Value>> = keys
                        .iter()
                        .map(|&k| {
                            next_v += 1;
                            model.push((k, next_v));
                            vec![Value::Int(k), Value::Int(next_v)]
                        })
                        .collect();
                    e.insert_rows("t", rows).unwrap();
                }
                StatsOp::DeleteEq(k) => {
                    let rs = e.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
                    let expect = model.iter().filter(|(mk, _)| mk == k).count() as u64;
                    prop_assert_eq!(rs.affected, expect);
                    model.retain(|(mk, _)| mk != k);
                }
                StatsOp::Truncate => {
                    e.execute("TRUNCATE TABLE t").unwrap();
                    model.clear();
                    let stats = e.table_stats("t").unwrap();
                    prop_assert!(
                        stats.columns.is_empty(),
                        "truncate drops estimates that describe vanished rows"
                    );
                    prop_assert_eq!(stats.mods_since_analyze, 0);
                }
                StatsOp::Analyze => {
                    e.analyze_table("t").unwrap();
                    let stats = e.table_stats("t").unwrap();
                    prop_assert_eq!(stats.analyzed_rows, model.len() as u64);
                    prop_assert_eq!(stats.mods_since_analyze, 0);
                }
            }
            let live = e.table_len("t").unwrap();
            prop_assert_eq!(live, model.len() as u64);
            check_stats_bounds(&e, live)?;
        }

        // Stale or fresh, estimates never change answers.
        let probe = 3i64;
        let rs = e.execute(&format!("SELECT v FROM t WHERE k = {probe}")).unwrap();
        let expect = model.iter().filter(|(k, _)| *k == probe).count();
        prop_assert_eq!(rs.rows.len(), expect);
    }

    /// Analyzing twice with no interleaved churn is a fixpoint: sampling is
    /// seeded deterministically per version, but the estimates describe the
    /// same rows, so distinct counts and histograms stay within bounds and
    /// the row bookkeeping is identical.
    #[test]
    fn reanalyze_without_churn_keeps_bounds(keys in prop::collection::vec(0i64..16, 1..200)) {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (k int, v int)").unwrap();
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| vec![Value::Int(k), Value::Int(i as i64)])
            .collect();
        e.insert_rows("t", rows).unwrap();
        e.analyze_table("t").unwrap();
        let first = e.table_stats("t").unwrap().clone();
        e.analyze_table("t").unwrap();
        let second = e.table_stats("t").unwrap();
        prop_assert_eq!(second.version, first.version + 1);
        prop_assert_eq!(second.analyzed_rows, first.analyzed_rows);
        let live = e.table_len("t").unwrap();
        check_stats_bounds(&e, live)?;
    }
}

/// A forked session keeps planning against its snapshot's statistics: a
/// concurrent committer's auto-analyze moves the live stats version, but
/// the open session neither sees the new rows nor the new estimates until
/// it refreshes.
#[test]
fn session_plans_use_snapshot_consistent_stats() {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (k int, v int)").unwrap();
    e.execute("CREATE INDEX t_k ON t (k)").unwrap();
    let rows: Vec<Vec<Value>> = (0..64)
        .map(|i| vec![Value::Int(i % 8), Value::Int(i)])
        .collect();
    e.insert_rows("t", rows).unwrap();
    e.analyze_table("t").unwrap();
    let shared = SharedEngine::new(e);

    let mut reader = shared.session();
    let before = reader.snapshot().table_stats("t").unwrap().clone();
    assert!(!before.columns.is_empty(), "seed table was analyzed");

    // A second session commits enough churn to trip the live auto-analyze.
    let mut writer = shared.session();
    let bulk: Vec<Vec<Value>> = (0..2048)
        .map(|i| vec![Value::Int(i % 512), Value::Int(1000 + i)])
        .collect();
    writer.insert_rows("t", bulk).unwrap();

    let (live_version, live_rows) = shared.with_live(|live| {
        (
            live.table_stats("t").unwrap().version,
            live.table_len("t").unwrap(),
        )
    });
    assert!(
        live_version > before.version,
        "bulk insert re-analyzed the live table ({live_version} vs {before_v})",
        before_v = before.version
    );
    assert_eq!(live_rows, 64 + 2048);

    // The open session still plans from its fork: same stats version, same
    // row count, and an EXPLAIN costed from the old world.
    let snap_stats = reader.snapshot().table_stats("t").unwrap();
    assert_eq!(snap_stats.version, before.version);
    assert_eq!(snap_stats.analyzed_rows, before.analyzed_rows);
    assert_eq!(reader.table_len("t").unwrap(), 64);
    let rs = reader.execute("SELECT v FROM t WHERE k = 3").unwrap();
    assert_eq!(
        rs.rows.len(),
        8,
        "snapshot answers ignore concurrent commits"
    );

    // Refreshing adopts the committed world and its statistics.
    reader.refresh().unwrap();
    let refreshed = reader.snapshot().table_stats("t").unwrap();
    assert_eq!(refreshed.version, live_version);
    assert_eq!(reader.table_len("t").unwrap(), 64 + 2048);
}
