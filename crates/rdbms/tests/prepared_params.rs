//! Property tests for the prepared-statement layer: executing a statement
//! with `?` parameters must be observationally identical to executing the
//! same statement with the parameter values formatted into the SQL string —
//! across SELECT shapes, INSERT VALUES, DELETE, repeated executions of one
//! handle, and interleaved catalog churn.

use proptest::prelude::*;
use rdbms::{Engine, Value};

/// Symbols drawn from a small alphabet so joins and equalities actually hit.
fn arb_sym() -> impl Strategy<Value = String> {
    (0u8..8).prop_map(|i| format!("s{i}"))
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, String)>> {
    prop::collection::vec(((-20i64..20), arb_sym()), 0..24)
}

fn engine_with(rows: &[(i64, String)], indexed: bool) -> Engine {
    let mut e = Engine::new();
    e.execute("CREATE TABLE t (a integer, b char)").unwrap();
    if indexed {
        e.execute("CREATE INDEX t_a ON t (a)").unwrap();
    }
    e.insert_rows(
        "t",
        rows.iter()
            .map(|(a, b)| vec![Value::Int(*a), Value::from(b.as_str())])
            .collect(),
    )
    .unwrap();
    e
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{s}'"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SELECT with one int and one string parameter across all comparison
    /// operators, with and without an index on the int column.
    #[test]
    fn prepared_select_equals_formatted_select(
        rows in arb_rows(),
        a in -20i64..20,
        b in arb_sym(),
        op_idx in 0usize..6,
        indexed in any::<bool>(),
    ) {
        let op = ["=", "<>", "<", "<=", ">", ">="][op_idx];
        let mut e = engine_with(&rows, indexed);
        let id = e
            .prepare(&format!("SELECT a, b FROM t WHERE a {op} ? AND b = ? ORDER BY a, b"))
            .unwrap();
        let prepared = e
            .execute_prepared(id, &[Value::Int(a), Value::from(b.as_str())])
            .unwrap()
            .rows;
        let formatted = e
            .execute(&format!(
                "SELECT a, b FROM t WHERE a {op} {a} AND b = '{b}' ORDER BY a, b"
            ))
            .unwrap()
            .rows;
        prop_assert_eq!(prepared, formatted);
    }

    /// One prepared handle re-executed with many bindings gives the same
    /// answers as freshly formatted statements each time.
    #[test]
    fn rebinding_one_handle_equals_fresh_statements(
        rows in arb_rows(),
        probes in prop::collection::vec(-20i64..20, 1..8),
        indexed in any::<bool>(),
    ) {
        let mut e = engine_with(&rows, indexed);
        let id = e.prepare("SELECT b FROM t WHERE a = ? ORDER BY b").unwrap();
        for a in probes {
            let prepared = e.execute_prepared(id, &[Value::Int(a)]).unwrap().rows;
            let formatted = e
                .execute(&format!("SELECT b FROM t WHERE a = {a} ORDER BY b"))
                .unwrap()
                .rows;
            prop_assert_eq!(prepared, formatted, "binding a={}", a);
        }
    }

    /// INSERT ... VALUES (?, ?) then DELETE ... WHERE a = ? leave the table
    /// in the same state as their string-formatted counterparts.
    #[test]
    fn prepared_dml_equals_formatted_dml(
        rows in arb_rows(),
        extra in prop::collection::vec(((-20i64..20), arb_sym()), 0..8),
        del_key in -20i64..20,
        indexed in any::<bool>(),
    ) {
        let mut p = engine_with(&rows, indexed);
        let mut f = engine_with(&rows, indexed);

        let ins = p.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        for (a, b) in &extra {
            let rp = p
                .execute_prepared(ins, &[Value::Int(*a), Value::from(b.as_str())])
                .unwrap();
            let rf = f
                .execute(&format!("INSERT INTO t VALUES ({a}, '{b}')"))
                .unwrap();
            prop_assert_eq!(rp.affected, rf.affected);
        }
        let del = p.prepare("DELETE FROM t WHERE a = ?").unwrap();
        let rp = p.execute_prepared(del, &[Value::Int(del_key)]).unwrap();
        let rf = f
            .execute(&format!("DELETE FROM t WHERE a = {del_key}"))
            .unwrap();
        prop_assert_eq!(rp.affected, rf.affected);

        let left = p.execute("SELECT * FROM t ORDER BY a, b").unwrap().rows;
        let right = f.execute("SELECT * FROM t ORDER BY a, b").unwrap().rows;
        prop_assert_eq!(left, right);
    }

    /// Catalog churn between executions: the cached plan is invalidated and
    /// re-planned, never silently executing against a stale layout.
    #[test]
    fn cached_plans_survive_catalog_churn(
        rows in arb_rows(),
        probe in -20i64..20,
        other_rows in prop::collection::vec(arb_sym(), 0..6),
    ) {
        let mut e = engine_with(&rows, false);
        let id = e.prepare("SELECT b FROM t WHERE a = ? ORDER BY b").unwrap();
        let before = e.execute_prepared(id, &[Value::Int(probe)]).unwrap().rows;
        // Unrelated DDL bumps the catalog epoch.
        e.execute("CREATE TABLE side (x char)").unwrap();
        e.insert_rows(
            "side",
            other_rows.iter().map(|s| vec![Value::from(s.as_str())]).collect(),
        )
        .unwrap();
        let after = e.execute_prepared(id, &[Value::Int(probe)]).unwrap().rows;
        prop_assert_eq!(&before, &after, "re-planned answer unchanged");
        e.execute("DROP TABLE side").unwrap();
        let again = e.execute_prepared(id, &[Value::Int(probe)]).unwrap().rows;
        prop_assert_eq!(&before, &again);
    }

    /// The values the formatter writes round-trip exactly (guards the test
    /// helper itself against quoting bugs).
    #[test]
    fn formatted_literals_round_trip(a in -20i64..20, b in arb_sym()) {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (a integer, b char)").unwrap();
        e.execute(&format!(
            "INSERT INTO t VALUES ({}, {})",
            fmt_value(&Value::Int(a)),
            fmt_value(&Value::from(b.as_str()))
        ))
        .unwrap();
        let rows = e.execute("SELECT * FROM t").unwrap().rows;
        prop_assert_eq!(rows, vec![vec![Value::Int(a), Value::from(b.as_str())]]);
    }
}
