//! Model-based property tests for the storage stack: each component is
//! driven with random operation sequences and compared against a trivial
//! in-memory reference model.

use proptest::prelude::*;
use rdbms::buffer::BufferPool;
use rdbms::disk::Disk;
use rdbms::heap::{HeapFile, RecordId};
use rdbms::page::{SlottedPage, PAGE_SIZE};

// ---------------------------------------------------------------------
// Slotted page vs Vec<Option<payload>>
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(u16),
    Get(u16),
}

fn arb_page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        (0u16..64).prop_map(PageOp::Delete),
        (0u16..64).prop_map(PageOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(arb_page_op(), 0..80)) {
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let mut page = SlottedPage::init(&mut buf);
        // Model: slot -> Some(payload) while live.
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for op in ops {
            match op {
                PageOp::Insert(payload) => {
                    match page.insert(&payload) {
                        Some(slot) => {
                            prop_assert_eq!(slot as usize, model.len());
                            model.push(Some(payload));
                        }
                        None => {
                            // Reject must mean it genuinely does not fit.
                            prop_assert!(!page.fits(payload.len()));
                        }
                    }
                }
                PageOp::Delete(slot) => {
                    let expected = model
                        .get_mut(slot as usize)
                        .map(|s| s.take().is_some())
                        .unwrap_or(false);
                    prop_assert_eq!(page.delete(slot), expected);
                }
                PageOp::Get(slot) => {
                    let expected = model.get(slot as usize).and_then(|s| s.as_deref());
                    prop_assert_eq!(page.get(slot), expected);
                }
            }
        }
        // Live slots agree at the end.
        let live: Vec<u16> = model
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i as u16))
            .collect();
        prop_assert_eq!(page.live_slots(), live);
    }
}

// ---------------------------------------------------------------------
// Heap file vs HashMap<RecordId, payload>
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum HeapOp {
    Insert(Vec<u8>),
    /// Delete the i-th live record (mod live count).
    DeleteNth(usize),
    Scan,
}

fn arb_heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 1..600).prop_map(HeapOp::Insert),
        1 => (0usize..32).prop_map(HeapOp::DeleteNth),
        1 => Just(HeapOp::Scan),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_file_matches_model(ops in prop::collection::vec(arb_heap_op(), 0..60)) {
        let mut disk = Disk::new();
        // Tiny pool so eviction churns constantly.
        let mut pool = BufferPool::new(3);
        let mut heap = HeapFile::create(&mut disk);
        let mut model: Vec<(RecordId, Vec<u8>)> = Vec::new();

        for op in ops {
            match op {
                HeapOp::Insert(payload) => {
                    let rid = heap.insert(&mut disk, &mut pool, &payload).unwrap();
                    prop_assert!(
                        !model.iter().any(|(r, _)| *r == rid),
                        "record ids are never reused while live"
                    );
                    model.push((rid, payload));
                }
                HeapOp::DeleteNth(n) => {
                    if model.is_empty() {
                        continue;
                    }
                    let (rid, _) = model.remove(n % model.len());
                    prop_assert!(heap.delete(&mut disk, &mut pool, rid).unwrap());
                    prop_assert!(!heap.delete(&mut disk, &mut pool, rid).unwrap());
                    prop_assert_eq!(heap.get(&mut disk, &mut pool, rid).unwrap(), None);
                }
                HeapOp::Scan => {
                    let mut scan = heap.scan();
                    let mut seen = Vec::new();
                    while let Some((rid, payload)) = scan.next(&mut disk, &mut pool).unwrap() {
                        seen.push((rid, payload));
                    }
                    let mut expected = model.clone();
                    expected.sort_by_key(|(r, _)| (r.page.0, r.slot));
                    prop_assert_eq!(seen, expected);
                }
            }
            prop_assert_eq!(heap.tuple_count() as usize, model.len());
        }

        // Every live record is retrievable at the end.
        for (rid, payload) in &model {
            let got = heap.get(&mut disk, &mut pool, *rid).unwrap();
            prop_assert_eq!(got.as_deref(), Some(payload.as_slice()));
        }
    }
}

// ---------------------------------------------------------------------
// Buffer pool vs shadow memory
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random single-byte writes through pools of different sizes always
    /// read back correctly, regardless of eviction pattern.
    #[test]
    fn buffer_pool_reads_see_all_writes(
        pool_size in 1usize..6,
        n_pages in 1u32..10,
        ops in prop::collection::vec((0u32..10, 0usize..PAGE_SIZE, any::<u8>()), 0..120),
    ) {
        let mut disk = Disk::new();
        let file = disk.create_file();
        for _ in 0..n_pages {
            disk.allocate_page(file).unwrap();
        }
        let mut pool = BufferPool::new(pool_size);
        let mut shadow = vec![vec![0u8; PAGE_SIZE]; n_pages as usize];

        for (page, offset, byte) in ops {
            let page = page % n_pages;
            pool.with_page(&mut disk, file, rdbms::disk::PageId(page), true, |buf| {
                buf[offset] = byte;
            })
            .unwrap();
            shadow[page as usize][offset] = byte;
        }
        // Every byte of every page reads back as the shadow says.
        for page in 0..n_pages {
            let expected = shadow[page as usize].clone();
            pool.with_page(&mut disk, file, rdbms::disk::PageId(page), false, |buf| {
                assert_eq!(buf, expected.as_slice(), "page {page}");
            })
            .unwrap();
        }
        // Flushing and re-reading straight from disk agrees too.
        pool.flush_all(&mut disk).unwrap();
        for page in 0..n_pages {
            let mut out = vec![0u8; PAGE_SIZE];
            disk.read_page(file, rdbms::disk::PageId(page), &mut out).unwrap();
            prop_assert_eq!(&out, &shadow[page as usize]);
        }
    }
}

// ---------------------------------------------------------------------
// SQL front-end robustness
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The SQL parser never panics, whatever the input.
    #[test]
    fn sql_parser_never_panics(input in "[ -~\\n]{0,120}") {
        let _ = rdbms::sql::parser::parse_stmt(&input);
        let _ = rdbms::sql::parser::parse_script(&input);
    }

    /// Executing arbitrary text through the engine never panics either —
    /// it errors or succeeds.
    #[test]
    fn engine_never_panics_on_garbage(input in "[ -~]{0,80}") {
        let mut e = rdbms::Engine::new();
        e.execute("CREATE TABLE t (a integer, b char)").unwrap();
        let _ = e.execute(&input);
    }
}

// ---------------------------------------------------------------------
// Ordered index range scans vs reference filter
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Range queries over an ordered index agree with a reference filter
    /// for every bound combination.
    #[test]
    fn ordered_index_range_matches_reference(
        values in prop::collection::vec(-20i64..20, 0..40),
        lo in -25i64..25,
        hi in -25i64..25,
        lo_incl in any::<bool>(),
        hi_incl in any::<bool>(),
    ) {
        let mut e = rdbms::Engine::new();
        e.execute("CREATE TABLE t (k integer)").unwrap();
        e.insert_rows("t", values.iter().map(|&v| vec![rdbms::Value::Int(v)]).collect())
            .unwrap();
        e.execute("CREATE ORDERED INDEX t_k ON t (k)").unwrap();
        let (lo_op, lo_ok): (&str, Box<dyn Fn(i64) -> bool>) = if lo_incl {
            (">=", Box::new(move |v| v >= lo))
        } else {
            (">", Box::new(move |v| v > lo))
        };
        let (hi_op, hi_ok): (&str, Box<dyn Fn(i64) -> bool>) = if hi_incl {
            ("<=", Box::new(move |v| v <= hi))
        } else {
            ("<", Box::new(move |v| v < hi))
        };
        let expected = values.iter().filter(|&&v| lo_ok(v) && hi_ok(v)).count() as i64;
        let rs = e
            .execute(&format!(
                "SELECT COUNT(*) FROM t WHERE k {lo_op} {lo} AND k {hi_op} {hi}"
            ))
            .unwrap();
        prop_assert_eq!(rs.scalar_int(), Some(expected));
    }
}
