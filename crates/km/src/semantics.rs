//! The Semantic Checker: the two checks of §3.2.4.
//!
//! 1. *Definedness* — every derived predicate reachable from the query has
//!    a defining rule (or is a base relation / fact predicate).
//! 2. *Type check* — column types of each derived predicate are inferred
//!    from its rules and must agree across all rules defining it.

use crate::stored::KmError;
use hornlog::strat::stratify;
use hornlog::types::{infer_types, undefined_predicates, TypeMap};
use hornlog::Program;
use std::collections::BTreeSet;

/// Outcome of semantic analysis: the complete type map (base + derived).
#[derive(Debug, Clone)]
pub struct SemanticInfo {
    pub types: TypeMap,
}

/// Run the semantic checks over the relevant program: definedness, the
/// stratification check (negation extension), and type inference.
///
/// `program` holds the relevant rules *and* any workspace facts;
/// `base_types` holds dictionary types for base relations (and, when known,
/// previously registered derived predicates).
pub fn check(program: &Program, base_types: &TypeMap) -> Result<SemanticInfo, KmError> {
    let known: BTreeSet<String> = base_types.keys().cloned().collect();
    let missing = undefined_predicates(program, &known);
    if !missing.is_empty() {
        return Err(KmError::Semantic(format!(
            "no rules or facts define: {}",
            missing.join(", ")
        )));
    }
    if let Err(e) = stratify(program) {
        return Err(KmError::Semantic(e.to_string()));
    }
    let types = infer_types(program, base_types)?;
    Ok(SemanticInfo { types })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::parser::parse_program;
    use hornlog::types::AttrType;

    fn base() -> TypeMap {
        [("parent".to_string(), vec![AttrType::Sym, AttrType::Sym])].into()
    }

    #[test]
    fn valid_program_passes() {
        let p = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let info = check(&p, &base()).unwrap();
        assert_eq!(info.types["anc"], vec![AttrType::Sym, AttrType::Sym]);
    }

    #[test]
    fn undefined_predicate_rejected() {
        let p = parse_program("anc(X, Y) :- nosuch(X, Y).\n").unwrap();
        let err = check(&p, &base()).unwrap_err();
        assert!(matches!(err, KmError::Semantic(m) if m.contains("nosuch")));
    }

    #[test]
    fn type_conflict_rejected() {
        let p = parse_program(
            "p(X) :- parent(X, X).\n\
             p(X) :- nums(X).\n",
        )
        .unwrap();
        let mut types = base();
        types.insert("nums".into(), vec![AttrType::Int]);
        let err = check(&p, &types).unwrap_err();
        assert!(matches!(err, KmError::Type(_)));
    }

    #[test]
    fn fact_predicates_count_as_defined() {
        let p = parse_program(
            "anc(X, Y) :- edge(X, Y).\n\
             edge(a, b).\n",
        )
        .unwrap();
        let info = check(&p, &TypeMap::new()).unwrap();
        assert_eq!(info.types["edge"], vec![AttrType::Sym, AttrType::Sym]);
        assert_eq!(info.types["anc"], vec![AttrType::Sym, AttrType::Sym]);
    }
}
