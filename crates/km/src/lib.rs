//! # dkbms-km — the Knowledge Manager
//!
//! The top layer of the two-layer D/KBMS testbed (Ramnarayan & Lu, SIGMOD
//! 1988): it accepts pure function-free Horn clauses and queries, compiles
//! each query into a program of SQL statements, and executes that program
//! against the relational engine ([`rdbms`]) with naive or semi-naive LFP
//! evaluation, optionally after the generalized magic-sets rewrite.
//!
//! Component map (paper §3.2):
//!
//! * [`workspace`] — the Workspace D/KB Manager;
//! * [`stored`] — the Stored D/KB Manager (rules-in-relations, indexed
//!   `rulesource` + `reachablepreds` compiled form);
//! * [`semantics`] — the Semantic Checker;
//! * [`magic`] — the Optimizer (generalized magic sets);
//! * [`codegen`] — the Code Generator (rule bodies → SQL);
//! * [`runtime`] — the Run Time Library (naive / semi-naive LFP);
//! * [`update`] — the Stored D/KB update algorithm with incremental
//!   transitive closure;
//! * [`session`] — the User Interface's control flow: compile, execute,
//!   update, with per-phase timings.
//!
//! ## Example
//!
//! ```
//! use km::session::{Session, SessionConfig, binary_sym};
//! use rdbms::Value;
//!
//! let mut s = Session::with_defaults().unwrap();
//! s.define_base("parent", &binary_sym()).unwrap();
//! s.load_facts("parent", vec![
//!     vec![Value::from("adam"), Value::from("bob")],
//!     vec![Value::from("bob"), Value::from("carol")],
//! ]).unwrap();
//! s.load_rules(
//!     "anc(X, Y) :- parent(X, Y).\n\
//!      anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
//! ).unwrap();
//! let (_, result) = s.query("?- anc(adam, W).").unwrap();
//! assert_eq!(result.rows.len(), 2);
//! ```

pub mod backend;
pub mod codegen;
pub mod magic;
pub mod runtime;
pub mod semantics;
pub mod session;
pub mod stored;
pub mod update;
pub mod util;
pub mod workspace;

pub use backend::{ExecBackend, Storage};
pub use runtime::{
    CliqueTrace, EvalError, EvalLimits, EvalOutcome, EvalResource, IterationTrace, LfpBreakdown,
    LfpStrategy, NodeTiming, PartialProgress,
};
pub use session::{
    CompileTimings, CompiledQuery, QueryResult, Session, SessionConfig, SharedSession,
};
pub use stored::{KmError, StoredDkb};
pub use update::UpdateTimings;
pub use workspace::Workspace;
