//! The Optimizer: generalized magic sets rewriting (Beeri & Ramakrishnan),
//! as used by the testbed to restrict LFP evaluation to the facts relevant
//! to the query constants.
//!
//! Given the relevant rules and a query, the rewrite produces three rule
//! groups in the workspace — exactly the paper's description of the
//! optimizer output: *adorned* rules (computed by [`hornlog::adorn`]),
//! *magic* rules (deriving the set of relevant bindings), and *modified*
//! rules (the adorned rules guarded by their magic predicates).

use hornlog::adorn::{adorn_program, Adornment};
use hornlog::types::TypeMap;
use hornlog::{Atom, Clause, Program, Term};
use std::collections::{BTreeMap, BTreeSet};

/// Name of the magic predicate guarding the adorned predicate `adorned`.
pub fn magic_name(adorned: &str) -> String {
    format!("m_{adorned}")
}

/// Result of the magic-sets rewrite.
#[derive(Debug, Clone)]
pub struct MagicRewrite {
    /// Magic rules, seed facts, and modified rules.
    pub program: Program,
    /// The query, with derived body atoms renamed to adorned predicates.
    pub query: Clause,
    /// Adorned predicate name → (original predicate, adornment).
    pub origin: BTreeMap<String, (String, Adornment)>,
    /// Magic predicate names introduced by the rewrite.
    pub magic_preds: BTreeSet<String>,
    /// How many of the rewritten rules are magic rules (for reporting).
    pub magic_rule_count: usize,
}

impl MagicRewrite {
    /// Extend `original` (types of base and original derived predicates)
    /// with entries for the adorned and magic predicates: an adorned
    /// predicate inherits the original's types; its magic predicate keeps
    /// the bound positions only.
    pub fn rewritten_types(&self, original: &TypeMap) -> TypeMap {
        let mut out = original.clone();
        for (adorned, (orig, adornment)) in &self.origin {
            let Some(types) = original.get(orig) else {
                continue;
            };
            out.insert(adorned.clone(), types.clone());
            let magic = magic_name(adorned);
            if self.magic_preds.contains(&magic) {
                let bound: Vec<_> = adornment
                    .bound_positions()
                    .into_iter()
                    .map(|i| types[i])
                    .collect();
                out.insert(magic, bound);
            }
        }
        out
    }
}

/// The magic atom for an adorned occurrence: `m_p__α(args at bound
/// positions)`.
fn magic_atom(atom: &Atom, adornment: &Adornment) -> Atom {
    let args: Vec<Term> = adornment
        .bound_positions()
        .into_iter()
        .map(|i| atom.args[i].clone())
        .collect();
    Atom::new(magic_name(&atom.predicate), args)
}

/// Emit the magic rules a rule body's derived occurrences induce under the
/// plain strategy (`m_Bi(bound) :- [head magic,] B1 .. B_{i-1}`), plus the
/// plainly-guarded modified rule. Shared by both rewrites (the
/// supplementary rewrite falls back here per rule) and by the query body
/// (passed as a rule with no head magic whose modified output is skipped).
#[allow(clippy::too_many_arguments)]
fn emit_plain_rule(
    body: &[Atom],
    head: Option<&Atom>,
    head_magic: Option<&Atom>,
    negative_body: &[Atom],
    adornment_of: &dyn Fn(&Atom) -> Option<Adornment>,
    rewritten: &mut Program,
    magic_preds: &mut BTreeSet<String>,
    magic_rule_count: &mut usize,
) {
    for (i, atom) in body.iter().enumerate() {
        let Some(adn) = adornment_of(atom) else {
            continue;
        };
        if adn.is_all_free() {
            continue;
        }
        let m_head = magic_atom(atom, &adn);
        magic_preds.insert(m_head.predicate.clone());
        let mut m_body = Vec::with_capacity(i + 1);
        if let Some(m) = head_magic {
            m_body.push(m.clone());
        }
        m_body.extend_from_slice(&body[..i]);
        rewritten.push(Clause {
            head: m_head,
            body: m_body,
            negative_body: Vec::new(),
        });
        *magic_rule_count += 1;
    }
    if let Some(h) = head {
        let mut m_body = Vec::with_capacity(body.len() + 1);
        if let Some(m) = head_magic {
            m_body.push(m.clone());
        }
        m_body.extend_from_slice(body);
        rewritten.push(Clause {
            head: h.clone(),
            body: m_body,
            negative_body: negative_body.to_vec(),
        });
    }
}

/// Perform the generalized magic-sets rewrite of `program` for `query`.
/// `derived` lists the derived predicates (everything else is base).
pub fn magic_rewrite(
    program: &Program,
    query: &Clause,
    derived: &BTreeSet<String>,
) -> MagicRewrite {
    let adorned = adorn_program(program, query, derived);
    let mut rewritten = Program::default();
    let mut magic_preds = BTreeSet::new();
    let mut magic_rule_count = 0;

    // Look up an atom's adornment (it is an adorned derived predicate) —
    // `None` for base predicates.
    let adornment_of = |atom: &Atom| -> Option<Adornment> {
        adorned.origin.get(&atom.predicate).map(|(_, a)| a.clone())
    };

    // Magic rules from the query body: m_q(bound args) :- B1 .. B_{i-1}.
    // For the first derived atom the prefix is empty and the magic rule
    // degenerates to the seed fact m_q(constants).
    emit_plain_rule(
        &adorned.query.body,
        None,
        None,
        &[],
        &adornment_of,
        &mut rewritten,
        &mut magic_preds,
        &mut magic_rule_count,
    );

    for rule in &adorned.rules {
        let head_adornment = adorned
            .origin
            .get(&rule.head.predicate)
            .map(|(_, a)| a.clone())
            .expect("adorned rules have adorned heads");
        let head_magic = if head_adornment.is_all_free() {
            None
        } else {
            let m = magic_atom(&rule.head, &head_adornment);
            magic_preds.insert(m.predicate.clone());
            Some(m)
        };
        emit_plain_rule(
            &rule.body,
            Some(&rule.head),
            head_magic.as_ref(),
            &rule.negative_body,
            &adornment_of,
            &mut rewritten,
            &mut magic_preds,
            &mut magic_rule_count,
        );
    }

    MagicRewrite {
        program: rewritten,
        query: adorned.query,
        origin: adorned.origin,
        magic_preds,
        magic_rule_count,
    }
}

/// Name of the i-th supplementary predicate of rule `rule_idx` defining
/// `adorned`.
pub fn sup_name(adorned: &str, rule_idx: usize, i: usize) -> String {
    format!("sup{rule_idx}_{i}_{adorned}")
}

/// The *supplementary* magic-sets rewrite (§2.5 lists it next to plain
/// magic sets): each rule's body prefix joins are materialized once in
/// supplementary predicates and shared between the magic rules and the
/// modified rule, instead of being recomputed per magic rule.
///
/// For an adorned rule `p(t̄) :- B1, ..., Bn` with magic guard `m_p`:
///
/// ```text
/// sup_0(V0)   :- m_p(bound t̄).          V0 = bound head variables
/// sup_i(Vi)   :- sup_{i-1}(V{i-1}), Bi.  Vi = variables still needed later
/// m_Bi(..)    :- sup_{i-1}(V{i-1}).      for each derived guarded Bi
/// p(t̄)       :- sup_{n-1}(V{n-1}), Bn.
/// ```
///
/// Rules where supplementaries would be nullary (no bound head variables,
/// or an empty carry set mid-body) and single-atom bodies fall back to the
/// plain rewrite for that rule; answers are identical either way.
pub fn supplementary_magic_rewrite(
    program: &Program,
    query: &Clause,
    derived: &BTreeSet<String>,
) -> MagicRewrite {
    let adorned = adorn_program(program, query, derived);
    let mut rewritten = Program::default();
    let mut magic_preds = BTreeSet::new();
    let mut magic_rule_count = 0;

    let adornment_of = |atom: &Atom| -> Option<Adornment> {
        adorned.origin.get(&atom.predicate).map(|(_, a)| a.clone())
    };

    // Query-body magic rules: identical to the plain rewrite (the query is
    // evaluated once; there is no shared prefix to save).
    emit_plain_rule(
        &adorned.query.body,
        None,
        None,
        &[],
        &adornment_of,
        &mut rewritten,
        &mut magic_preds,
        &mut magic_rule_count,
    );

    for (rule_idx, rule) in adorned.rules.iter().enumerate() {
        let head_adornment = adorned
            .origin
            .get(&rule.head.predicate)
            .map(|(_, a)| a.clone())
            .expect("adorned rules have adorned heads");
        let head_magic = if head_adornment.is_all_free() {
            None
        } else {
            let m = magic_atom(&rule.head, &head_adornment);
            magic_preds.insert(m.predicate.clone());
            Some(m)
        };

        if let Some(plan) = head_magic
            .as_ref()
            .and_then(|m| plan_supplementaries(rule, m, rule_idx))
        {
            // Emit sup chain + magic rules + modified rule.
            for clause in plan.sup_rules {
                rewritten.push(clause);
            }
            for (i, atom) in rule.body.iter().enumerate() {
                let Some(adn) = adornment_of(atom) else {
                    continue;
                };
                if adn.is_all_free() {
                    continue;
                }
                let head = magic_atom(atom, &adn);
                magic_preds.insert(head.predicate.clone());
                rewritten.push(Clause {
                    head,
                    body: vec![plan.sup_atoms[i].clone()],
                    negative_body: Vec::new(),
                });
                magic_rule_count += 1;
            }
            rewritten.push(Clause {
                head: rule.head.clone(),
                body: vec![
                    plan.sup_atoms[rule.body.len() - 1].clone(),
                    rule.body[rule.body.len() - 1].clone(),
                ],
                negative_body: rule.negative_body.clone(),
            });
            continue;
        }

        // Fallback: plain rewrite for this rule.
        emit_plain_rule(
            &rule.body,
            Some(&rule.head),
            head_magic.as_ref(),
            &rule.negative_body,
            &adornment_of,
            &mut rewritten,
            &mut magic_preds,
            &mut magic_rule_count,
        );
    }

    MagicRewrite {
        program: rewritten,
        query: adorned.query,
        origin: adorned.origin,
        magic_preds,
        magic_rule_count,
    }
}

/// The supplementary chain for one rule: `sup_atoms[i]` is the atom
/// `sup_i(Vi)` available *before* evaluating body atom `i`.
struct SupPlan {
    sup_rules: Vec<Clause>,
    sup_atoms: Vec<Atom>,
}

fn plan_supplementaries(rule: &Clause, head_magic: &Atom, rule_idx: usize) -> Option<SupPlan> {
    use hornlog::Term;
    let n = rule.body.len();
    if n < 2 || rule.has_negation() {
        return None;
    }
    // Variables needed at or after position i (body suffix + head).
    let mut needed_after: Vec<BTreeSet<&str>> = vec![BTreeSet::new(); n + 1];
    needed_after[n] = rule.head.variables().into_iter().collect();
    for i in (0..n).rev() {
        let mut set = needed_after[i + 1].clone();
        set.extend(rule.body[i].variables());
        needed_after[i] = set;
    }

    // V0: bound head variables in first-occurrence order.
    let mut carry: Vec<&str> = Vec::new();
    for v in head_magic.variables() {
        if !carry.contains(&v) {
            carry.push(v);
        }
    }
    if carry.is_empty() {
        return None;
    }

    let adorned_head = &rule.head.predicate;
    let mut sup_rules = Vec::with_capacity(n);
    let mut sup_atoms = Vec::with_capacity(n);

    // sup_0(V0) :- m_p(bound head args).
    let sup0 = Atom::new(
        sup_name(adorned_head, rule_idx, 0),
        carry.iter().map(|v| Term::var(*v)).collect(),
    );
    sup_rules.push(Clause {
        head: sup0.clone(),
        body: vec![head_magic.clone()],
        negative_body: Vec::new(),
    });
    sup_atoms.push(sup0);

    // sup_i(Vi) :- sup_{i-1}(V{i-1}), Bi.   for i = 1..n-1
    for i in 1..n {
        let mut avail: Vec<&str> = carry.clone();
        for v in rule.body[i - 1].variables() {
            if !avail.contains(&v) {
                avail.push(v);
            }
        }
        let next_carry: Vec<&str> = avail
            .into_iter()
            .filter(|v| needed_after[i].contains(v))
            .collect();
        if next_carry.is_empty() {
            return None;
        }
        let sup_i = Atom::new(
            sup_name(adorned_head, rule_idx, i),
            next_carry.iter().map(|v| Term::var(*v)).collect(),
        );
        sup_rules.push(Clause {
            head: sup_i.clone(),
            body: vec![sup_atoms[i - 1].clone(), rule.body[i - 1].clone()],
            negative_body: Vec::new(),
        });
        sup_atoms.push(sup_i);
        carry = next_carry;
    }
    Some(SupPlan {
        sup_rules,
        sup_atoms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::parser::{parse_program, parse_query};
    use hornlog::types::AttrType;

    fn derived(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn ancestor() -> Program {
        parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap()
    }

    #[test]
    fn ancestor_bf_rewrite_matches_textbook() {
        let q = parse_query("?- anc(adam, W).").unwrap();
        let rw = magic_rewrite(&ancestor(), &q, &derived(&["anc"]));

        let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
        assert!(
            texts.contains(&"m_anc__bf(adam).".to_string()),
            "seed: {texts:?}"
        );
        assert!(texts.contains(&"anc__bf(X, Y) :- m_anc__bf(X), parent(X, Y).".to_string()));
        assert!(texts
            .contains(&"anc__bf(X, Y) :- m_anc__bf(X), parent(X, Z), anc__bf(Z, Y).".to_string()));
        assert!(texts.contains(&"m_anc__bf(Z) :- m_anc__bf(X), parent(X, Z).".to_string()));
        assert_eq!(rw.program.len(), 4);
        assert_eq!(rw.magic_rule_count, 2);
        assert_eq!(rw.query.body[0].predicate, "anc__bf");
        assert_eq!(rw.magic_preds.iter().collect::<Vec<_>>(), vec!["m_anc__bf"]);
    }

    #[test]
    fn all_free_query_guards_only_inner_occurrences() {
        // With an all-free query there is no restriction to propagate into
        // anc__ff itself, but the full left-to-right SIP still binds Z in
        // the recursive call, producing a (useless but correct) anc__bf
        // sub-computation — the overhead regime of Figure 13's crossover.
        let q = parse_query("?- anc(A, B).").unwrap();
        let rw = magic_rewrite(&ancestor(), &q, &derived(&["anc"]));
        let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
        // The ff rules themselves are unguarded (no m_anc__ff exists).
        assert!(texts.contains(&"anc__ff(X, Y) :- parent(X, Y).".to_string()));
        assert!(texts.contains(&"anc__ff(X, Y) :- parent(X, Z), anc__bf(Z, Y).".to_string()));
        assert!(!rw.magic_preds.contains("m_anc__ff"));
        // The inner bf occurrence is magic-guarded as usual.
        assert!(rw.magic_preds.contains("m_anc__bf"));
        assert!(texts.contains(&"m_anc__bf(Z) :- parent(X, Z).".to_string()));
    }

    #[test]
    fn second_argument_bound_gives_fb_then_bb() {
        let q = parse_query("?- anc(X, eve).").unwrap();
        let rw = magic_rewrite(&ancestor(), &q, &derived(&["anc"]));
        let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
        assert!(texts.contains(&"m_anc__fb(eve).".to_string()));
        // Left-to-right SIP binds Z through parent(X, Z) before the
        // recursive call, so the inner occurrence is fully bound (bb).
        assert!(texts
            .contains(&"anc__fb(X, Y) :- m_anc__fb(Y), parent(X, Z), anc__bb(Z, Y).".to_string()));
        assert!(texts.contains(&"m_anc__bb(Z, Y) :- m_anc__fb(Y), parent(X, Z).".to_string()));
        assert!(rw.magic_preds.contains("m_anc__bb"));
    }

    #[test]
    fn multi_atom_query_chains_magic_through_prefix() {
        let p = parse_program(
            "p(X, Y) :- e(X, Y).\n\
             q(X, Y) :- f(X, Y).\n",
        )
        .unwrap();
        let q = parse_query("?- p(a, X), q(X, Y).").unwrap();
        let rw = magic_rewrite(&p, &q, &derived(&["p", "q"]));
        let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
        assert!(texts.contains(&"m_p__bf(a).".to_string()));
        assert!(texts.contains(&"m_q__bf(X) :- p__bf(a, X).".to_string()));
    }

    #[test]
    fn rewritten_types_cover_adorned_and_magic() {
        let q = parse_query("?- anc(adam, W).").unwrap();
        let rw = magic_rewrite(&ancestor(), &q, &derived(&["anc"]));
        let mut base = TypeMap::new();
        base.insert("parent".into(), vec![AttrType::Sym, AttrType::Sym]);
        base.insert("anc".into(), vec![AttrType::Sym, AttrType::Sym]);
        let types = rw.rewritten_types(&base);
        assert_eq!(types["anc__bf"], vec![AttrType::Sym, AttrType::Sym]);
        assert_eq!(types["m_anc__bf"], vec![AttrType::Sym]);
    }

    #[test]
    fn seed_is_a_fact() {
        let q = parse_query("?- anc(adam, W).").unwrap();
        let rw = magic_rewrite(&ancestor(), &q, &derived(&["anc"]));
        let seeds: Vec<&Clause> = rw.program.clauses.iter().filter(|c| c.is_fact()).collect();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].head.predicate, "m_anc__bf");
    }

    #[test]
    fn same_generation_rewrite_is_well_formed() {
        // The classic same-generation program: sg's recursive rule
        // references sg once, flanked by base atoms.
        let p = parse_program(
            "sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
        )
        .unwrap();
        let q = parse_query("?- sg(john, W).").unwrap();
        let rw = magic_rewrite(&p, &q, &derived(&["sg"]));
        let texts: Vec<String> = rw.program.clauses.iter().map(|c| c.to_string()).collect();
        assert!(texts.contains(&"m_sg__bf(john).".to_string()));
        assert!(texts.contains(&"m_sg__bf(U) :- m_sg__bf(X), up(X, U).".to_string()));
        assert!(texts.contains(
            &"sg__bf(X, Y) :- m_sg__bf(X), up(X, U), sg__bf(U, V), down(V, Y).".to_string()
        ));
    }
}
