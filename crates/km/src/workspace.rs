//! The Workspace D/KB: the memory-resident environment where a user session
//! creates rules and facts before querying them or committing them to the
//! Stored D/KB.

use hornlog::parser::{parse_program, ParseError};
use hornlog::pcg::Pcg;
use hornlog::{Clause, Program};
use std::collections::BTreeSet;

/// In-memory rules and facts, with the analyses the paper assigns to the
/// Workspace D/KB Manager: reachability, clique finding (via `hornlog`),
/// and bookkeeping of which predicates the workspace defines.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    rules: Program,
    facts: Program,
}

impl Workspace {
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Load clauses from source text; facts and rules are separated.
    pub fn load(&mut self, src: &str) -> Result<(), ParseError> {
        let program = parse_program(src)?;
        for clause in program.clauses {
            self.add_clause(clause);
        }
        Ok(())
    }

    pub fn add_clause(&mut self, clause: Clause) {
        if clause.is_fact() {
            self.facts.push(clause);
        } else {
            self.rules.push(clause);
        }
    }

    pub fn rules(&self) -> &Program {
        &self.rules
    }

    pub fn facts(&self) -> &Program {
        &self.facts
    }

    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.facts.is_empty()
    }

    /// Discard all workspace contents (the paper's session flow clears the
    /// workspace after committing it to the Stored D/KB).
    pub fn clear(&mut self) {
        self.rules = Program::default();
        self.facts = Program::default();
    }

    /// Remove and return every fact whose predicate is in `preds` — used
    /// when a commit moves pure fact predicates into stored base relations.
    pub fn drain_facts_for(&mut self, preds: &BTreeSet<String>) -> Vec<Clause> {
        let mut drained = Vec::new();
        self.facts.clauses.retain(|c| {
            if preds.contains(&c.head.predicate) {
                drained.push(c.clone());
                false
            } else {
                true
            }
        });
        drained
    }

    /// Predicates defined by workspace rules.
    pub fn derived_predicates(&self) -> BTreeSet<String> {
        self.rules
            .derived_predicates()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Predicates defined by workspace facts.
    pub fn fact_predicates(&self) -> BTreeSet<String> {
        self.facts
            .facts()
            .map(|c| c.head.predicate.to_string())
            .collect()
    }

    /// The PCG of the workspace rules.
    pub fn pcg(&self) -> Pcg {
        Pcg::build(&self.rules)
    }

    /// Predicates reachable from `start` predicates through workspace rules.
    pub fn reachable_from<'a>(&self, starts: impl Iterator<Item = &'a str>) -> BTreeSet<String> {
        self.pcg().reachable_from_all(starts)
    }

    /// Workspace rules whose head is in `preds`.
    pub fn rules_for_set(&self, preds: &BTreeSet<String>) -> Vec<&Clause> {
        self.rules
            .rules()
            .filter(|r| preds.contains(&r.head.predicate))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_separates_rules_and_facts() {
        let mut ws = Workspace::new();
        ws.load(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
             parent(adam, bob).\n",
        )
        .unwrap();
        assert_eq!(ws.rule_count(), 2);
        assert_eq!(ws.fact_count(), 1);
        assert!(!ws.is_empty());
        assert_eq!(
            ws.derived_predicates().into_iter().collect::<Vec<_>>(),
            vec!["anc".to_string()]
        );
        assert_eq!(
            ws.fact_predicates().into_iter().collect::<Vec<_>>(),
            vec!["parent".to_string()]
        );
    }

    #[test]
    fn reachability_through_workspace_rules() {
        let mut ws = Workspace::new();
        ws.load("a(X) :- b(X).\nb(X) :- c(X).\n").unwrap();
        let r = ws.reachable_from(["a"].into_iter());
        assert_eq!(
            r.into_iter().collect::<Vec<_>>(),
            vec!["b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn clear_empties_workspace() {
        let mut ws = Workspace::new();
        ws.load("p(a).").unwrap();
        ws.clear();
        assert!(ws.is_empty());
    }

    #[test]
    fn rules_for_set_filters_by_head() {
        let mut ws = Workspace::new();
        ws.load("a(X) :- b(X).\nc(X) :- d(X).\n").unwrap();
        let set: BTreeSet<String> = ["a".to_string()].into();
        let rules = ws.rules_for_set(&set);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].head.predicate, "a");
    }

    #[test]
    fn parse_errors_propagate() {
        let mut ws = Workspace::new();
        assert!(ws.load("p(X :- q.").is_err());
        assert!(ws.is_empty());
    }
}
