//! The execution backend: where a session's database interactions run.
//!
//! The testbed paper couples one Knowledge Manager to one relational
//! engine. This module abstracts that coupling so a km [`Session`] can
//! run either on a *private* [`Engine`] (the paper's architecture — one
//! engine per experiment run, exact pre-backend behavior) or on a
//! [`DbSession`] over a *shared* MVCC engine (`SharedEngine`, DESIGN.md
//! §16/§17), letting N sessions compile, evaluate LFPs, and commit
//! workspaces against one live stored D/KB.
//!
//! Two channels make up the backend:
//!
//! * **The durable channel** (the [`Storage`] trait): every statement
//!   that reads or writes the stored D/KB — dictionary maintenance,
//!   rule storage, base-relation loads, the stored-update algorithm.
//!   On the private backend these hit the engine directly; on the
//!   shared backend they run on the session's MVCC snapshot *and* are
//!   recorded for validated replay at commit, so nothing bypasses
//!   first-committer-wins validation.
//!
//! * **The evaluation engine** ([`ExecBackend::eval_engine`]): where
//!   the embedded-SQL LFP loop runs. Evaluation only creates
//!   session-scratch temporaries (the namespaced `all_/new_/delta_`
//!   tables) and never writes durable state, so it runs on the private
//!   engine directly, or on the shared session's snapshot fork — an
//!   MVCC snapshot that never blocks and never observes other
//!   sessions' partial commits.
//!
//! [`Session`]: crate::session::Session

use crate::stored::KmError;
use rdbms::{DbError, DbSession, Engine, ResultSet, Schema, SharedEngine, Value};

/// The durable-statement channel every stored-D/KB operation goes
/// through. Implemented by the raw [`Engine`] (the private backend, and
/// unit tests that drive [`crate::stored::StoredDkb`] directly) and by
/// [`ExecBackend`].
pub trait Storage {
    fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError>;
    fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError>;
    fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, DbError>;
    fn has_table(&mut self, table: &str) -> bool;
    fn table_schema(&mut self, table: &str) -> Result<Schema, DbError>;
    fn table_len(&mut self, table: &str) -> Result<u64, DbError>;
    fn scan_all(&mut self, table: &str) -> Result<Vec<Vec<Value>>, DbError>;
}

impl Storage for Engine {
    fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        Engine::execute(self, sql)
    }
    fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        Engine::execute_script(self, sql)
    }
    fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, DbError> {
        Engine::insert_rows(self, table, rows)
    }
    fn has_table(&mut self, table: &str) -> bool {
        Engine::has_table(self, table)
    }
    fn table_schema(&mut self, table: &str) -> Result<Schema, DbError> {
        Engine::table_schema(self, table)
    }
    fn table_len(&mut self, table: &str) -> Result<u64, DbError> {
        Engine::table_len(self, table)
    }
    fn scan_all(&mut self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        Engine::scan_all(self, table)
    }
}

impl Storage for DbSession {
    fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        DbSession::execute(self, sql)
    }
    fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        DbSession::execute_script(self, sql)
    }
    fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, DbError> {
        DbSession::insert_rows(self, table, rows)
    }
    fn has_table(&mut self, table: &str) -> bool {
        DbSession::has_table(self, table)
    }
    fn table_schema(&mut self, table: &str) -> Result<Schema, DbError> {
        DbSession::table_schema(self, table)
    }
    fn table_len(&mut self, table: &str) -> Result<u64, DbError> {
        DbSession::table_len(self, table)
    }
    fn scan_all(&mut self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        DbSession::scan_all(self, table)
    }
}

/// Where a km session executes: a private engine (default, byte-identical
/// to the pre-backend testbed) or a session on a shared MVCC engine.
pub enum ExecBackend {
    Private(Engine),
    Shared(DbSession),
}

impl ExecBackend {
    /// The engine LFP evaluation runs on. Evaluation is write-free with
    /// respect to the durable store — it only creates session-scratch
    /// `all_/new_/delta_` temporaries — so the shared backend hands out
    /// its MVCC snapshot fork and needs no validation for it.
    pub fn eval_engine(&mut self) -> &mut Engine {
        match self {
            ExecBackend::Private(e) => e,
            ExecBackend::Shared(s) => s.engine(),
        }
    }

    /// Immutable view of the evaluation engine (metrics, stats).
    pub fn eval_engine_ref(&self) -> &Engine {
        match self {
            ExecBackend::Private(e) => e,
            ExecBackend::Shared(s) => s.snapshot(),
        }
    }

    pub fn is_shared(&self) -> bool {
        matches!(self, ExecBackend::Shared(_))
    }

    /// Move a shared session onto the latest committed state. A no-op on
    /// the private backend, whose engine *is* the latest state.
    pub fn refresh(&mut self) -> Result<(), DbError> {
        match self {
            ExecBackend::Private(_) => Ok(()),
            ExecBackend::Shared(s) => s.refresh(),
        }
    }

    /// Begin a transaction on the durable channel: a WAL transaction on
    /// the private engine, a recording MVCC transaction on the shared
    /// session (which refreshes onto the freshest snapshot first).
    pub fn begin(&mut self) -> Result<(), DbError> {
        match self {
            ExecBackend::Private(e) => e.begin(),
            ExecBackend::Shared(s) => s.begin(),
        }
    }

    /// Commit the open transaction. On the shared backend this submits
    /// the recorded statements for first-committer-wins validation and
    /// replay; [`DbError::WriteConflict`] means nothing was applied and
    /// the whole transaction can be retried on the fresh snapshot.
    pub fn commit(&mut self) -> Result<(), DbError> {
        match self {
            ExecBackend::Private(e) => e.commit(),
            ExecBackend::Shared(s) => s.commit(),
        }
    }

    /// Abandon the open transaction.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        match self {
            ExecBackend::Private(e) => e.rollback(),
            ExecBackend::Shared(s) => s.rollback(),
        }
    }

    /// A read-only snapshot backend: a copy-on-write fork of the private
    /// engine, or a fresh session on the shared engine (both paths are
    /// MVCC snapshots of the current committed state — this is the one
    /// fork mechanism, shared with [`DbSession`]).
    pub fn fork_reader(&mut self) -> Result<ExecBackend, DbError> {
        match self {
            ExecBackend::Private(e) => Ok(ExecBackend::Private(e.fork()?)),
            ExecBackend::Shared(s) => Ok(ExecBackend::Shared(s.shared_engine().session())),
        }
    }

    /// The temporary-table namespace this backend's evaluation scratch
    /// tables carry: empty on a private engine (sole owner of its name
    /// space), `s<id>_` on a shared session — so two sessions' semi-naive
    /// `all_/new_/delta_` temporaries can never collide by name.
    pub fn temp_ns(&self) -> String {
        match self {
            ExecBackend::Private(_) => String::new(),
            ExecBackend::Shared(s) => format!("s{}_", s.id()),
        }
    }

    /// The shared engine behind this backend, if any.
    pub fn shared_engine(&self) -> Option<SharedEngine> {
        match self {
            ExecBackend::Private(_) => None,
            ExecBackend::Shared(s) => Some(s.shared_engine()),
        }
    }

    /// Transactions this backend committed / lost to validation (always
    /// zero on the private backend).
    pub fn commit_counters(&self) -> (u64, u64) {
        match self {
            ExecBackend::Private(_) => (0, 0),
            ExecBackend::Shared(s) => (s.commits(), s.conflicts()),
        }
    }
}

impl Storage for ExecBackend {
    fn execute(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::execute(e, sql),
            ExecBackend::Shared(s) => Storage::execute(s, sql),
        }
    }
    fn execute_script(&mut self, sql: &str) -> Result<ResultSet, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::execute_script(e, sql),
            ExecBackend::Shared(s) => Storage::execute_script(s, sql),
        }
    }
    fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::insert_rows(e, table, rows),
            ExecBackend::Shared(s) => Storage::insert_rows(s, table, rows),
        }
    }
    fn has_table(&mut self, table: &str) -> bool {
        match self {
            ExecBackend::Private(e) => Storage::has_table(e, table),
            ExecBackend::Shared(s) => Storage::has_table(s, table),
        }
    }
    fn table_schema(&mut self, table: &str) -> Result<Schema, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::table_schema(e, table),
            ExecBackend::Shared(s) => Storage::table_schema(s, table),
        }
    }
    fn table_len(&mut self, table: &str) -> Result<u64, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::table_len(e, table),
            ExecBackend::Shared(s) => Storage::table_len(s, table),
        }
    }
    fn scan_all(&mut self, table: &str) -> Result<Vec<Vec<Value>>, DbError> {
        match self {
            ExecBackend::Private(e) => Storage::scan_all(e, table),
            ExecBackend::Shared(s) => Storage::scan_all(s, table),
        }
    }
}

/// Run `f` as one transaction on the backend when `transactional`,
/// retrying the whole body on [`DbError::WriteConflict`] (shared backend
/// only — each retry re-runs `f` on the fresh snapshot the failed commit
/// left behind). Without `transactional` the body runs bare, preserving
/// the private backend's non-durable fast path byte-for-byte.
pub fn with_txn<T>(
    backend: &mut ExecBackend,
    transactional: bool,
    mut f: impl FnMut(&mut ExecBackend) -> Result<T, KmError>,
) -> Result<T, KmError> {
    if !transactional {
        return f(backend);
    }
    // First-committer-wins guarantees global progress: every conflict
    // means some other session committed. The cap only guards against a
    // pathological livelock of this one session.
    const MAX_RETRIES: usize = 64;
    let mut last = None;
    for _ in 0..MAX_RETRIES {
        backend.begin()?;
        let out = match f(backend) {
            Ok(out) => out,
            Err(e) => {
                let _ = backend.rollback();
                return Err(e);
            }
        };
        match backend.commit() {
            Ok(()) => return Ok(out),
            Err(DbError::WriteConflict(m)) if backend.is_shared() => {
                last = Some(DbError::WriteConflict(m));
                continue;
            }
            Err(e) => {
                // On a crashed private disk the rollback itself fails;
                // the open transaction is then reconciled by recover().
                let _ = backend.rollback();
                return Err(e.into());
            }
        }
    }
    Err(last.expect("loop ran at least once").into())
}
