//! The Stored D/KB manager.
//!
//! The intensional database lives inside the DBMS as four relations
//! (§4.1 of the paper):
//!
//! * `idb_relname(predname, arity)` and `idb_column(predname, colno,
//!   coltype)` — the intensional data dictionary (column types of derived
//!   predicates);
//! * `rulesource(headpredname, ruletext)` — the source form of every rule,
//!   keyed by head predicate;
//! * `reachablepreds(frompredname, topredname)` — the transitive closure of
//!   the rule base's PCG: the *compiled form* that makes relevant-rule
//!   extraction independent of the total number of stored rules.
//!
//! The extensional dictionary (`edb_relname`, `edb_column`) describes base
//! relations, which are stored as ordinary tables.
//!
//! All access goes through SQL, exactly as in the testbed. `rulesource` and
//! `reachablepreds` are indexed on their lookup columns; the experiments of
//! Figures 7–10 measure the effect.

use crate::backend::Storage;
use crate::util::{attr_to_coltype, sql_in_list, sql_quote};
use hornlog::parser::parse_clause;
use hornlog::pcg::Pcg;
use hornlog::types::{AttrType, TypeMap};
use hornlog::{Clause, Program};
use rdbms::{ColType, DbError, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Errors raised by the Knowledge Manager.
#[derive(Debug)]
pub enum KmError {
    Db(DbError),
    Parse(hornlog::ParseError),
    Type(hornlog::types::TypeError),
    Semantic(String),
    Internal(String),
    /// The stored D/KB's structures contradict each other (see
    /// [`StoredDkb::verify_integrity`]).
    Integrity(String),
    /// An evaluation budget tripped (deadline, cancellation, iteration or
    /// derived-fact cap): the run was abandoned cooperatively with partial
    /// progress attached (see [`crate::runtime::EvalError`]). Boxed: the
    /// partial traces make it much larger than the other variants.
    Eval(Box<crate::runtime::EvalError>),
}

impl std::fmt::Display for KmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KmError::Db(e) => write!(f, "database error: {e}"),
            KmError::Parse(e) => write!(f, "rule parse error: {e}"),
            KmError::Type(e) => write!(f, "type error: {e}"),
            KmError::Semantic(m) => write!(f, "semantic error: {m}"),
            KmError::Internal(m) => write!(f, "internal error: {m}"),
            KmError::Integrity(m) => write!(f, "integrity violation: {m}"),
            KmError::Eval(e) => write!(f, "evaluation aborted: {e}"),
        }
    }
}

impl std::error::Error for KmError {}

impl From<DbError> for KmError {
    fn from(e: DbError) -> Self {
        KmError::Db(e)
    }
}

impl From<hornlog::ParseError> for KmError {
    fn from(e: hornlog::ParseError) -> Self {
        KmError::Parse(e)
    }
}

impl From<hornlog::types::TypeError> for KmError {
    fn from(e: hornlog::types::TypeError) -> Self {
        KmError::Type(e)
    }
}

/// Handle on the intensional/extensional storage structures. Carries only
/// configuration; the relations live in the [`Engine`] passed to each call.
#[derive(Debug, Clone)]
pub struct StoredDkb {
    /// Whether the compiled form (`reachablepreds`) is maintained. Turning
    /// this off reproduces the paper's "without compiled rule storage"
    /// configuration (Figure 15): updates get cheap, extraction gets slow.
    pub compiled_storage: bool,
}

impl Default for StoredDkb {
    fn default() -> Self {
        StoredDkb {
            compiled_storage: true,
        }
    }
}

impl StoredDkb {
    pub fn new(compiled_storage: bool) -> StoredDkb {
        StoredDkb { compiled_storage }
    }

    /// Create the storage structures and their indexes.
    pub fn init(&self, db: &mut impl Storage) -> Result<(), KmError> {
        db.execute_script(
            "CREATE TABLE idb_relname (predname char, arity integer);\
             CREATE TABLE idb_column (predname char, colno integer, coltype char);\
             CREATE TABLE edb_relname (relname char, arity integer);\
             CREATE TABLE edb_column (relname char, colno integer, coltype char);\
             CREATE TABLE rulesource (headpredname char, ruletext char);\
             CREATE INDEX idb_relname_pred ON idb_relname (predname);\
             CREATE INDEX idb_column_pred ON idb_column (predname);\
             CREATE INDEX edb_relname_rel ON edb_relname (relname);\
             CREATE INDEX edb_column_rel ON edb_column (relname);\
             CREATE INDEX rulesource_head ON rulesource (headpredname);",
        )?;
        if self.compiled_storage {
            db.execute_script(
                "CREATE TABLE reachablepreds (frompredname char, topredname char);\
                 CREATE INDEX reachablepreds_from ON reachablepreds (frompredname);",
            )?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Extensional database
    // ------------------------------------------------------------------

    /// Create a base relation with columns `c0..cn` of the given types and
    /// register it in the extensional dictionary.
    pub fn create_base_relation(
        &self,
        db: &mut impl Storage,
        name: &str,
        types: &[AttrType],
    ) -> Result<(), KmError> {
        let cols: Vec<String> = types
            .iter()
            .enumerate()
            .map(|(i, t)| format!("c{i} {}", attr_to_coltype(*t)))
            .collect();
        db.execute(&format!("CREATE TABLE {name} ({})", cols.join(", ")))?;
        db.execute(&format!(
            "INSERT INTO edb_relname VALUES ({}, {})",
            sql_quote(name),
            types.len()
        ))?;
        for (i, t) in types.iter().enumerate() {
            db.execute(&format!(
                "INSERT INTO edb_column VALUES ({}, {}, {})",
                sql_quote(name),
                i,
                sql_quote(&attr_to_coltype(*t).to_string())
            ))?;
        }
        Ok(())
    }

    /// Bulk-load facts (tuples) into a base relation.
    pub fn load_facts(
        &self,
        db: &mut impl Storage,
        name: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<u64, KmError> {
        Ok(db.insert_rows(name, rows)?)
    }

    /// Base relations known to the extensional dictionary.
    pub fn base_relations(&self, db: &mut impl Storage) -> Result<BTreeSet<String>, KmError> {
        let rs = db.execute("SELECT relname FROM edb_relname")?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| r[0].as_str().expect("relname is char").to_string())
            .collect())
    }

    /// Read the extensional dictionary for the given relations.
    pub fn read_edb_dictionary(
        &self,
        db: &mut impl Storage,
        rels: &BTreeSet<String>,
    ) -> Result<TypeMap, KmError> {
        if rels.is_empty() {
            return Ok(TypeMap::new());
        }
        let sql = format!(
            "SELECT v.relname, c.colno, c.coltype FROM edb_relname v, edb_column c \
             WHERE v.relname = c.relname AND v.relname IN ({})",
            sql_in_list(rels.iter().map(String::as_str))
        );
        let rs = db.execute(&sql)?;
        Ok(assemble_dictionary(rs.rows))
    }

    // ------------------------------------------------------------------
    // Intensional database
    // ------------------------------------------------------------------

    /// Register a derived predicate's inferred types in the intensional
    /// dictionary, if not already present.
    pub fn register_derived(
        &self,
        db: &mut impl Storage,
        pred: &str,
        types: &[AttrType],
    ) -> Result<bool, KmError> {
        let rs = db.execute(&format!(
            "SELECT COUNT(*) FROM idb_relname WHERE predname = {}",
            sql_quote(pred)
        ))?;
        if rs.scalar_int() != Some(0) {
            return Ok(false);
        }
        db.execute(&format!(
            "INSERT INTO idb_relname VALUES ({}, {})",
            sql_quote(pred),
            types.len()
        ))?;
        for (i, t) in types.iter().enumerate() {
            db.execute(&format!(
                "INSERT INTO idb_column VALUES ({}, {}, {})",
                sql_quote(pred),
                i,
                sql_quote(&attr_to_coltype(*t).to_string())
            ))?;
        }
        Ok(true)
    }

    /// Register many derived predicates at once: one indexed read to find
    /// the already-registered ones, then chunked bulk inserts for the rest.
    /// Returns how many were new.
    pub fn register_derived_bulk(
        &self,
        db: &mut impl Storage,
        entries: &[(String, Vec<AttrType>)],
    ) -> Result<u64, KmError> {
        if entries.is_empty() {
            return Ok(0);
        }
        let rs = db.execute(&format!(
            "SELECT predname FROM idb_relname WHERE predname IN ({})",
            sql_in_list(entries.iter().map(|(p, _)| p.as_str()))
        ))?;
        let existing: BTreeSet<String> = rs
            .rows
            .into_iter()
            .map(|r| r[0].as_str().expect("predname is char").to_string())
            .collect();
        let fresh: Vec<&(String, Vec<AttrType>)> = entries
            .iter()
            .filter(|(p, _)| !existing.contains(p))
            .collect();
        if fresh.is_empty() {
            return Ok(0);
        }
        for chunk in fresh.chunks(128) {
            let names: Vec<String> = chunk
                .iter()
                .map(|(p, t)| format!("({}, {})", sql_quote(p), t.len()))
                .collect();
            db.execute(&format!(
                "INSERT INTO idb_relname VALUES {}",
                names.join(", ")
            ))?;
            let cols: Vec<String> = chunk
                .iter()
                .flat_map(|(p, types)| {
                    types.iter().enumerate().map(move |(i, t)| {
                        format!(
                            "({}, {}, {})",
                            sql_quote(p),
                            i,
                            sql_quote(&attr_to_coltype(*t).to_string())
                        )
                    })
                })
                .collect();
            for col_chunk in cols.chunks(128) {
                db.execute(&format!(
                    "INSERT INTO idb_column VALUES {}",
                    col_chunk.join(", ")
                ))?;
            }
        }
        Ok(fresh.len() as u64)
    }

    /// The stored source texts of rules whose head is among `heads` — used
    /// to deduplicate bulk rule stores with one indexed read.
    pub fn stored_rule_texts(
        &self,
        db: &mut impl Storage,
        heads: &BTreeSet<String>,
    ) -> Result<BTreeSet<String>, KmError> {
        if heads.is_empty() {
            return Ok(BTreeSet::new());
        }
        let rs = db.execute(&format!(
            "SELECT ruletext FROM rulesource WHERE headpredname IN ({})",
            sql_in_list(heads.iter().map(String::as_str))
        ))?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| r[0].as_str().expect("ruletext is char").to_string())
            .collect())
    }

    /// Read the intensional dictionary for the given predicates — the
    /// `t_read` operation of Test 2 (Figures 9 and 10).
    pub fn read_idb_dictionary(
        &self,
        db: &mut impl Storage,
        preds: &BTreeSet<String>,
    ) -> Result<TypeMap, KmError> {
        if preds.is_empty() {
            return Ok(TypeMap::new());
        }
        let sql = format!(
            "SELECT v.predname, c.colno, c.coltype FROM idb_relname v, idb_column c \
             WHERE v.predname = c.predname AND v.predname IN ({})",
            sql_in_list(preds.iter().map(String::as_str))
        );
        let rs = db.execute(&sql)?;
        Ok(assemble_dictionary(rs.rows))
    }

    /// Store one rule's source form.
    pub fn store_rule_source(&self, db: &mut impl Storage, rule: &Clause) -> Result<(), KmError> {
        db.execute(&format!(
            "INSERT INTO rulesource VALUES ({}, {})",
            sql_quote(&rule.head.predicate),
            sql_quote(&rule.to_string())
        ))?;
        Ok(())
    }

    /// Whether the exact rule text is already stored under its head.
    pub fn has_rule(&self, db: &mut impl Storage, rule: &Clause) -> Result<bool, KmError> {
        let rs = db.execute(&format!(
            "SELECT COUNT(*) FROM rulesource WHERE headpredname = {} AND ruletext = {}",
            sql_quote(&rule.head.predicate),
            sql_quote(&rule.to_string())
        ))?;
        Ok(rs.scalar_int() != Some(0))
    }

    /// Insert `(from, to)` pairs into `reachablepreds`, skipping pairs
    /// already present. One indexed read of the affected `from` rows plus
    /// one bulk insert, rather than a statement per pair. No-op when
    /// compiled storage is off.
    pub fn insert_reachable(
        &self,
        db: &mut impl Storage,
        pairs: &[(String, String)],
    ) -> Result<u64, KmError> {
        if !self.compiled_storage || pairs.is_empty() {
            return Ok(0);
        }
        let froms: BTreeSet<&str> = pairs.iter().map(|(f, _)| f.as_str()).collect();
        let rs = db.execute(&format!(
            "SELECT frompredname, topredname FROM reachablepreds WHERE frompredname IN ({})",
            sql_in_list(froms.into_iter())
        ))?;
        let existing: BTreeSet<(String, String)> = rs
            .rows
            .into_iter()
            .map(|r| {
                (
                    r[0].as_str().expect("frompredname is char").to_string(),
                    r[1].as_str().expect("topredname is char").to_string(),
                )
            })
            .collect();
        let fresh: BTreeSet<&(String, String)> =
            pairs.iter().filter(|p| !existing.contains(*p)).collect();
        let mut added = 0;
        // Chunked multi-row inserts keep statements bounded.
        let fresh: Vec<_> = fresh.into_iter().collect();
        for chunk in fresh.chunks(128) {
            let values: Vec<String> = chunk
                .iter()
                .map(|(f, t)| format!("({}, {})", sql_quote(f), sql_quote(t)))
                .collect();
            let rs = db.execute(&format!(
                "INSERT INTO reachablepreds VALUES {}",
                values.join(", ")
            ))?;
            added += rs.affected;
        }
        Ok(added)
    }

    /// Predicates reachable (per the compiled form) from any of `preds`.
    pub fn reachable_from(
        &self,
        db: &mut impl Storage,
        preds: &BTreeSet<String>,
    ) -> Result<BTreeSet<String>, KmError> {
        if !self.compiled_storage {
            return Err(KmError::Internal(
                "reachable_from requires compiled storage".to_string(),
            ));
        }
        if preds.is_empty() {
            return Ok(BTreeSet::new());
        }
        let sql = format!(
            "SELECT topredname FROM reachablepreds WHERE frompredname IN ({})",
            sql_in_list(preds.iter().map(String::as_str))
        );
        let rs = db.execute(&sql)?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| r[0].as_str().expect("topredname is char").to_string())
            .collect())
    }

    /// Predicates recorded as reaching any of `preds`, as `(from, to)`
    /// pairs with `to` in `preds` — the reverse lookup over the compiled
    /// form (a scan: the index covers the forward direction only). The
    /// incremental closure update uses this to extend the rows of
    /// predicates that already reached an updated rule head.
    pub fn reaching_to(
        &self,
        db: &mut impl Storage,
        preds: &BTreeSet<String>,
    ) -> Result<Vec<(String, String)>, KmError> {
        if !self.compiled_storage || preds.is_empty() {
            return Ok(Vec::new());
        }
        let rs = db.execute(&format!(
            "SELECT frompredname, topredname FROM reachablepreds WHERE topredname IN ({})",
            sql_in_list(preds.iter().map(String::as_str))
        ))?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| {
                (
                    r[0].as_str().expect("frompredname is char").to_string(),
                    r[1].as_str().expect("topredname is char").to_string(),
                )
            })
            .collect())
    }

    /// Extract from the Stored D/KB all rules needed to solve predicates
    /// `preds`: rules whose head is in `preds` or reachable from `preds`
    /// — the paper's §4.1 extraction query. Falls back to iterative
    /// frontier expansion when compiled storage is off.
    pub fn extract_relevant_rules(
        &self,
        db: &mut impl Storage,
        preds: &BTreeSet<String>,
    ) -> Result<Program, KmError> {
        if preds.is_empty() {
            return Ok(Program::default());
        }
        if self.compiled_storage {
            let list = sql_in_list(preds.iter().map(String::as_str));
            let sql = format!(
                "SELECT r.ruletext FROM rulesource r, reachablepreds t \
                 WHERE t.topredname = r.headpredname AND t.frompredname IN ({list}) \
                 UNION \
                 SELECT r.ruletext FROM rulesource r WHERE r.headpredname IN ({list})"
            );
            let rs = db.execute(&sql)?;
            parse_rule_rows(rs.rows)
        } else {
            // Source-only storage: expand the frontier one head at a time,
            // re-querying rulesource (this is the expensive regime the
            // paper warns about).
            let mut program = Program::default();
            let mut seen_rules: BTreeSet<String> = BTreeSet::new();
            let mut visited: BTreeSet<String> = BTreeSet::new();
            let mut frontier: Vec<String> = preds.iter().cloned().collect();
            while let Some(pred) = frontier.pop() {
                if !visited.insert(pred.clone()) {
                    continue;
                }
                let rs = db.execute(&format!(
                    "SELECT ruletext FROM rulesource WHERE headpredname = {}",
                    sql_quote(&pred)
                ))?;
                for row in rs.rows {
                    let text = row[0].as_str().expect("ruletext is char");
                    if !seen_rules.insert(text.to_string()) {
                        continue;
                    }
                    let clause = parse_clause(text)?;
                    for atom in &clause.body {
                        if !visited.contains(&atom.predicate) {
                            frontier.push(atom.predicate.clone());
                        }
                    }
                    program.push(clause);
                }
            }
            Ok(program)
        }
    }

    /// Total number of stored rules (the paper's `R_s`).
    pub fn rule_count(&self, db: &mut impl Storage) -> Result<u64, KmError> {
        let rs = db.execute("SELECT COUNT(*) FROM rulesource")?;
        Ok(rs.scalar_int().unwrap_or(0) as u64)
    }

    /// Number of derived predicates in the dictionary (the paper's `P_s`).
    pub fn derived_count(&self, db: &mut impl Storage) -> Result<u64, KmError> {
        let rs = db.execute("SELECT COUNT(*) FROM idb_relname")?;
        Ok(rs.scalar_int().unwrap_or(0) as u64)
    }

    /// Number of edges in the stored transitive closure.
    pub fn reachable_count(&self, db: &mut impl Storage) -> Result<u64, KmError> {
        if !self.compiled_storage {
            return Ok(0);
        }
        let rs = db.execute("SELECT COUNT(*) FROM reachablepreds")?;
        Ok(rs.scalar_int().unwrap_or(0) as u64)
    }

    // ------------------------------------------------------------------
    // Integrity checking
    // ------------------------------------------------------------------

    /// Cross-check every Stored D/KB structure against the others:
    ///
    /// * each `idb_relname`/`edb_relname` entry has exactly `arity` column
    ///   rows, numbered `0..arity` with valid types, and no column row is
    ///   orphaned or duplicated;
    /// * every extensional dictionary entry names an existing table whose
    ///   schema has the declared arity;
    /// * every `rulesource` row parses and is filed under its actual head
    ///   predicate, which is registered in the intensional dictionary;
    /// * `reachablepreds` (when maintained) is exactly the transitive
    ///   closure of the stored rule base's predicate connection graph,
    ///   rooted at the stored rule heads.
    ///
    /// Returns [`KmError::Integrity`] naming the first violation. The
    /// crash-recovery tests run this after every injected crash point.
    pub fn verify_integrity(&self, db: &mut impl Storage) -> Result<(), KmError> {
        self.check_dictionary(db, "idb_relname", "idb_column", "predname")?;
        self.check_dictionary(db, "edb_relname", "edb_column", "relname")?;

        // Extensional entries describe real tables of the declared arity.
        let rs = db.execute("SELECT relname, arity FROM edb_relname")?;
        for row in rs.rows {
            let name = str_cell("edb_relname.relname", &row[0])?;
            let arity = int_cell("edb_relname.arity", &row[1])?;
            if !db.has_table(name) {
                return violation(format!(
                    "edb_relname lists {name}, but no such table exists"
                ));
            }
            let cols = db.table_schema(name)?.columns().len();
            if cols as i64 != arity {
                return violation(format!(
                    "edb_relname declares {name} with arity {arity}, \
                     but the table has {cols} column(s)"
                ));
            }
        }

        // Rule source: parseable, filed under its head, head registered.
        let rs = db.execute("SELECT predname FROM idb_relname")?;
        let mut registered: BTreeSet<String> = BTreeSet::new();
        for row in rs.rows {
            registered.insert(str_cell("idb_relname.predname", &row[0])?.to_string());
        }
        let rs = db.execute("SELECT headpredname, ruletext FROM rulesource")?;
        let mut rules = Program::default();
        for row in rs.rows {
            let head = str_cell("rulesource.headpredname", &row[0])?;
            let text = str_cell("rulesource.ruletext", &row[1])?;
            let clause = parse_clause(text).map_err(|e| {
                KmError::Integrity(format!("stored rule {text:?} does not parse: {e}"))
            })?;
            if clause.head.predicate != head {
                return violation(format!(
                    "rule {text:?} is filed under head {head}, \
                     but its head predicate is {}",
                    clause.head.predicate
                ));
            }
            if !registered.contains(head) {
                return violation(format!("rule head {head} is not registered in idb_relname"));
            }
            rules.push(clause);
        }

        // Compiled form: exactly the recomputed closure of the rule base.
        if self.compiled_storage {
            let heads: BTreeSet<&str> = rules
                .clauses
                .iter()
                .map(|c| c.head.predicate.as_str())
                .collect();
            let expected: BTreeSet<(String, String)> = Pcg::build(&rules)
                .transitive_closure()
                .into_iter()
                .filter(|(from, _)| heads.contains(from.as_str()))
                .collect();
            let rs = db.execute("SELECT frompredname, topredname FROM reachablepreds")?;
            let mut actual: BTreeSet<(String, String)> = BTreeSet::new();
            for row in rs.rows {
                actual.insert((
                    str_cell("reachablepreds.frompredname", &row[0])?.to_string(),
                    str_cell("reachablepreds.topredname", &row[1])?.to_string(),
                ));
            }
            if actual != expected {
                let missing: Vec<_> = expected.difference(&actual).take(3).collect();
                let extra: Vec<_> = actual.difference(&expected).take(3).collect();
                return violation(format!(
                    "reachablepreds disagrees with the recomputed closure \
                     (missing {missing:?}, extra {extra:?})"
                ));
            }
        }
        Ok(())
    }

    /// Check one relname/column dictionary pair for cross-consistency.
    fn check_dictionary(
        &self,
        db: &mut impl Storage,
        rel_table: &str,
        col_table: &str,
        key: &str,
    ) -> Result<(), KmError> {
        let rs = db.execute(&format!("SELECT {key}, arity FROM {rel_table}"))?;
        let mut arities: BTreeMap<String, i64> = BTreeMap::new();
        for row in rs.rows {
            let name = str_cell(key, &row[0])?.to_string();
            let arity = int_cell("arity", &row[1])?;
            if arity < 0 {
                return violation(format!("{rel_table} declares {name} with arity {arity}"));
            }
            if arities.insert(name.clone(), arity).is_some() {
                return violation(format!("{rel_table} has duplicate entries for {name}"));
            }
        }
        let valid_types = [ColType::Int.to_string(), ColType::Str.to_string()];
        let rs = db.execute(&format!("SELECT {key}, colno, coltype FROM {col_table}"))?;
        let mut cols: BTreeMap<String, BTreeSet<i64>> = BTreeMap::new();
        for row in rs.rows {
            let name = str_cell(key, &row[0])?;
            let colno = int_cell("colno", &row[1])?;
            let coltype = str_cell("coltype", &row[2])?;
            let Some(&arity) = arities.get(name) else {
                return violation(format!(
                    "{col_table} has a row for {name}, which {rel_table} does not list"
                ));
            };
            if colno < 0 || colno >= arity {
                return violation(format!(
                    "{col_table} column {colno} of {name} is outside arity {arity}"
                ));
            }
            if !valid_types.iter().any(|t| t == coltype) {
                return violation(format!(
                    "{col_table} column {colno} of {name} has unknown type {coltype:?}"
                ));
            }
            if !cols.entry(name.to_string()).or_default().insert(colno) {
                return violation(format!("{col_table} lists column {colno} of {name} twice"));
            }
        }
        for (name, arity) in arities {
            let have = cols.get(&name).map_or(0, BTreeSet::len);
            if have as i64 != arity {
                return violation(format!(
                    "{rel_table} declares {name} with arity {arity}, \
                     but {col_table} has {have} column row(s)"
                ));
            }
        }
        Ok(())
    }
}

fn violation(msg: String) -> Result<(), KmError> {
    Err(KmError::Integrity(msg))
}

fn str_cell<'a>(what: &str, v: &'a Value) -> Result<&'a str, KmError> {
    v.as_str()
        .ok_or_else(|| KmError::Integrity(format!("{what} holds a non-string value {v:?}")))
}

fn int_cell(what: &str, v: &Value) -> Result<i64, KmError> {
    v.as_int()
        .ok_or_else(|| KmError::Integrity(format!("{what} holds a non-integer value {v:?}")))
}

/// Group dictionary rows `(name, colno, coltype)` into a [`TypeMap`].
fn assemble_dictionary(rows: Vec<Vec<Value>>) -> TypeMap {
    let mut grouped: std::collections::BTreeMap<String, Vec<(i64, AttrType)>> =
        std::collections::BTreeMap::new();
    for row in rows {
        let name = row[0].as_str().expect("name is char").to_string();
        let colno = row[1].as_int().expect("colno is integer");
        let ty = match row[2].as_str().expect("coltype is char") {
            "integer" => AttrType::Int,
            _ => AttrType::Sym,
        };
        grouped.entry(name).or_default().push((colno, ty));
    }
    grouped
        .into_iter()
        .map(|(name, mut cols)| {
            cols.sort_by_key(|(n, _)| *n);
            (name, cols.into_iter().map(|(_, t)| t).collect())
        })
        .collect()
}

fn parse_rule_rows(rows: Vec<Vec<Value>>) -> Result<Program, KmError> {
    let mut program = Program::default();
    for row in rows {
        let text = row[0].as_str().expect("ruletext is char");
        program.push(parse_clause(text)?);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::parse_clause;
    use rdbms::Engine;

    fn setup(compiled: bool) -> (Engine, StoredDkb) {
        let mut db = Engine::new();
        let stored = StoredDkb::new(compiled);
        stored.init(&mut db).unwrap();
        (db, stored)
    }

    fn preds(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn init_creates_storage_structures() {
        let (db, _) = setup(true);
        for t in [
            "idb_relname",
            "idb_column",
            "edb_relname",
            "edb_column",
            "rulesource",
            "reachablepreds",
        ] {
            assert!(db.has_table(t), "{t} exists");
        }
        let (db, _) = setup(false);
        assert!(!db.has_table("reachablepreds"));
    }

    #[test]
    fn base_relation_roundtrip() {
        let (mut db, stored) = setup(true);
        stored
            .create_base_relation(&mut db, "parent", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        stored
            .load_facts(
                &mut db,
                "parent",
                vec![vec![Value::from("adam"), Value::from("bob")]],
            )
            .unwrap();
        assert_eq!(db.table_len("parent").unwrap(), 1);
        assert_eq!(stored.base_relations(&mut db).unwrap(), preds(&["parent"]));
        let dict = stored
            .read_edb_dictionary(&mut db, &preds(&["parent"]))
            .unwrap();
        assert_eq!(dict["parent"], vec![AttrType::Sym, AttrType::Sym]);
    }

    #[test]
    fn idb_dictionary_roundtrip() {
        let (mut db, stored) = setup(true);
        assert!(stored
            .register_derived(&mut db, "anc", &[AttrType::Sym, AttrType::Sym])
            .unwrap());
        // Second registration is a no-op.
        assert!(!stored
            .register_derived(&mut db, "anc", &[AttrType::Sym, AttrType::Sym])
            .unwrap());
        let dict = stored
            .read_idb_dictionary(&mut db, &preds(&["anc"]))
            .unwrap();
        assert_eq!(dict["anc"], vec![AttrType::Sym, AttrType::Sym]);
        assert_eq!(stored.derived_count(&mut db).unwrap(), 1);
    }

    #[test]
    fn dictionary_column_order_is_by_colno() {
        let (mut db, stored) = setup(true);
        stored
            .register_derived(
                &mut db,
                "mix",
                &[AttrType::Int, AttrType::Sym, AttrType::Int],
            )
            .unwrap();
        let dict = stored
            .read_idb_dictionary(&mut db, &preds(&["mix"]))
            .unwrap();
        assert_eq!(
            dict["mix"],
            vec![AttrType::Int, AttrType::Sym, AttrType::Int]
        );
    }

    #[test]
    fn rule_source_storage_and_lookup() {
        let (mut db, stored) = setup(true);
        let rule = parse_clause("anc(X, Y) :- parent(X, Y).").unwrap();
        assert!(!stored.has_rule(&mut db, &rule).unwrap());
        stored.store_rule_source(&mut db, &rule).unwrap();
        assert!(stored.has_rule(&mut db, &rule).unwrap());
        assert_eq!(stored.rule_count(&mut db).unwrap(), 1);
    }

    #[test]
    fn extraction_with_compiled_storage() {
        let (mut db, stored) = setup(true);
        for text in [
            "a(X) :- b(X).",
            "b(X) :- c(X).",
            "c(X) :- base(X).",
            "unrelated(X) :- other(X).",
        ] {
            stored
                .store_rule_source(&mut db, &parse_clause(text).unwrap())
                .unwrap();
        }
        stored
            .insert_reachable(
                &mut db,
                &[
                    ("a".into(), "b".into()),
                    ("a".into(), "c".into()),
                    ("a".into(), "base".into()),
                    ("b".into(), "c".into()),
                    ("b".into(), "base".into()),
                    ("c".into(), "base".into()),
                    ("unrelated".into(), "other".into()),
                ],
            )
            .unwrap();
        let program = stored
            .extract_relevant_rules(&mut db, &preds(&["a"]))
            .unwrap();
        assert_eq!(program.len(), 3, "unrelated rule not extracted");
        let heads: BTreeSet<&str> = program
            .clauses
            .iter()
            .map(|c| c.head.predicate.as_str())
            .collect();
        assert_eq!(heads, ["a", "b", "c"].into_iter().collect());
    }

    #[test]
    fn extraction_without_compiled_storage_expands_frontier() {
        let (mut db, stored) = setup(false);
        for text in [
            "a(X) :- b(X).",
            "b(X) :- c(X).",
            "unrelated(X) :- other(X).",
        ] {
            stored
                .store_rule_source(&mut db, &parse_clause(text).unwrap())
                .unwrap();
        }
        let program = stored
            .extract_relevant_rules(&mut db, &preds(&["a"]))
            .unwrap();
        assert_eq!(program.len(), 2);
    }

    #[test]
    fn reachable_from_uses_compiled_form() {
        let (mut db, stored) = setup(true);
        stored
            .insert_reachable(
                &mut db,
                &[("a".into(), "b".into()), ("a".into(), "c".into())],
            )
            .unwrap();
        // Duplicate insert is skipped.
        let added = stored
            .insert_reachable(&mut db, &[("a".into(), "b".into())])
            .unwrap();
        assert_eq!(added, 0);
        assert_eq!(stored.reachable_count(&mut db).unwrap(), 2);
        assert_eq!(
            stored.reachable_from(&mut db, &preds(&["a"])).unwrap(),
            preds(&["b", "c"])
        );
    }

    #[test]
    fn rules_with_quotes_in_constants_roundtrip() {
        let (mut db, stored) = setup(true);
        let rule = parse_clause("label(X, \"it's\") :- item(X).").unwrap();
        stored.store_rule_source(&mut db, &rule).unwrap();
        let program = stored
            .extract_relevant_rules(&mut db, &preds(&["label"]))
            .unwrap();
        assert_eq!(program.clauses[0], rule);
    }

    #[test]
    fn integrity_passes_on_healthy_store() {
        let (mut db, stored) = setup(true);
        stored
            .create_base_relation(&mut db, "parent", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        stored
            .register_derived(&mut db, "anc", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        stored
            .store_rule_source(
                &mut db,
                &parse_clause("anc(X, Y) :- parent(X, Y).").unwrap(),
            )
            .unwrap();
        stored
            .insert_reachable(&mut db, &[("anc".into(), "parent".into())])
            .unwrap();
        stored.verify_integrity(&mut db).unwrap();
    }

    #[test]
    fn integrity_catches_orphaned_column_row() {
        let (mut db, stored) = setup(true);
        db.execute("INSERT INTO idb_column VALUES ('ghost', 0, 'char')")
            .unwrap();
        assert!(matches!(
            stored.verify_integrity(&mut db),
            Err(KmError::Integrity(_))
        ));
    }

    #[test]
    fn integrity_catches_missing_column_rows() {
        let (mut db, stored) = setup(true);
        db.execute("INSERT INTO idb_relname VALUES ('half', 2)")
            .unwrap();
        db.execute("INSERT INTO idb_column VALUES ('half', 0, 'char')")
            .unwrap();
        assert!(matches!(
            stored.verify_integrity(&mut db),
            Err(KmError::Integrity(_))
        ));
    }

    #[test]
    fn integrity_catches_stray_reachability_edge() {
        let (mut db, stored) = setup(true);
        db.execute("INSERT INTO reachablepreds VALUES ('ghost', 'x')")
            .unwrap();
        assert!(matches!(
            stored.verify_integrity(&mut db),
            Err(KmError::Integrity(_))
        ));
    }

    #[test]
    fn integrity_catches_unregistered_rule_head() {
        let (mut db, stored) = setup(true);
        stored
            .create_base_relation(&mut db, "parent", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        // Rule stored without registering its head in idb_relname.
        stored
            .store_rule_source(
                &mut db,
                &parse_clause("anc(X, Y) :- parent(X, Y).").unwrap(),
            )
            .unwrap();
        stored
            .insert_reachable(&mut db, &[("anc".into(), "parent".into())])
            .unwrap();
        assert!(matches!(
            stored.verify_integrity(&mut db),
            Err(KmError::Integrity(_))
        ));
    }

    #[test]
    fn empty_extraction_is_empty() {
        let (mut db, stored) = setup(true);
        let program = stored
            .extract_relevant_rules(&mut db, &BTreeSet::new())
            .unwrap();
        assert!(program.is_empty());
    }
}
