//! The testbed session: the control flow of §3.4 and the D/KB query
//! processing algorithm of §4.2, with the per-phase timings the paper's
//! compilation experiments report (`t_setup`, `t_extract`, `t_read`,
//! `t_eol`, `t_gen`).

use crate::backend::{with_txn, ExecBackend, Storage};
use crate::codegen::{generate, CodegenEnv, EvalProgram};
use crate::magic::magic_rewrite;
use crate::runtime::{run_program_governed, EvalLimits, EvalOutcome, LfpStrategy};
use crate::semantics;
use crate::stored::{KmError, StoredDkb};
use crate::update::{update_stored, UpdateTimings};
use crate::workspace::Workspace;
use hornlog::evalgraph::evaluation_order;
use hornlog::pcg::Pcg;
use hornlog::types::AttrType;
use hornlog::{parse_query, Atom, Clause, Program, Term, QUERY_PREDICATE};
use rdbms::{DbError, Engine, ResultSet, SharedEngine, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// Session configuration: the testbed's architectural switches.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Apply the generalized magic-sets rewrite during compilation.
    pub optimize: bool,
    /// LFP evaluation strategy for cliques.
    pub strategy: LfpStrategy,
    /// Maintain the compiled rule storage form (`reachablepreds`).
    pub compiled_storage: bool,
    /// Use the engine's specialized transitive-closure operator for
    /// cliques that match the TC pattern (paper conclusion #8).
    pub special_tc: bool,
    /// When `optimize` is set, use the *supplementary* magic-sets variant
    /// (§2.5): prefix joins are materialized once in supplementary
    /// predicates and shared between magic and modified rules.
    pub supplementary: bool,
    /// Run every [`Session::commit_workspace`] as one write-ahead-logged
    /// engine transaction, so a crash mid-update leaves the Stored D/KB
    /// either fully pre- or fully post-update. Off by default: without it
    /// the engine's I/O path is byte-for-byte the original one.
    pub durability: bool,
    /// Issue the LFP loop's per-iteration SQL as prepared statements
    /// (compile once per fixpoint call, recycle temp tables with TRUNCATE,
    /// server-side termination check) instead of re-parsing strings every
    /// iteration. On by default; the bench harness turns it off for the
    /// ablation.
    pub prepared_sql: bool,
    /// Worker threads for evaluation: partitioned operators inside the
    /// engine, plus the runtime's clique DAG scheduler and per-iteration
    /// delta-statement batches. `0` (the default) inherits the engine's
    /// own default (the `RDBMS_PARALLELISM` environment variable, else
    /// serial); any other value is set on the engine explicitly. Answers
    /// are identical at every setting.
    pub parallelism: usize,
    /// Wall-clock budget per evaluation. Armed on the engine too, so
    /// long-running individual statements observe the same clock. A breach
    /// surfaces as [`KmError::Eval`] with partial traces attached; the
    /// session stays serviceable.
    pub deadline: Option<Duration>,
    /// Maximum LFP iterations per clique per evaluation.
    pub max_iterations: Option<u64>,
    /// Maximum derived tuples installed per evaluation, cumulative across
    /// all cliques and non-recursive nodes.
    pub max_derived_facts: Option<u64>,
    /// Run [`StoredDkb::verify_integrity`] automatically after
    /// [`Session::recover`], recording the result on the engine's
    /// `engine.recovery_verified` gauge. On by default.
    pub verify_on_recover: bool,
    /// Rows per operator batch inside the engine, and the chunk size for
    /// the runtime's temporary-relation loads. `0` (the default) inherits
    /// the engine's own default (the `RDBMS_BATCH_SIZE` environment
    /// variable, else [`rdbms::DEFAULT_BATCH_ROWS`]).
    pub batch_rows: usize,
    /// Byte budget for per-statement operator state inside the engine.
    /// With spilling enabled (the default) joins and sorts whose state
    /// exceeds the budget go through the Grace-partitioned / external-sort
    /// paths instead of failing; answers are identical either way.
    pub memory_budget: Option<u64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            optimize: false,
            strategy: LfpStrategy::SemiNaive,
            compiled_storage: true,
            special_tc: false,
            supplementary: false,
            durability: false,
            prepared_sql: true,
            parallelism: 0,
            deadline: None,
            max_iterations: None,
            max_derived_facts: None,
            verify_on_recover: true,
            batch_rows: 0,
            memory_budget: None,
        }
    }
}

/// Compilation phase timings (the components of the paper's `t_c`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileTimings {
    /// Setting up query-related data structures: parsing, reachability,
    /// clique analysis bookkeeping, and the optimizer rewrite.
    pub t_setup: Duration,
    /// Extracting the relevant rules from the Stored D/KB.
    pub t_extract: Duration,
    /// Reading the D/KB data dictionaries.
    pub t_read: Duration,
    /// Generating the evaluation order list.
    pub t_eol: Duration,
    /// Generating and validating the SQL program (the paper's compile/link
    /// step analog).
    pub t_gen: Duration,
    pub total: Duration,
}

/// A compiled D/KB query, ready for (repeated) execution.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub program: EvalProgram,
    pub timings: CompileTimings,
    /// Number of relevant rules (workspace + extracted), the paper's R_r.
    pub relevant_rules: usize,
    /// Number of relevant derived predicates, the paper's P_dr.
    pub relevant_derived: usize,
    /// Whether the magic rewrite was applied.
    pub optimized: bool,
    /// Variable names of the query head (answer column labels).
    pub answer_vars: Vec<String>,
    /// Every predicate the compiled program depends on — recorded so
    /// precompiled queries can be invalidated by updates (conclusion #3).
    pub relevant_preds: BTreeSet<String>,
}

/// The result of executing a compiled query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub rows: Vec<Vec<Value>>,
    /// Query execution time (the paper's `t_e`).
    pub t_execute: Duration,
    /// Evaluation details (timings, per-node breakdowns). Its `rows` are
    /// moved into [`QueryResult::rows`] rather than stored twice.
    pub outcome: EvalOutcome,
}

impl QueryResult {
    /// Time spent evaluating magic-predicate nodes (Figure 14's "magic
    /// rules evaluation").
    pub fn magic_time(&self) -> Duration {
        self.outcome
            .node_timings
            .iter()
            .filter(|n| n.is_magic)
            .map(|n| n.elapsed)
            .sum()
    }

    /// Time spent evaluating everything else (Figure 14's "modified rules
    /// evaluation").
    pub fn modified_time(&self) -> Duration {
        self.outcome
            .node_timings
            .iter()
            .filter(|n| !n.is_magic)
            .map(|n| n.elapsed)
            .sum()
    }
}

/// A D/KBMS testbed session: an execution backend holding the stored
/// D/KB and base relations, plus the memory-resident workspace.
///
/// The backend is either a private [`Engine`] (the paper's one-user
/// architecture, via [`Session::new`]) or a [`rdbms::DbSession`] on a
/// [`SharedEngine`] (via [`Session::attach`]), which lets N sessions
/// share one live stored D/KB under MVCC snapshot isolation. A shared
/// session reads committed state as of its last snapshot refresh —
/// taken at the start of each compile, each prepared execution, and
/// each commit — and its durable writes (fact loads, base-relation
/// definitions, workspace commits) are validated first-committer-wins
/// and retried transparently on `WriteConflict`.
pub struct Session {
    backend: ExecBackend,
    stored: StoredDkb,
    workspace: Workspace,
    pub config: SessionConfig,
    /// Precompiled queries by name (conclusion #3): each records the
    /// predicates it depends on; stored-D/KB updates touching those
    /// predicates invalidate the entry, forcing recompilation on next use.
    prepared: BTreeMap<String, Prepared>,
    /// How many prepared executions had to recompile first.
    recompilations: u64,
    /// Bumped on every workspace mutation; prepared plans compiled against
    /// an older generation recompile before running (uncommitted rules
    /// must be visible to prepared queries too).
    workspace_gen: u64,
}

struct Prepared {
    source: String,
    compiled: CompiledQuery,
    valid: bool,
    /// Workspace generation the plan was compiled against; any workspace
    /// edit since then makes the plan potentially stale.
    workspace_gen: u64,
}

impl Session {
    /// Create a session with freshly initialized storage structures.
    pub fn new(config: SessionConfig) -> Result<Session, KmError> {
        let mut db = Engine::new();
        if config.durability {
            db.enable_wal();
        }
        if config.parallelism > 0 {
            db.set_parallelism(config.parallelism);
        }
        if config.batch_rows > 0 {
            db.set_batch_rows(config.batch_rows);
        }
        if config.memory_budget.is_some() {
            db.set_memory_budget(config.memory_budget);
        }
        let stored = StoredDkb::new(config.compiled_storage);
        stored.init(&mut db)?;
        Ok(Session {
            backend: ExecBackend::Private(db),
            stored,
            workspace: Workspace::new(),
            config,
            prepared: BTreeMap::new(),
            recompilations: 0,
            workspace_gen: 0,
        })
    }

    pub fn with_defaults() -> Result<Session, KmError> {
        Session::new(SessionConfig::default())
    }

    /// Attach a session to a [`SharedEngine`], so this user's fact loads,
    /// LFP evaluations, and workspace commits run against the same live
    /// stored D/KB as every other attached session.
    ///
    /// The first session to attach bootstraps the D/KB catalog; the
    /// bootstrap itself is a validated transaction, so concurrent
    /// attachers race safely — exactly one creates the tables and the
    /// rest observe them after a refresh. `durability` is forced on
    /// conceptually (every shared commit goes through the engine's WAL
    /// group-commit path); `compiled_storage` is clamped to what the
    /// shared catalog actually maintains, mirroring [`Session::open`].
    pub fn attach(shared: &SharedEngine, config: SessionConfig) -> Result<Session, KmError> {
        let mut backend = ExecBackend::Shared(shared.session());
        let stored = StoredDkb::new(config.compiled_storage);
        loop {
            backend.refresh()?;
            if backend.has_table("rulesource") {
                break;
            }
            backend.begin()?;
            if backend.has_table("rulesource") {
                // A racing attacher committed the catalog between our
                // check and begin's re-snapshot.
                let _ = backend.rollback();
                break;
            }
            match stored.init(&mut backend) {
                Ok(()) => match backend.commit() {
                    Ok(()) => break,
                    Err(DbError::WriteConflict(_)) => continue,
                    Err(e) => return Err(e.into()),
                },
                Err(e) => {
                    let _ = backend.rollback();
                    return Err(e);
                }
            }
        }
        let mut config = config;
        config.compiled_storage = config.compiled_storage && backend.has_table("reachablepreds");
        Ok(Session {
            backend,
            stored: StoredDkb::new(config.compiled_storage),
            workspace: Workspace::new(),
            config,
            prepared: BTreeMap::new(),
            recompilations: 0,
            workspace_gen: 0,
        })
    }

    /// A read-only snapshot of this session: the backend is an MVCC
    /// snapshot of the current committed state ([`ExecBackend::fork_reader`]
    /// — a copy-on-write [`Engine::fork`] on the private backend, a fresh
    /// [`rdbms::DbSession`] on the shared one; both are the same fork
    /// mechanism), the workspace and dictionary handles are cloned. Long
    /// LFP evaluations run on the snapshot without blocking — or ever
    /// observing — updates committed through this session afterwards; the
    /// two sessions share pages until one of them writes. The private
    /// fork carries no WAL: a snapshot is scratch space for evaluation
    /// (its temporaries and `commit_workspace` materializations stay
    /// private), never the durability domain.
    pub fn fork_reader(&mut self) -> Result<Session, KmError> {
        let backend = self.backend.fork_reader()?;
        // The private fork has no WAL, so the snapshot session must not
        // try to run durable commits.
        let mut config = self.config;
        config.durability = false;
        Ok(Session {
            backend,
            stored: self.stored.clone(),
            workspace: self.workspace.clone(),
            config,
            prepared: BTreeMap::new(),
            recompilations: 0,
            workspace_gen: self.workspace_gen,
        })
    }

    // -- plumbing ----------------------------------------------------------

    /// The engine evaluation runs on: the private engine, or the shared
    /// session's snapshot. Use it for inspection (stats, metrics,
    /// profiles) and evaluation-scoped knobs (budgets, fault injectors,
    /// cancellation); on a shared backend its durable state is a
    /// snapshot, and writes made here are *not* validated or committed —
    /// route those through [`Session::db_execute`].
    pub fn engine(&self) -> &Engine {
        self.backend.eval_engine_ref()
    }

    /// Mutable access to the evaluation engine (see [`Session::engine`]).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.backend.eval_engine()
    }

    /// The execution backend itself, for callers that need transaction
    /// control or shared-engine introspection.
    pub fn backend_mut(&mut self) -> &mut ExecBackend {
        &mut self.backend
    }

    /// Execute one SQL statement through the durable channel: directly on
    /// the private engine, or via the shared session's validated MVCC
    /// write path. This is the supported route for out-of-band DDL (e.g.
    /// the bench harness's secondary indexes) that must be visible to —
    /// and conflict-checked against — other attached sessions.
    pub fn db_execute(&mut self, sql: &str) -> Result<ResultSet, KmError> {
        Ok(self.backend.execute(sql)?)
    }

    /// Commits and validation conflicts on the shared backend (both zero
    /// on a private backend).
    pub fn commit_counters(&self) -> (u64, u64) {
        self.backend.commit_counters()
    }

    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    pub fn workspace_mut(&mut self) -> &mut Workspace {
        self.workspace_gen += 1;
        &mut self.workspace
    }

    pub fn stored(&self) -> &StoredDkb {
        &self.stored
    }

    /// Create a base relation (`c0..cn` columns) and register it in the
    /// extensional dictionary. On a shared backend the multi-statement
    /// registration runs as one validated transaction, so other sessions
    /// never observe a table without its dictionary entries.
    pub fn define_base(&mut self, name: &str, types: &[AttrType]) -> Result<(), KmError> {
        let stored = &self.stored;
        let shared = self.backend.is_shared();
        with_txn(&mut self.backend, shared, |b| {
            stored.create_base_relation(b, name, types)
        })
    }

    /// Bulk-load tuples into a base relation. On a shared backend this is
    /// the key-granular MVCC write path: concurrent loads into the same
    /// relation commute conflict-free unless they insert identical rows.
    pub fn load_facts(&mut self, name: &str, rows: Vec<Vec<Value>>) -> Result<u64, KmError> {
        self.stored.load_facts(&mut self.backend, name, rows)
    }

    /// Add rules/facts to the workspace from source text.
    pub fn load_rules(&mut self, src: &str) -> Result<(), KmError> {
        self.workspace_gen += 1;
        Ok(self.workspace.load(src)?)
    }

    /// Commit the workspace rules to the Stored D/KB (§4.3), returning the
    /// phase timings of Test 8/9. The workspace is left intact.
    ///
    /// With [`SessionConfig::durability`] on, the whole update runs as one
    /// engine transaction: on any error the stored D/KB is rolled back to
    /// its pre-commit state and the workspace keeps everything, so the
    /// commit can simply be retried. If the error was an injected crash,
    /// call [`Session::recover`] first.
    pub fn commit_workspace(&mut self) -> Result<UpdateTimings, KmError> {
        let referenced: BTreeSet<String> = self
            .workspace
            .rules()
            .clauses
            .iter()
            .flat_map(|c| c.body.iter().map(|a| a.predicate.clone()))
            .collect();
        // Transactional: when durable (one WAL transaction on the private
        // engine) and always on the shared backend, where the update must
        // be one validated unit — including its dictionary *reads*, so a
        // commit that raced another session's update fails validation and
        // retries the whole algorithm on a fresh snapshot rather than
        // committing decisions made against stale dictionaries.
        let transactional = self.config.durability || self.backend.is_shared();
        let stored = &self.stored;
        let workspace = &self.workspace;
        let timings = with_txn(&mut self.backend, transactional, |b| {
            let base_types = stored.read_edb_dictionary(b, &referenced)?;
            update_stored(b, stored, workspace, &base_types)
        })?;

        // Facts that became stored base relations leave the workspace —
        // they would otherwise shadow the base relation on the next query.
        if !timings.fact_predicates.is_empty() {
            self.workspace.drain_facts_for(&timings.fact_predicates);
        }

        // Invalidate precompiled queries touched by the update: any entry
        // depending on a predicate the workspace rules define or mention,
        // or whose facts were materialized into base relations (a cached
        // program may still read them from compile-time seeds).
        let mut touched: BTreeSet<String> = self
            .workspace
            .rules()
            .rules()
            .flat_map(|r| {
                std::iter::once(r.head.predicate.clone())
                    .chain(r.all_body_atoms().map(|a| a.predicate.clone()))
            })
            .collect();
        touched.extend(timings.fact_predicates.iter().cloned());
        for entry in self.prepared.values_mut() {
            if entry.valid
                && entry
                    .compiled
                    .relevant_preds
                    .intersection(&touched)
                    .next()
                    .is_some()
            {
                entry.valid = false;
            }
        }
        Ok(timings)
    }

    /// Recover the engine after an injected crash: replay committed
    /// transactions from the WAL, undo uncommitted ones, and rebuild the
    /// volatile state (buffer pool, indexes, tuple counts). Every prepared
    /// query is invalidated, since its plan may reference rolled-back
    /// state; the memory-resident workspace survives untouched.
    pub fn recover(&mut self) -> Result<rdbms::RecoveryReport, KmError> {
        let report = match &mut self.backend {
            ExecBackend::Private(e) => e.recover()?,
            ExecBackend::Shared(s) => {
                // Recovery runs once on the live engine (it invalidates
                // every open snapshot's validation baseline); this
                // session then re-snapshots the recovered state.
                let report = s.shared_engine().recover()?;
                s.refresh()?;
                report
            }
        };
        for entry in self.prepared.values_mut() {
            entry.valid = false;
        }
        // Cross-check the recovered dictionary structures unless the
        // caller opted out; the engine gauge records the verdict either
        // way so an operator can see it in the metrics export.
        if self.config.verify_on_recover {
            let verified = self.stored.verify_integrity(&mut self.backend);
            match self.backend.shared_engine() {
                Some(sh) => sh.with_live(|e| e.note_recovery_verified(verified.is_ok())),
                None => self
                    .backend
                    .eval_engine()
                    .note_recovery_verified(verified.is_ok()),
            }
            verified?;
        }
        Ok(report)
    }

    /// Cross-check the stored D/KB's dictionary structures against each
    /// other (see [`StoredDkb::verify_integrity`]). On a shared backend
    /// this checks the session's snapshot.
    pub fn verify_integrity(&mut self) -> Result<(), KmError> {
        self.stored.verify_integrity(&mut self.backend)
    }

    /// Persist the whole D/KB — base relations, dictionaries, rule storage
    /// — to a snapshot file. The memory-resident workspace is not saved
    /// (it is scratch space by design). On a shared backend the snapshot
    /// is taken from the live committed state under the commit lock.
    pub fn save(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), KmError> {
        match &mut self.backend {
            ExecBackend::Private(e) => Ok(e.save_snapshot(path)?),
            ExecBackend::Shared(s) => {
                Ok(s.shared_engine().with_live(|e| e.save_snapshot(&path))?)
            }
        }
    }

    /// Open a session over a previously saved D/KB snapshot.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        config: SessionConfig,
    ) -> Result<Session, KmError> {
        let mut db = Engine::load_snapshot(path)?;
        if config.durability {
            db.enable_wal();
        }
        if config.parallelism > 0 {
            db.set_parallelism(config.parallelism);
        }
        if config.batch_rows > 0 {
            db.set_batch_rows(config.batch_rows);
        }
        if config.memory_budget.is_some() {
            db.set_memory_budget(config.memory_budget);
        }
        for required in ["rulesource", "idb_relname", "idb_column", "edb_relname"] {
            if !db.has_table(required) {
                return Err(KmError::Semantic(format!(
                    "snapshot is not a D/KB session (missing {required}); \
                     it may be a raw engine snapshot"
                )));
            }
        }
        // The snapshot dictates whether the compiled form exists; keep the
        // session config consistent with reality rather than silently
        // running a different architecture than the caller asked for.
        let mut config = config;
        config.compiled_storage = config.compiled_storage && db.has_table("reachablepreds");
        let stored = StoredDkb::new(config.compiled_storage);
        Ok(Session {
            backend: ExecBackend::Private(db),
            stored,
            workspace: Workspace::new(),
            config,
            prepared: BTreeMap::new(),
            recompilations: 0,
            workspace_gen: 0,
        })
    }

    // -- precompiled queries (conclusion #3) ---------------------------------

    /// Compile `query_src` and cache it under `name`. Re-preparing a name
    /// replaces the entry.
    pub fn prepare(&mut self, name: &str, query_src: &str) -> Result<(), KmError> {
        let compiled = self.compile(query_src)?;
        let workspace_gen = self.workspace_gen;
        self.prepared.insert(
            name.to_string(),
            Prepared {
                source: query_src.to_string(),
                compiled,
                valid: true,
                workspace_gen,
            },
        );
        Ok(())
    }

    /// Execute a prepared query, recompiling first if a stored-D/KB update
    /// invalidated it or the workspace changed since compilation.
    pub fn execute_prepared(&mut self, name: &str) -> Result<QueryResult, KmError> {
        // A shared session answers from the latest committed state.
        self.backend.refresh()?;
        let entry = self
            .prepared
            .get(name)
            .ok_or_else(|| KmError::Internal(format!("no prepared query named {name}")))?;
        if !entry.valid || entry.workspace_gen != self.workspace_gen {
            let source = entry.source.clone();
            let compiled = self.compile(&source)?;
            self.recompilations += 1;
            let workspace_gen = self.workspace_gen;
            let entry = self.prepared.get_mut(name).expect("entry exists");
            entry.compiled = compiled;
            entry.valid = true;
            entry.workspace_gen = workspace_gen;
        }
        // Run without cloning the program: the prepared map and the engine
        // are disjoint fields.
        let limits = self.eval_limits();
        self.configure_eval_engine();
        let entry = &self.prepared[name];
        let mut outcome = run_program_governed(
            self.backend.eval_engine(),
            &entry.compiled.program,
            self.config.strategy,
            self.config.special_tc,
            self.config.prepared_sql,
            &limits,
        )?;
        let rows = std::mem::take(&mut outcome.rows);
        Ok(QueryResult {
            rows,
            t_execute: outcome.total,
            outcome,
        })
    }

    /// Whether the named prepared plan is current against both the stored
    /// D/KB and the workspace.
    fn prepared_current(&self, p: &Prepared) -> bool {
        p.valid && p.workspace_gen == self.workspace_gen
    }

    /// Whether the named prepared query is still valid (no recompilation
    /// pending).
    pub fn prepared_is_valid(&self, name: &str) -> Option<bool> {
        self.prepared.get(name).map(|p| self.prepared_current(p))
    }

    /// Total recompilations forced by update invalidation.
    pub fn recompilations(&self) -> u64 {
        self.recompilations
    }

    // -- query processing (§4.2) -------------------------------------------

    /// Compile a query against the workspace and stored D/KBs. A shared
    /// session refreshes onto the latest committed state first; the
    /// compiled program then evaluates against that same snapshot, so a
    /// compile-execute pair is one consistent read.
    pub fn compile(&mut self, query_src: &str) -> Result<CompiledQuery, KmError> {
        self.backend.refresh()?;
        let total_start = Instant::now();
        let mut tm = CompileTimings::default();

        // Parse; ground (boolean) queries answer with the synthetic column
        // 'true'.
        let t = Instant::now();
        let mut query = parse_query(query_src)?;
        if query.head.args.is_empty() {
            query.head = Atom::new(QUERY_PREDICATE, vec![Term::sym("true")]);
        }
        let answer_vars: Vec<String> = query
            .head
            .args
            .iter()
            .map(|a| a.as_var().unwrap_or("answer").to_string())
            .collect();
        tm.t_setup += t.elapsed();

        // Step 1: find the reachable predicate set and relevant rule set,
        // iterating between workspace reachability and stored extraction.
        let mut relevant = Program::default();
        let mut seen_rules: std::collections::HashSet<Clause> = std::collections::HashSet::new();
        let mut preds: BTreeSet<String> = query
            .all_body_atoms()
            .map(|a| a.predicate.clone())
            .collect();
        loop {
            let mut changed = false;

            let t = Instant::now();
            // Workspace rules whose heads are relevant.
            for rule in self.workspace.rules().rules() {
                if preds.contains(&rule.head.predicate) && !seen_rules.contains(rule) {
                    seen_rules.insert(rule.clone());
                    relevant.push(rule.clone());
                    changed = true;
                }
            }
            // Expand reachability over everything gathered so far.
            let pcg = Pcg::build(&relevant);
            for p in pcg.reachable_from_all(preds.iter().map(String::as_str)) {
                if preds.insert(p) {
                    changed = true;
                }
            }
            tm.t_setup += t.elapsed();

            // Extract from the Stored D/KB.
            let t = Instant::now();
            let extracted = self
                .stored
                .extract_relevant_rules(&mut self.backend, &preds)?;
            tm.t_extract += t.elapsed();
            let t = Instant::now();
            for rule in extracted.clauses {
                if !seen_rules.contains(&rule) {
                    seen_rules.insert(rule.clone());
                    preds.insert(rule.head.predicate.clone());
                    relevant.push(rule);
                    changed = true;
                }
            }
            tm.t_setup += t.elapsed();

            if !changed {
                break;
            }
        }

        // Step 4 (dictionaries + semantic checks). Read the extensional
        // dictionary for referenced base relations and the intensional
        // dictionary for relevant derived predicates.
        let t = Instant::now();
        let base_rels = self.stored.base_relations(&mut self.backend)?;
        let referenced_base: BTreeSet<String> = preds.intersection(&base_rels).cloned().collect();
        let mut dict = self
            .stored
            .read_edb_dictionary(&mut self.backend, &referenced_base)?;
        let derived_set: BTreeSet<String> = relevant
            .derived_predicates()
            .into_iter()
            .map(str::to_string)
            .collect();
        for (pred, types) in self
            .stored
            .read_idb_dictionary(&mut self.backend, &derived_set)?
        {
            dict.entry(pred).or_insert(types);
        }
        tm.t_read += t.elapsed();

        let t = Instant::now();
        // Workspace facts for relevant predicates become seeds.
        let seed_facts: Vec<Clause> = self
            .workspace
            .facts()
            .clauses
            .iter()
            .filter(|f| preds.contains(&f.head.predicate))
            .cloned()
            .collect();
        for f in &seed_facts {
            if base_rels.contains(&f.head.predicate) {
                return Err(KmError::Semantic(format!(
                    "workspace fact {} targets stored base relation {}; \
                     commit the workspace (which appends it to the stored \
                     relation) or load it with load_facts instead",
                    f, f.head.predicate
                )));
            }
        }
        let mut check_program = relevant.clone();
        for f in &seed_facts {
            check_program.push(f.clone());
        }
        check_program.push(query.clone());
        let info = semantics::check(&check_program, &dict)?;
        let mut types = info.types;

        // Optimizer (optional): generalized magic sets. Rules using
        // negation are evaluated unoptimized — magic sets over stratified
        // negation needs care the testbed does not implement (the paper
        // leaves negation as future work altogether).
        let uses_negation =
            query.has_negation() || relevant.clauses.iter().any(Clause::has_negation);
        let optimized = self.config.optimize && !uses_negation;
        let (rules_for_eval, eval_query, extra_seeds) = if optimized {
            let rw = if self.config.supplementary {
                crate::magic::supplementary_magic_rewrite(&relevant, &query, &derived_set)
            } else {
                magic_rewrite(&relevant, &query, &derived_set)
            };
            types = rw.rewritten_types(&types);
            let mut rules = Program::default();
            let mut seeds = Vec::new();
            for clause in rw.program.clauses {
                if clause.is_fact() {
                    seeds.push(clause);
                } else {
                    rules.push(clause);
                }
            }
            // A second inference pass types any predicates the rewrite
            // introduced beyond adorned/magic (the supplementary chain).
            types = hornlog::types::infer_types(&rules, &types)?;
            (rules, rw.query, seeds)
        } else {
            (relevant.clone(), query.clone(), Vec::new())
        };
        tm.t_setup += t.elapsed();

        // Steps 2-3: cliques, evaluation graph, evaluation order list.
        let t = Instant::now();
        let mut order_program = rules_for_eval.clone();
        order_program.push(eval_query.clone());
        let order =
            evaluation_order(&order_program).map_err(|e| KmError::Internal(e.to_string()))?;
        tm.t_eol += t.elapsed();

        // Step 5 precompute: code generation + SQL validation.
        let t = Instant::now();
        let mut base_columns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for rel in &referenced_base {
            let schema = self.backend.table_schema(rel)?;
            base_columns.insert(
                rel.clone(),
                schema.columns().iter().map(|c| c.name.clone()).collect(),
            );
        }
        let mut all_seeds = seed_facts;
        all_seeds.extend(extra_seeds);
        let ns = self.backend.temp_ns();
        let env = CodegenEnv {
            types: &types,
            base_preds: &referenced_base,
            base_columns: &base_columns,
            ns: &ns,
        };
        let program = generate(&order, &all_seeds, QUERY_PREDICATE, &env)?;
        validate_program(&program)?;
        tm.t_gen += t.elapsed();

        tm.total = total_start.elapsed();
        Ok(CompiledQuery {
            program,
            timings: tm,
            relevant_rules: seen_rules.len(),
            relevant_derived: derived_set.len(),
            optimized,
            answer_vars,
            relevant_preds: preds,
        })
    }

    /// The evaluation limits this session's config implies.
    fn eval_limits(&self) -> EvalLimits {
        EvalLimits {
            deadline: self.config.deadline,
            max_iterations: self.config.max_iterations,
            max_derived_facts: self.config.max_derived_facts,
        }
    }

    /// Re-apply the session's engine knobs to the evaluation engine. A
    /// shared session's snapshot is re-forked from the live engine on
    /// every refresh, losing per-session settings; this runs before each
    /// evaluation so they stick. Idempotent on the private backend.
    fn configure_eval_engine(&mut self) {
        let cfg = self.config;
        let e = self.backend.eval_engine();
        if cfg.parallelism > 0 {
            e.set_parallelism(cfg.parallelism);
        }
        if cfg.batch_rows > 0 {
            e.set_batch_rows(cfg.batch_rows);
        }
        if cfg.memory_budget.is_some() {
            e.set_memory_budget(cfg.memory_budget);
        }
    }

    /// Execute a compiled query on the evaluation engine — the snapshot
    /// the query was compiled against, for a shared session.
    pub fn execute(&mut self, compiled: &CompiledQuery) -> Result<QueryResult, KmError> {
        let limits = self.eval_limits();
        self.configure_eval_engine();
        let mut outcome = run_program_governed(
            self.backend.eval_engine(),
            &compiled.program,
            self.config.strategy,
            self.config.special_tc,
            self.config.prepared_sql,
            &limits,
        )?;
        let rows = std::mem::take(&mut outcome.rows);
        Ok(QueryResult {
            rows,
            t_execute: outcome.total,
            outcome,
        })
    }

    /// Compile and execute in one step.
    pub fn query(&mut self, query_src: &str) -> Result<(CompiledQuery, QueryResult), KmError> {
        let compiled = self.compile(query_src)?;
        let result = self.execute(&compiled)?;
        Ok((compiled, result))
    }

    /// Compile a query and render the generated program — the evaluation
    /// order list with every SQL statement the runtime will execute. This
    /// is the testbed's demonstration-platform view of compilation.
    pub fn explain(&mut self, query_src: &str) -> Result<Vec<String>, KmError> {
        let compiled = self.compile(query_src)?;
        let mut out = Vec::new();
        out.push(format!(
            "-- {} relevant rule(s), {} derived predicate(s), magic sets: {}",
            compiled.relevant_rules, compiled.relevant_derived, compiled.optimized
        ));
        for (pred, rows) in &compiled.program.seeds {
            out.push(format!("-- seed {pred}: {} fact(s)", rows.len()));
        }
        for (i, node) in compiled.program.nodes.iter().enumerate() {
            match node {
                crate::codegen::ProgNode::Predicate { pred, rules } => {
                    out.push(format!("[{i}] predicate {pred}"));
                    for r in rules {
                        out.push(format!("      {}", r.full_sql));
                    }
                }
                crate::codegen::ProgNode::Clique {
                    preds,
                    exit_rules,
                    recursive_rules,
                    tc_of,
                } => {
                    out.push(format!("[{i}] clique {{{}}}", preds.join(", ")));
                    if let Some(src) = tc_of {
                        out.push(format!("      (transitive closure of {src})"));
                    }
                    for r in exit_rules {
                        out.push(format!("      exit: {}", r.full_sql));
                    }
                    for r in recursive_rules {
                        out.push(format!("      rec:  {}", r.full_sql));
                        for v in &r.delta_variants {
                            out.push(format!("      Δ:    {v}"));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A km session attached to a [`SharedEngine`] (built with
/// [`Session::attach`]). Same type as [`Session`] — every session runs
/// on an [`ExecBackend`]; the alias names the multi-user configuration.
pub type SharedSession = Session;

/// "Link step": parse every generated SQL statement once so malformed
/// codegen output fails at compile time, not mid-evaluation.
fn validate_program(program: &EvalProgram) -> Result<(), KmError> {
    let check = |sql: &str| -> Result<(), KmError> {
        rdbms::sql::parser::parse_stmt(sql)
            .map(|_| ())
            .map_err(|e| KmError::Internal(format!("generated SQL failed to parse: {e}: {sql}")))
    };
    for node in &program.nodes {
        match node {
            crate::codegen::ProgNode::Predicate { rules, .. } => {
                for r in rules {
                    check(&r.full_sql)?;
                }
            }
            crate::codegen::ProgNode::Clique {
                exit_rules,
                recursive_rules,
                ..
            } => {
                for r in exit_rules {
                    check(&r.full_sql)?;
                }
                for r in recursive_rules {
                    check(&r.full_sql)?;
                    for v in &r.delta_variants {
                        check(v)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Convenience: attribute types for an all-`char` binary relation (the
/// shape of every graph workload in the paper).
pub fn binary_sym() -> Vec<AttrType> {
    vec![AttrType::Sym, AttrType::Sym]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_rows(n: usize) -> Vec<Vec<Value>> {
        (0..n - 1)
            .map(|i| {
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(format!("a{}", i + 1)),
                ]
            })
            .collect()
    }

    fn ancestor_session(optimize: bool) -> Session {
        let mut s = Session::new(SessionConfig {
            optimize,
            ..SessionConfig::default()
        })
        .unwrap();
        s.define_base("parent", &binary_sym()).unwrap();
        s.load_facts("parent", chain_rows(8)).unwrap();
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        s
    }

    #[test]
    fn end_to_end_ancestor_unoptimized() {
        let mut s = ancestor_session(false);
        let (compiled, result) = s.query("?- anc(a2, W).").unwrap();
        assert_eq!(compiled.relevant_rules, 2);
        assert_eq!(compiled.relevant_derived, 1);
        assert!(!compiled.optimized);
        assert_eq!(compiled.answer_vars, vec!["W"]);
        let expected: Vec<Vec<Value>> =
            (3..8).map(|i| vec![Value::from(format!("a{i}"))]).collect();
        assert_eq!(result.rows, expected);
    }

    #[test]
    fn end_to_end_ancestor_with_magic() {
        let mut s = ancestor_session(true);
        let (compiled, result) = s.query("?- anc(a2, W).").unwrap();
        assert!(compiled.optimized);
        let expected: Vec<Vec<Value>> =
            (3..8).map(|i| vec![Value::from(format!("a{i}"))]).collect();
        assert_eq!(result.rows, expected);
        // Magic restricted the computation: strictly fewer tuples than the
        // full closure (C(8,2) = 28) plus query.
        assert!(result.outcome.breakdown.tuples_produced < 28);
        // Figure 14's two LFP computations are visible.
        assert!(result.magic_time() > Duration::ZERO);
        assert!(result.modified_time() > Duration::ZERO);
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        for query in ["?- anc(a0, W).", "?- anc(V, W).", "?- anc(V, a7)."] {
            let mut plain = ancestor_session(false);
            let mut magic = ancestor_session(true);
            let (_, r1) = plain.query(query).unwrap();
            let (_, r2) = magic.query(query).unwrap();
            assert_eq!(r1.rows, r2.rows, "query {query}");
        }
    }

    #[test]
    fn naive_strategy_matches_seminaive() {
        let mut naive = ancestor_session(false);
        naive.config.strategy = LfpStrategy::Naive;
        let mut semi = ancestor_session(false);
        let (_, r1) = naive.query("?- anc(a0, W).").unwrap();
        let (_, r2) = semi.query("?- anc(a0, W).").unwrap();
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn ground_query_returns_boolean_row() {
        let mut s = ancestor_session(false);
        let (_, yes) = s.query("?- anc(a0, a5).").unwrap();
        assert_eq!(yes.rows, vec![vec![Value::from("true")]]);
        let (_, no) = s.query("?- anc(a5, a0).").unwrap();
        assert!(no.rows.is_empty());
    }

    #[test]
    fn stored_rules_participate_after_commit() {
        let mut s = ancestor_session(false);
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        // The workspace is empty; the rules come from the Stored D/KB.
        let (compiled, result) = s.query("?- anc(a0, W).").unwrap();
        assert_eq!(compiled.relevant_rules, 2);
        assert_eq!(result.rows.len(), 7);
    }

    #[test]
    fn workspace_rules_can_reference_stored_rules() {
        let mut s = ancestor_session(false);
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        s.load_rules("far(X, Y) :- anc(X, Y).\n").unwrap();
        let (compiled, result) = s.query("?- far(a0, W).").unwrap();
        assert_eq!(compiled.relevant_rules, 3, "stored anc rules extracted");
        assert_eq!(result.rows.len(), 7);
    }

    #[test]
    fn compile_timings_are_populated() {
        let mut s = ancestor_session(false);
        s.commit_workspace().unwrap();
        s.workspace_mut().clear();
        let compiled = s.compile("?- anc(a0, W).").unwrap();
        let tm = &compiled.timings;
        assert!(tm.total >= tm.t_extract);
        assert!(tm.t_extract > Duration::ZERO, "stored extraction happened");
        assert!(tm.t_read > Duration::ZERO);
        assert!(tm.t_gen > Duration::ZERO);
    }

    #[test]
    fn query_on_missing_predicate_errors() {
        let mut s = ancestor_session(false);
        assert!(matches!(
            s.query("?- nosuch(X, Y)."),
            Err(KmError::Semantic(_))
        ));
    }

    #[test]
    fn workspace_facts_seed_queries() {
        let mut s = Session::with_defaults().unwrap();
        s.load_rules(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             edge(a, b).\n\
             edge(b, c).\n",
        )
        .unwrap();
        let (_, result) = s.query("?- path(a, W).").unwrap();
        assert_eq!(
            result.rows,
            vec![vec![Value::from("b")], vec![Value::from("c")]]
        );
    }

    #[test]
    fn workspace_fact_on_base_relation_rejected() {
        let mut s = ancestor_session(false);
        s.load_rules("parent(zz, a0).").unwrap();
        assert!(matches!(
            s.query("?- anc(zz, W)."),
            Err(KmError::Semantic(_))
        ));
    }

    #[test]
    fn compiled_query_is_reusable() {
        let mut s = ancestor_session(false);
        let compiled = s.compile("?- anc(a0, W).").unwrap();
        let r1 = s.execute(&compiled).unwrap();
        let r2 = s.execute(&compiled).unwrap();
        assert_eq!(r1.rows, r2.rows);
    }

    #[test]
    fn session_budget_trips_and_session_survives() {
        let mut s = Session::new(SessionConfig {
            max_derived_facts: Some(5),
            ..SessionConfig::default()
        })
        .unwrap();
        s.define_base("parent", &binary_sym()).unwrap();
        s.load_facts("parent", chain_rows(8)).unwrap();
        s.load_rules(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let err = s.query("?- anc(A, B).").unwrap_err();
        assert!(matches!(err, KmError::Eval(_)), "got {err:?}");
        // Lifting the budget on the same session yields the full answer:
        // the governed abort left the engine serviceable.
        s.config.max_derived_facts = None;
        let (_, r) = s.query("?- anc(A, B).").unwrap();
        assert_eq!(r.rows.len(), 28);
    }

    #[test]
    fn multi_atom_query() {
        let mut s = ancestor_session(false);
        // Pairs (X, Y) where X reaches a4 and a4 reaches Y.
        let (_, result) = s.query("?- anc(X, a4), anc(a4, Y).").unwrap();
        // X in a0..a3 (4 options), Y in a5..a7 (3 options) = 12 rows.
        assert_eq!(result.rows.len(), 12);
        assert_eq!(result.rows[0].len(), 2);
    }
}
