//! The Run Time Library: bottom-up LFP evaluation over the SQL interface.
//!
//! Two strategies, as in the testbed:
//!
//! * **Naive** — every iteration re-evaluates the full right-hand side of
//!   each recursive equation against the accumulated relations, then runs a
//!   set-difference termination check.
//! * **Semi-naive** — the differential method: each iteration evaluates,
//!   per recursive rule and per occurrence of a clique predicate, a variant
//!   reading that occurrence from the delta table; only genuinely new
//!   tuples feed the next delta.
//!
//! Both strategies run as "an application program against the DBMS": every
//! step is a SQL statement, temporary tables are created and dropped each
//! iteration, and the termination check is a set difference — the three
//! cost categories of the paper's Table 5, which we time and count
//! separately in [`LfpBreakdown`].

use crate::codegen::{all_table, delta_table, new_table, EvalProgram, ProgNode, RuleSql};
use crate::stored::KmError;
use crate::util::attr_to_coltype;
use hornlog::types::AttrType;
use rdbms::{BudgetKind, DbError, Engine, ResultSet, StmtId, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// LFP evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfpStrategy {
    Naive,
    SemiNaive,
}

/// Per-category cost breakdown of LFP evaluation (the paper's Table 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct LfpBreakdown {
    /// Creating and dropping temporary tables.
    pub t_temp_tables: Duration,
    /// Evaluating rule right-hand sides (or their differentials) and
    /// installing new tuples.
    pub t_eval_rhs: Duration,
    /// Termination checks (set differences).
    pub t_termination: Duration,
    /// Temp-table DDL statements issued.
    pub n_temp_ops: u64,
    /// RHS evaluation statements issued.
    pub n_eval_stmts: u64,
    /// Termination-check statements issued.
    pub n_term_checks: u64,
    /// LFP iterations run (cliques only).
    pub iterations: u64,
    /// New tuples installed into derived tables.
    pub tuples_produced: u64,
}

impl LfpBreakdown {
    pub fn total_time(&self) -> Duration {
        self.t_temp_tables + self.t_eval_rhs + self.t_termination
    }

    fn absorb(&mut self, other: &LfpBreakdown) {
        self.t_temp_tables += other.t_temp_tables;
        self.t_eval_rhs += other.t_eval_rhs;
        self.t_termination += other.t_termination;
        self.n_temp_ops += other.n_temp_ops;
        self.n_eval_stmts += other.n_eval_stmts;
        self.n_term_checks += other.n_term_checks;
        self.iterations += other.iterations;
        self.tuples_produced += other.tuples_produced;
    }
}

/// One LFP iteration of one clique, as observed at the SQL boundary.
#[derive(Debug, Clone, Default)]
pub struct IterationTrace {
    /// 1-based iteration number within the clique.
    pub iteration: u64,
    /// Per-predicate cardinality of the genuinely new tuples this
    /// iteration produced (the delta), in clique-predicate order.
    pub delta_cards: Vec<(String, u64)>,
    /// Temp-table recycling (CREATE/DROP/TRUNCATE) time this iteration.
    pub t_temp: Duration,
    /// RHS (or differential) evaluation time this iteration.
    pub t_eval: Duration,
    /// Termination-check time this iteration.
    pub t_term: Duration,
    /// Wall time of the whole iteration — the three phases plus loop glue.
    pub t_total: Duration,
    /// Plan-cache hits observed at the engine during this iteration.
    pub plan_cache_hits: u64,
    /// Plan-cache (re)compilations observed during this iteration.
    pub plan_cache_misses: u64,
    /// Cardinality-drift replans observed during this iteration.
    pub plan_replans: u64,
    /// SQL statements executed during this iteration.
    pub statements: u64,
    /// Per-worker busy time of the RHS evaluation phase when the delta
    /// statements were dispatched to worker threads (empty when they ran
    /// inline on the clique's own thread, i.e. at parallelism 1). The
    /// workers serialize at the engine, so these overlap with `t_eval`
    /// rather than summing to it.
    pub worker_eval: Vec<Duration>,
}

/// Per-clique LFP trace: setup cost plus one [`IterationTrace`] per round.
///
/// `t_setup + Σ iterations[i].t_total == total` by construction, so a
/// consumer can re-derive the clique's wall time from the parts.
#[derive(Debug, Clone, Default)]
pub struct CliqueTrace {
    pub predicates: Vec<String>,
    /// Whether this clique computes magic predicates (`m_` prefix) —
    /// Figure 14 attributes LFP time to the two computations this way.
    pub is_magic: bool,
    /// Wall time of the whole clique: setup, iterations, teardown.
    pub total: Duration,
    /// `total` minus the summed iteration wall times: table creation,
    /// statement preparation, exit rules, final drops.
    pub t_setup: Duration,
    /// Index of the scheduler worker that evaluated this clique (0 when
    /// the evaluation order ran serially).
    pub worker: usize,
    pub iterations: Vec<IterationTrace>,
}

/// Timing of one evaluation-order node.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    pub predicates: Vec<String>,
    pub is_clique: bool,
    /// Whether this node evaluates magic predicates (name prefix `m_`) —
    /// Figure 14 separates the two LFP computations this way.
    pub is_magic: bool,
    pub elapsed: Duration,
    pub breakdown: LfpBreakdown,
    /// Index of the scheduler worker that evaluated this node (0 when the
    /// evaluation order ran serially). Node wall times overlap when the
    /// scheduler runs independent nodes concurrently, so summing
    /// `elapsed` across nodes can exceed the outcome's `total`.
    pub worker: usize,
}

/// The outcome of running a generated program.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The query answer (distinct rows, sorted for determinism).
    pub rows: Vec<Vec<Value>>,
    /// Wall-clock time of the whole run.
    pub total: Duration,
    /// Per-node timings, in evaluation order.
    pub node_timings: Vec<NodeTiming>,
    /// Per-clique, per-iteration traces, in evaluation order (one entry
    /// per clique node; non-recursive nodes do not iterate).
    pub clique_traces: Vec<CliqueTrace>,
    /// Aggregated LFP breakdown over all nodes.
    pub breakdown: LfpBreakdown,
}

/// Per-evaluation resource limits, all off by default. The deadline is
/// relative to the start of the evaluation and is armed on the engine too
/// ([`Engine::set_eval_deadline`]), so long-running *statements* observe
/// the same clock as the LFP loop around them.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalLimits {
    /// Wall-clock budget for the whole evaluation.
    pub deadline: Option<Duration>,
    /// Maximum LFP iterations per clique.
    pub max_iterations: Option<u64>,
    /// Maximum derived tuples installed across the whole evaluation
    /// (seeds, exit rules, and every iteration's new tuples).
    pub max_derived_facts: Option<u64>,
}

/// Which resource an [`EvalError::Budget`] tripped on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalResource {
    /// Cooperative cancellation (the engine's cancel flag).
    Canceled,
    /// The wall-clock deadline passed.
    Deadline,
    /// Per-clique LFP iteration budget.
    Iterations,
    /// Whole-evaluation derived-fact budget.
    DerivedFacts,
    /// Engine-level row-processing budget.
    Rows,
    /// Engine-level operator memory budget.
    Memory,
}

impl std::fmt::Display for EvalResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalResource::Canceled => write!(f, "cancellation"),
            EvalResource::Deadline => write!(f, "deadline"),
            EvalResource::Iterations => write!(f, "iteration budget"),
            EvalResource::DerivedFacts => write!(f, "derived-fact budget"),
            EvalResource::Rows => write!(f, "row budget"),
            EvalResource::Memory => write!(f, "memory budget"),
        }
    }
}

/// What the evaluation had produced when a budget tripped — the same trace
/// machinery a successful [`EvalOutcome`] carries, minus the answer rows.
/// Completed evaluation-order nodes appear in full; the clique that was
/// mid-fixpoint contributes its iterations so far as a final
/// [`CliqueTrace`] with zero `total`/`t_setup` (wall time is unknown at
/// the abort point).
#[derive(Debug, Clone, Default)]
pub struct PartialProgress {
    pub breakdown: LfpBreakdown,
    pub node_timings: Vec<NodeTiming>,
    pub clique_traces: Vec<CliqueTrace>,
}

/// A typed evaluation failure: the LFP run was abandoned cooperatively.
/// The engine itself stays healthy — the governed entry point
/// ([`run_program_governed`]) has already dropped the run's temporaries
/// and acknowledged any cancellation before this error reaches the caller.
#[derive(Debug, Clone)]
pub enum EvalError {
    Budget {
        resource: EvalResource,
        /// The configured limit (0 for cancellation/deadline breaches
        /// reported by the engine, where no count applies).
        limit: u64,
        /// Consumption observed at the breach.
        used: u64,
        partial: Box<PartialProgress>,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Budget {
                resource,
                limit,
                used,
                ..
            } => write!(
                f,
                "evaluation exceeded {resource} (used {used}, limit {limit})"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// A breach observed by [`EvalCtl`], before partial progress is attached.
struct CtlBreach {
    resource: EvalResource,
    limit: u64,
    used: u64,
}

/// The km-level evaluation governor: an absolute deadline, a per-clique
/// iteration cap, and a cumulative derived-fact budget shared (atomically)
/// by every node the scheduler may be running concurrently.
struct EvalCtl {
    started: Instant,
    deadline: Option<Instant>,
    max_iterations: Option<u64>,
    max_derived_facts: Option<u64>,
    derived: AtomicU64,
}

impl EvalCtl {
    fn new(limits: &EvalLimits, deadline: Option<Instant>) -> EvalCtl {
        EvalCtl {
            started: Instant::now(),
            deadline,
            max_iterations: limits.max_iterations,
            max_derived_facts: limits.max_derived_facts,
            derived: AtomicU64::new(0),
        }
    }

    fn check_deadline(&self) -> Result<(), CtlBreach> {
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(CtlBreach {
                    resource: EvalResource::Deadline,
                    limit: d.saturating_duration_since(self.started).as_millis() as u64,
                    used: self.started.elapsed().as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Loop-top check: deadline plus the per-clique iteration cap.
    /// `iters` is the 1-based iteration about to run, so a cap of `n`
    /// admits exactly `n` iterations.
    fn check_iters(&self, iters: u64) -> Result<(), CtlBreach> {
        if let Some(m) = self.max_iterations {
            if iters > m {
                return Err(CtlBreach {
                    resource: EvalResource::Iterations,
                    limit: m,
                    used: iters,
                });
            }
        }
        self.check_deadline()
    }

    /// Charge `n` freshly installed derived tuples against the cumulative
    /// budget.
    fn charge_facts(&self, n: u64) -> Result<(), CtlBreach> {
        if n == 0 {
            return Ok(());
        }
        let used = self.derived.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(m) = self.max_derived_facts {
            if used > m {
                return Err(CtlBreach {
                    resource: EvalResource::DerivedFacts,
                    limit: m,
                    used,
                });
            }
        }
        Ok(())
    }
}

/// Wrap a breach and the progress made so far into the typed error.
fn budget_err(br: CtlBreach, partial: PartialProgress) -> KmError {
    KmError::Eval(Box::new(EvalError::Budget {
        resource: br.resource,
        limit: br.limit,
        used: br.used,
        partial: Box::new(partial),
    }))
}

/// Partial progress of a clique that was mid-fixpoint: its iterations so
/// far, packaged as the final clique trace.
fn clique_partial(
    types: &BTreeMap<&str, &[AttrType]>,
    b: &LfpBreakdown,
    traces: &mut Vec<IterationTrace>,
) -> PartialProgress {
    let predicates: Vec<String> = types.keys().map(|s| s.to_string()).collect();
    let is_magic = !predicates.is_empty() && predicates.iter().all(|p| p.starts_with("m_"));
    PartialProgress {
        breakdown: *b,
        node_timings: Vec::new(),
        clique_traces: vec![CliqueTrace {
            predicates,
            is_magic,
            total: Duration::ZERO,
            t_setup: Duration::ZERO,
            worker: 0,
            iterations: std::mem::take(traces),
        }],
    }
}

/// Promote an error leaving the evaluation into its governed form:
/// engine-level budget breaches ([`DbError::Budget`]) become
/// [`EvalError::Budget`] and clique-local partial progress is merged
/// behind the progress of the nodes that had already completed. Other
/// errors pass through untouched.
fn promote(e: KmError, mut done: PartialProgress) -> KmError {
    match e {
        KmError::Db(DbError::Budget(br)) => {
            let resource = match br.kind {
                BudgetKind::Canceled => EvalResource::Canceled,
                BudgetKind::Deadline => EvalResource::Deadline,
                BudgetKind::Rows => EvalResource::Rows,
                BudgetKind::Memory => EvalResource::Memory,
            };
            budget_err(
                CtlBreach {
                    resource,
                    limit: br.limit,
                    used: br.used,
                },
                done,
            )
        }
        KmError::Eval(mut boxed) => {
            let EvalError::Budget { partial, .. } = boxed.as_mut();
            done.breakdown.absorb(&partial.breakdown);
            done.node_timings.append(&mut partial.node_timings);
            done.clique_traces.append(&mut partial.clique_traces);
            **partial = done;
            KmError::Eval(boxed)
        }
        other => other,
    }
}

fn timed<R>(acc: &mut Duration, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let r = f();
    *acc += start.elapsed();
    r
}

fn create_table_sql(name: &str, types: &[AttrType]) -> String {
    let cols: Vec<String> = types
        .iter()
        .enumerate()
        .map(|(i, t)| format!("c{i} {}", attr_to_coltype(*t)))
        .collect();
    format!("CREATE TEMP TABLE {name} ({})", cols.join(", "))
}

/// Server-side "rows of `new` not yet in `all`, appended to `target`".
/// The `NOT EXISTS` form correlates on every column, so with the matching
/// full-key index (see [`term_index_sql`]) the engine probes the
/// accumulated table once per candidate row instead of re-scanning and
/// re-hashing all of it every iteration — the probe is what keeps the
/// prepared termination check cheap as the fixpoint grows.
fn termination_sql(target: &str, new: &str, all: &str, arity: usize) -> String {
    if arity == 0 {
        return format!("INSERT INTO {target} SELECT * FROM {new} EXCEPT SELECT * FROM {all}");
    }
    let on: Vec<String> = (0..arity).map(|i| format!("a.c{i} = n.c{i}")).collect();
    format!(
        "INSERT INTO {target} SELECT DISTINCT * FROM {new} n \
         WHERE NOT EXISTS (SELECT * FROM {all} a WHERE {})",
        on.join(" AND ")
    )
}

/// Full-key index on an accumulated table, backing [`termination_sql`].
fn term_index_sql(all: &str, arity: usize) -> String {
    let cols: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
    format!("CREATE INDEX {all}_term ON {all} ({})", cols.join(", "))
}

fn dedup(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows.dedup();
    rows
}

/// The runtime's handle to the single-writer engine during evaluation.
///
/// Every SQL statement acquires the mutex for exactly its own duration, so
/// WAL appends and buffer-pool I/O stay serialized even when several
/// evaluation-order nodes — or several delta statements of one iteration —
/// are in flight on worker threads. Concurrent statements interleave but
/// never overlap inside the engine; the CPU parallelism that makes the
/// knob pay off lives *inside* each statement, in the engine's
/// partitioned operators (see `rdbms::exec`).
struct DbHandle<'a> {
    engine: Mutex<&'a mut Engine>,
}

impl<'a> DbHandle<'a> {
    fn new(engine: &'a mut Engine) -> DbHandle<'a> {
        DbHandle {
            engine: Mutex::new(engine),
        }
    }

    fn execute(&self, sql: &str) -> Result<ResultSet, KmError> {
        Ok(self.engine.lock().unwrap().execute(sql)?)
    }

    fn execute_prepared(&self, id: StmtId, params: &[Value]) -> Result<ResultSet, KmError> {
        Ok(self.engine.lock().unwrap().execute_prepared(id, params)?)
    }

    fn prepare(&self, sql: &str) -> Result<StmtId, KmError> {
        Ok(self.engine.lock().unwrap().prepare(sql)?)
    }

    fn deallocate(&self, id: StmtId) -> Result<(), KmError> {
        Ok(self.engine.lock().unwrap().deallocate(id)?)
    }

    fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, KmError> {
        Ok(self.engine.lock().unwrap().insert_rows(table, rows)?)
    }

    /// Load a temporary relation one engine batch at a time. Each chunk
    /// holds the engine mutex for only its own insert, so concurrent
    /// evaluation-order nodes interleave at batch granularity instead of
    /// stalling behind one monolithic load of a large delta.
    fn insert_rows_batched(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64, KmError> {
        let batch = self.engine.lock().unwrap().batch_rows().max(1);
        if rows.len() <= batch {
            return self.insert_rows(table, rows);
        }
        let mut added = 0u64;
        let mut rows = rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(batch));
            added += self.insert_rows(table, std::mem::replace(&mut rows, rest))?;
        }
        Ok(added)
    }
}

/// One statement of an evaluation batch (see [`run_batch`]).
enum BatchStmt<'a> {
    Sql(&'a str),
    Prepared(StmtId),
}

impl BatchStmt<'_> {
    fn run(&self, db: &DbHandle) -> Result<(), KmError> {
        match self {
            BatchStmt::Sql(s) => db.execute(s).map(|_| ()),
            BatchStmt::Prepared(id) => db.execute_prepared(*id, &[]).map(|_| ()),
        }
    }
}

/// Execute a batch of independent statements — the per-iteration rule (or
/// delta-variant) evaluations, which only read stable tables and append to
/// distinct-per-rule candidate tables — on up to `workers` threads.
///
/// Statements are claimed by index from a shared counter and serialize at
/// the engine lock, so the result is the same multiset of rows as the
/// serial loop in every candidate table. Returns each worker's busy time
/// (empty when the batch ran inline on the calling thread); on failure the
/// error of the lowest-indexed failing statement is reported, matching
/// which statement the serial loop would have failed on.
fn run_batch(
    db: &DbHandle,
    stmts: &[BatchStmt<'_>],
    workers: usize,
) -> Result<Vec<Duration>, KmError> {
    if workers <= 1 || stmts.len() < 2 {
        for s in stmts {
            s.run(db)?;
        }
        return Ok(Vec::new());
    }
    let next = AtomicUsize::new(0);
    let n = workers.min(stmts.len());
    let outcomes: Vec<Result<Duration, (usize, KmError)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                scope.spawn(|| {
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= stmts.len() {
                            return Ok(busy);
                        }
                        let t = Instant::now();
                        stmts[i].run(db).map_err(|e| (i, e))?;
                        busy += t.elapsed();
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    let mut times = Vec::with_capacity(n);
    let mut first_err: Option<(usize, KmError)> = None;
    for o in outcomes {
        match o {
            Ok(d) => times.push(d),
            Err((i, e)) => {
                let replace = match &first_err {
                    None => true,
                    Some((j, _)) => i < *j,
                };
                if replace {
                    first_err = Some((i, e));
                }
            }
        }
    }
    match first_err {
        Some((_, e)) => Err(e),
        None => Ok(times),
    }
}

/// Collect the predicates a generated SQL statement reads through their
/// accumulated (`d_`-prefixed, `ns`-namespaced) tables. Single-quoted
/// literals are skipped so a symbol constant cannot alias a table name.
fn d_table_refs(sql: &str, ns: &str, out: &mut BTreeSet<String>) {
    let b = sql.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'\'' {
            i += 1;
            while i < b.len() && b[i] != b'\'' {
                i += 1;
            }
            i += 1;
        } else if b[i].is_ascii_alphabetic() || b[i] == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            if let Some(p) = sql[start..i].strip_prefix("d_") {
                let p = p.strip_prefix(ns).unwrap_or(p);
                if !p.is_empty() {
                    out.insert(p.to_string());
                }
            }
        } else {
            i += 1;
        }
    }
}

/// Dependency edges of the evaluation-order DAG: `deps[i]` lists the
/// indices of the nodes whose defined predicates node `i`'s rules read via
/// the accumulated `d_` tables. The evaluation order list is topologically
/// sorted, so every dependency points at an earlier index; nodes with
/// disjoint dependency chains (e.g. the magic clique of one subquery and
/// an unrelated predicate) are free to run concurrently.
fn node_deps(prog: &EvalProgram) -> Vec<Vec<usize>> {
    let mut defined: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, node) in prog.nodes.iter().enumerate() {
        for p in node.predicates() {
            defined.insert(p, i);
        }
    }
    prog.nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let rules: Vec<&RuleSql> = match node {
                ProgNode::Predicate { rules, .. } => rules.iter().collect(),
                ProgNode::Clique {
                    exit_rules,
                    recursive_rules,
                    ..
                } => exit_rules.iter().chain(recursive_rules).collect(),
            };
            let mut refs = BTreeSet::new();
            for rule in rules {
                d_table_refs(&rule.full_sql, &prog.ns, &mut refs);
                for v in &rule.delta_variants {
                    d_table_refs(v, &prog.ns, &mut refs);
                }
            }
            let mut deps = BTreeSet::new();
            for p in &refs {
                if let Some(&j) = defined.get(p.as_str()) {
                    if j != i {
                        deps.insert(j);
                    }
                }
            }
            deps.into_iter().collect()
        })
        .collect()
}

/// What evaluating one evaluation-order node yields, before trace assembly.
struct NodeOut {
    breakdown: LfpBreakdown,
    iterations: Vec<IterationTrace>,
    /// Wall time of the node on the worker that ran it.
    elapsed: Duration,
    /// The specialized TC operator ran: `elapsed` is the single
    /// statement's time and the clique trace gets zero setup.
    tc: bool,
    worker: usize,
}

/// Evaluate one node of the evaluation order.
#[allow(clippy::too_many_arguments)]
fn eval_node(
    db: &DbHandle,
    prog: &EvalProgram,
    node: &ProgNode,
    strategy: LfpStrategy,
    special_tc: bool,
    prepared_sql: bool,
    workers: usize,
    ctl: &EvalCtl,
) -> Result<NodeOut, KmError> {
    let node_start = Instant::now();
    match node {
        ProgNode::Predicate { rules, .. } => Ok(NodeOut {
            breakdown: eval_predicate(db, &prog.ns, rules, ctl)?,
            iterations: Vec::new(),
            elapsed: node_start.elapsed(),
            tc: false,
            worker: 0,
        }),
        ProgNode::Clique {
            preds,
            exit_rules,
            recursive_rules,
            tc_of,
        } => {
            // The specialized operator applies only when nothing was
            // seeded into the clique predicate (seeds would extend the
            // LFP beyond the plain closure).
            let seeded = prog.seeds.iter().any(|(p, _)| preds.contains(p));
            if special_tc && !seeded {
                if let Some(src) = tc_of {
                    let pred = &preds[0];
                    let mut b = LfpBreakdown::default();
                    if let Err(br) = ctl.check_deadline() {
                        return Err(budget_err(
                            br,
                            clique_partial(
                                &[(pred.as_str(), prog.tables[pred].as_slice())]
                                    .into_iter()
                                    .collect(),
                                &b,
                                &mut Vec::new(),
                            ),
                        ));
                    }
                    let snap0 = StatSnap::take(db);
                    let t = Instant::now();
                    let rs = db.execute(&format!(
                        "INSERT INTO {} TRANSITIVE CLOSURE OF {src}",
                        all_table(&prog.ns, pred)
                    ))?;
                    let elapsed = t.elapsed();
                    b.t_eval_rhs = elapsed;
                    b.n_eval_stmts = 1;
                    b.iterations = 1;
                    b.tuples_produced = rs.affected;
                    let mut iter = snap0.finish(db);
                    iter.iteration = 1;
                    iter.delta_cards = vec![(pred.clone(), rs.affected)];
                    iter.t_eval = elapsed;
                    iter.t_total = elapsed;
                    // The operator runs as one statement, so the fact
                    // budget is enforced on its affected count after the
                    // fact — the engine-level row budget is the in-flight
                    // bound for this path.
                    if let Err(br) = ctl.charge_facts(rs.affected) {
                        return Err(budget_err(
                            br,
                            clique_partial(
                                &[(pred.as_str(), prog.tables[pred].as_slice())]
                                    .into_iter()
                                    .collect(),
                                &b,
                                &mut vec![iter],
                            ),
                        ));
                    }
                    return Ok(NodeOut {
                        breakdown: b,
                        iterations: vec![iter],
                        elapsed,
                        tc: true,
                        worker: 0,
                    });
                }
            }
            let types: BTreeMap<&str, &[AttrType]> = preds
                .iter()
                .map(|p| (p.as_str(), prog.tables[p].as_slice()))
                .collect();
            let (b, iterations) = match (strategy, prepared_sql) {
                (LfpStrategy::Naive, false) => eval_clique_naive(
                    db,
                    &prog.ns,
                    &types,
                    exit_rules,
                    recursive_rules,
                    workers,
                    ctl,
                )?,
                (LfpStrategy::SemiNaive, false) => eval_clique_seminaive(
                    db,
                    &prog.ns,
                    &types,
                    exit_rules,
                    recursive_rules,
                    workers,
                    ctl,
                )?,
                (LfpStrategy::Naive, true) => eval_clique_naive_prepared(
                    db,
                    &prog.ns,
                    &types,
                    exit_rules,
                    recursive_rules,
                    workers,
                    ctl,
                )?,
                (LfpStrategy::SemiNaive, true) => eval_clique_seminaive_prepared(
                    db,
                    &prog.ns,
                    &types,
                    exit_rules,
                    recursive_rules,
                    workers,
                    ctl,
                )?,
            };
            Ok(NodeOut {
                breakdown: b,
                iterations,
                elapsed: node_start.elapsed(),
                tc: false,
                worker: 0,
            })
        }
    }
}

/// Fold one node's result into the outcome accumulators, in evaluation
/// order — regardless of which worker evaluated it when.
fn record_node(
    node: &ProgNode,
    out: NodeOut,
    breakdown: &mut LfpBreakdown,
    node_timings: &mut Vec<NodeTiming>,
    clique_traces: &mut Vec<CliqueTrace>,
) {
    let predicates: Vec<String> = node.predicates().iter().map(|s| s.to_string()).collect();
    let is_magic = predicates.iter().all(|p| p.starts_with("m_"));
    breakdown.absorb(&out.breakdown);
    if node.is_clique() {
        let iter_total: Duration = out.iterations.iter().map(|i| i.t_total).sum();
        clique_traces.push(CliqueTrace {
            predicates: predicates.clone(),
            is_magic,
            total: out.elapsed,
            t_setup: if out.tc {
                Duration::ZERO
            } else {
                out.elapsed.saturating_sub(iter_total)
            },
            worker: out.worker,
            iterations: out.iterations,
        });
    }
    node_timings.push(NodeTiming {
        predicates,
        is_clique: node.is_clique(),
        is_magic,
        elapsed: out.elapsed,
        breakdown: out.breakdown,
        worker: out.worker,
    });
}

/// Shared state of the clique DAG scheduler.
struct SchedState {
    /// Unmet dependency count per node.
    remaining: Vec<usize>,
    /// Nodes whose dependencies are all evaluated; workers claim the
    /// smallest index first so the schedule is deterministic up to timing.
    ready: BTreeSet<usize>,
    /// Nodes claimed so far (running or finished).
    claimed: usize,
    results: Vec<Option<NodeOut>>,
    /// First failure by node index; once set, idle workers drain and exit.
    error: Option<(usize, KmError)>,
}

/// Run the evaluation-order nodes on a scoped pool of `workers` threads,
/// dispatching each node as soon as the nodes it reads from are done.
fn run_nodes_parallel(
    db: &DbHandle,
    prog: &EvalProgram,
    strategy: LfpStrategy,
    special_tc: bool,
    prepared_sql: bool,
    workers: usize,
    ctl: &EvalCtl,
) -> Result<Vec<NodeOut>, KmError> {
    let n = prog.nodes.len();
    let deps = node_deps(prog);
    let mut dependents = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        remaining[i] = ds.len();
        for &d in ds {
            dependents[d].push(i);
        }
    }
    let ready: BTreeSet<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
    let state = Mutex::new(SchedState {
        remaining,
        ready,
        claimed: 0,
        results: (0..n).map(|_| None).collect(),
        error: None,
    });
    let cv = Condvar::new();
    let dependents = &dependents;
    std::thread::scope(|scope| {
        for w in 0..workers.min(n.max(1)) {
            let state = &state;
            let cv = &cv;
            scope.spawn(move || loop {
                let i = {
                    let mut g = state.lock().unwrap();
                    loop {
                        if g.error.is_some() || g.claimed == n {
                            return;
                        }
                        if let Some(&i) = g.ready.iter().next() {
                            g.ready.remove(&i);
                            g.claimed += 1;
                            break i;
                        }
                        g = cv.wait(g).unwrap();
                    }
                };
                let r = eval_node(
                    db,
                    prog,
                    &prog.nodes[i],
                    strategy,
                    special_tc,
                    prepared_sql,
                    workers,
                    ctl,
                );
                let mut g = state.lock().unwrap();
                match r {
                    Ok(mut out) => {
                        out.worker = w;
                        for &d in &dependents[i] {
                            g.remaining[d] -= 1;
                            if g.remaining[d] == 0 {
                                g.ready.insert(d);
                            }
                        }
                        g.results[i] = Some(out);
                    }
                    Err(e) => {
                        let replace = match &g.error {
                            None => true,
                            Some((j, _)) => i < *j,
                        };
                        if replace {
                            g.error = Some((i, e));
                        }
                    }
                }
                cv.notify_all();
            });
        }
    });
    let state = state.into_inner().unwrap();
    if let Some((_, e)) = state.error {
        return Err(e);
    }
    Ok(state
        .results
        .into_iter()
        .map(|o| o.expect("scheduler evaluated every node"))
        .collect())
}

/// Run a generated program to completion and read the answer.
pub fn run_program(
    db: &mut Engine,
    prog: &EvalProgram,
    strategy: LfpStrategy,
) -> Result<EvalOutcome, KmError> {
    run_program_with(db, prog, strategy, false)
}

/// [`run_program`] with the specialized transitive-closure operator
/// enabled: cliques the code generator recognized as plain TC evaluate
/// with one `INSERT ... TRANSITIVE CLOSURE OF ...` statement instead of
/// the generic SQL LFP loop (paper conclusion #8).
pub fn run_program_with(
    db: &mut Engine,
    prog: &EvalProgram,
    strategy: LfpStrategy,
    special_tc: bool,
) -> Result<EvalOutcome, KmError> {
    run_program_opts(db, prog, strategy, special_tc, true)
}

/// The full-knob entry point: `prepared_sql` selects between the
/// embedded-SQL style (each clique's per-iteration statements are prepared
/// once and re-executed as handles, temp tables recycled with TRUNCATE) and
/// the original string-per-statement loop that re-parses and re-plans every
/// iteration. Both produce identical answers; the ablation in the bench
/// harness measures the difference.
pub fn run_program_opts(
    db: &mut Engine,
    prog: &EvalProgram,
    strategy: LfpStrategy,
    special_tc: bool,
    prepared_sql: bool,
) -> Result<EvalOutcome, KmError> {
    run_program_governed(
        db,
        prog,
        strategy,
        special_tc,
        prepared_sql,
        &EvalLimits::default(),
    )
}

/// [`run_program_opts`] under an evaluation governor: a wall-clock
/// deadline (armed on the engine too, so individual statements observe
/// it), a per-clique iteration cap, and a cumulative derived-fact budget.
/// A breach — or an engine-level budget/cancellation breach surfacing from
/// a statement — aborts the run with [`EvalError::Budget`], carrying the
/// traces produced so far. Before the error is returned the engine is put
/// back in service: the evaluation deadline is cleared, a pending
/// cancellation is acknowledged, and the run's temporary tables are
/// dropped best-effort.
pub fn run_program_governed(
    db: &mut Engine,
    prog: &EvalProgram,
    strategy: LfpStrategy,
    special_tc: bool,
    prepared_sql: bool,
    limits: &EvalLimits,
) -> Result<EvalOutcome, KmError> {
    let deadline = limits.deadline.map(|d| Instant::now() + d);
    let ctl = EvalCtl::new(limits, deadline);
    db.set_eval_deadline(deadline);
    let r = run_program_inner(db, prog, strategy, special_tc, prepared_sql, &ctl);
    db.set_eval_deadline(None);
    match r {
        Ok(out) => Ok(out),
        Err(e) => {
            // Late breaches (answer read, cleanup) carry no trace state;
            // promote them with empty progress.
            let e = promote(e, PartialProgress::default());
            if matches!(e, KmError::Eval(_)) {
                db.reset_cancel();
                for pred in prog.tables.keys() {
                    let _ = db.execute(&format!(
                        "DROP TABLE IF EXISTS {}",
                        all_table(&prog.ns, pred)
                    ));
                    let _ = db.execute(&format!(
                        "DROP TABLE IF EXISTS {}",
                        new_table(&prog.ns, pred)
                    ));
                    let _ = db.execute(&format!(
                        "DROP TABLE IF EXISTS {}",
                        delta_table(&prog.ns, pred)
                    ));
                }
            }
            Err(e)
        }
    }
}

fn run_program_inner(
    db: &mut Engine,
    prog: &EvalProgram,
    strategy: LfpStrategy,
    special_tc: bool,
    prepared_sql: bool,
    ctl: &EvalCtl,
) -> Result<EvalOutcome, KmError> {
    let workers = db.parallelism();
    let start = Instant::now();
    let mut breakdown = LfpBreakdown::default();
    let db = DbHandle::new(db);

    // Create the accumulated tables and load seeds.
    timed(&mut breakdown.t_temp_tables, || -> Result<(), KmError> {
        for (pred, types) in &prog.tables {
            db.execute(&format!(
                "DROP TABLE IF EXISTS {}",
                all_table(&prog.ns, pred)
            ))?;
            db.execute(&create_table_sql(&all_table(&prog.ns, pred), types))?;
        }
        Ok(())
    })?;
    breakdown.n_temp_ops += 2 * prog.tables.len() as u64;
    let t = Instant::now();
    for (pred, rows) in &prog.seeds {
        let added = db.insert_rows_batched(&all_table(&prog.ns, pred), dedup(rows.clone()))?;
        breakdown.tuples_produced += added;
        if let Err(br) = ctl.charge_facts(added) {
            return Err(budget_err(
                br,
                PartialProgress {
                    breakdown,
                    ..PartialProgress::default()
                },
            ));
        }
    }
    breakdown.t_eval_rhs += t.elapsed();

    // Evaluate the nodes: strictly in order when serial, in dependency
    // order on the scheduler's thread pool otherwise. Traces are folded in
    // evaluation-order either way, so consumers see the same shape.
    let mut node_timings = Vec::with_capacity(prog.nodes.len());
    let mut clique_traces = Vec::new();
    let mut eval_err: Option<KmError> = None;
    if workers <= 1 {
        for node in &prog.nodes {
            match eval_node(
                &db,
                prog,
                node,
                strategy,
                special_tc,
                prepared_sql,
                workers,
                ctl,
            ) {
                Ok(out) => record_node(
                    node,
                    out,
                    &mut breakdown,
                    &mut node_timings,
                    &mut clique_traces,
                ),
                Err(e) => {
                    eval_err = Some(e);
                    break;
                }
            }
        }
    } else {
        match run_nodes_parallel(&db, prog, strategy, special_tc, prepared_sql, workers, ctl) {
            Ok(outs) => {
                for (node, out) in prog.nodes.iter().zip(outs) {
                    record_node(
                        node,
                        out,
                        &mut breakdown,
                        &mut node_timings,
                        &mut clique_traces,
                    );
                }
            }
            Err(e) => eval_err = Some(e),
        }
    }
    if let Some(e) = eval_err {
        // Attach what the completed nodes produced ahead of the failing
        // node's own partial state.
        return Err(promote(
            e,
            PartialProgress {
                breakdown,
                node_timings,
                clique_traces,
            },
        ));
    }

    // Read the answer.
    let rs = db.execute(&format!(
        "SELECT DISTINCT * FROM {}",
        all_table(&prog.ns, &prog.result_pred)
    ))?;
    let mut rows = rs.rows;
    rows.sort();

    // Clean up exactly the temporaries this run created (user-created
    // temp tables in the same engine are not ours to drop).
    let t = Instant::now();
    for pred in prog.tables.keys() {
        db.execute(&format!(
            "DROP TABLE IF EXISTS {}",
            all_table(&prog.ns, pred)
        ))?;
        breakdown.n_temp_ops += 1;
    }
    breakdown.t_temp_tables += t.elapsed();

    Ok(EvalOutcome {
        rows,
        total: start.elapsed(),
        node_timings,
        clique_traces,
        breakdown,
    })
}

/// Engine counters sampled at an iteration boundary; `finish` turns a pair
/// of samples into the per-iteration deltas of an [`IterationTrace`].
struct StatSnap {
    plan_cache_hits: u64,
    plan_cache_misses: u64,
    plan_replans: u64,
    statements: u64,
}

impl StatSnap {
    fn take(db: &DbHandle) -> StatSnap {
        let s = db.engine.lock().unwrap().stats();
        StatSnap {
            plan_cache_hits: s.exec.plan_cache_hits,
            plan_cache_misses: s.exec.plan_cache_misses,
            plan_replans: s.exec.plan_replans,
            statements: s.statements,
        }
    }

    fn finish(&self, db: &DbHandle) -> IterationTrace {
        let now = StatSnap::take(db);
        IterationTrace {
            plan_cache_hits: now.plan_cache_hits - self.plan_cache_hits,
            plan_cache_misses: now.plan_cache_misses - self.plan_cache_misses,
            plan_replans: now.plan_replans - self.plan_replans,
            statements: now.statements - self.statements,
            ..IterationTrace::default()
        }
    }
}

/// Insert a SELECT's result into `target`, keeping set semantics via the
/// trailing `EXCEPT`. Returns the number of rows actually added.
fn insert_new(db: &DbHandle, target: &str, select_sql: &str) -> Result<u64, KmError> {
    let rs = db.execute(&format!(
        "INSERT INTO {target} {select_sql} EXCEPT SELECT * FROM {target}"
    ))?;
    Ok(rs.affected)
}

/// Evaluate a non-recursive predicate node: one pass over its rules.
fn eval_predicate(
    db: &DbHandle,
    ns: &str,
    rules: &[RuleSql],
    ctl: &EvalCtl,
) -> Result<LfpBreakdown, KmError> {
    let mut b = LfpBreakdown::default();
    for rule in rules {
        if let Err(br) = ctl.check_deadline() {
            return Err(budget_err(
                br,
                PartialProgress {
                    breakdown: b,
                    ..PartialProgress::default()
                },
            ));
        }
        let added = timed(&mut b.t_eval_rhs, || {
            insert_new(db, &all_table(ns, &rule.head_pred), &rule.full_sql)
        })?;
        b.n_eval_stmts += 1;
        b.tuples_produced += added;
        if let Err(br) = ctl.charge_facts(added) {
            return Err(budget_err(
                br,
                PartialProgress {
                    breakdown: b,
                    ..PartialProgress::default()
                },
            ));
        }
    }
    Ok(b)
}

/// Naive LFP: every iteration recomputes the full RHS of every rule of the
/// clique into per-iteration candidate tables, then diffs against the
/// accumulated tables for termination.
fn eval_clique_naive(
    db: &DbHandle,
    ns: &str,
    types: &BTreeMap<&str, &[AttrType]>,
    exit_rules: &[RuleSql],
    recursive_rules: &[RuleSql],
    workers: usize,
    ctl: &EvalCtl,
) -> Result<(LfpBreakdown, Vec<IterationTrace>), KmError> {
    let mut b = LfpBreakdown::default();
    let mut traces = Vec::new();
    // Each rule appends only to its own head's candidate table and reads
    // only the (stable within an iteration) accumulated tables, so the
    // per-iteration rule statements form an independent batch.
    let eval_sqls: Vec<String> = exit_rules
        .iter()
        .chain(recursive_rules)
        .map(|rule| {
            format!(
                "INSERT INTO {} {}",
                new_table(ns, &rule.head_pred),
                rule.full_sql
            )
        })
        .collect();
    let eval_batch: Vec<BatchStmt> = eval_sqls.iter().map(|s| BatchStmt::Sql(s)).collect();
    loop {
        b.iterations += 1;
        if let Err(br) = ctl.check_iters(b.iterations) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        let iter_start = Instant::now();
        let snap = StatSnap::take(db);

        // Fresh candidate tables for this iteration.
        let t = Instant::now();
        for (p, tys) in types {
            db.execute(&format!("DROP TABLE IF EXISTS {}", new_table(ns, p)))?;
            db.execute(&create_table_sql(&new_table(ns, p), tys))?;
        }
        let mut d_temp = t.elapsed();
        b.n_temp_ops += 2 * types.len() as u64;

        // Recompute the full RHS: exit rules and recursive rules alike.
        let t = Instant::now();
        let worker_eval = run_batch(db, &eval_batch, workers)?;
        b.n_eval_stmts += eval_batch.len() as u64;
        let mut d_eval = t.elapsed();

        // Termination check: full set difference per predicate.
        let mut delta_cards = Vec::with_capacity(types.len());
        let mut new_tuples: Vec<(&str, Vec<Vec<Value>>)> = Vec::new();
        let t = Instant::now();
        for p in types.keys() {
            let rs = db.execute(&format!(
                "SELECT * FROM {} EXCEPT SELECT * FROM {}",
                new_table(ns, p),
                all_table(ns, p)
            ))?;
            b.n_term_checks += 1;
            delta_cards.push((p.to_string(), rs.rows.len() as u64));
            if !rs.rows.is_empty() {
                new_tuples.push((p, rs.rows));
            }
        }
        let d_term = t.elapsed();

        // Drop the candidate tables (per-iteration churn).
        let t = Instant::now();
        for p in types.keys() {
            db.execute(&format!("DROP TABLE {}", new_table(ns, p)))?;
        }
        d_temp += t.elapsed();
        b.n_temp_ops += types.len() as u64;

        let done = new_tuples.is_empty();
        let mut fresh = 0u64;
        if !done {
            let t = Instant::now();
            for (p, rows) in new_tuples {
                let added = db.insert_rows_batched(&all_table(ns, p), rows)?;
                b.tuples_produced += added;
                fresh += added;
            }
            d_eval += t.elapsed();
        }
        b.t_temp_tables += d_temp;
        b.t_eval_rhs += d_eval;
        b.t_termination += d_term;
        let mut iter = snap.finish(db);
        iter.iteration = b.iterations;
        iter.delta_cards = delta_cards;
        iter.t_temp = d_temp;
        iter.t_eval = d_eval;
        iter.t_term = d_term;
        iter.t_total = iter_start.elapsed();
        iter.worker_eval = worker_eval;
        traces.push(iter);
        if let Err(br) = ctl.charge_facts(fresh) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        if done {
            return Ok((b, traces));
        }
    }
}

/// Semi-naive LFP: initialize the accumulated and delta tables from the
/// exit rules (and any seeds already present), then iterate the
/// differential variants.
fn eval_clique_seminaive(
    db: &DbHandle,
    ns: &str,
    types: &BTreeMap<&str, &[AttrType]>,
    exit_rules: &[RuleSql],
    recursive_rules: &[RuleSql],
    workers: usize,
    ctl: &EvalCtl,
) -> Result<(LfpBreakdown, Vec<IterationTrace>), KmError> {
    let mut b = LfpBreakdown::default();
    let mut traces = Vec::new();

    // Exit rules populate the accumulated tables.
    let t = Instant::now();
    let mut exit_added = 0u64;
    for rule in exit_rules {
        let added = insert_new(db, &all_table(ns, &rule.head_pred), &rule.full_sql)?;
        b.tuples_produced += added;
        exit_added += added;
        b.n_eval_stmts += 1;
    }
    b.t_eval_rhs += t.elapsed();
    if let Err(br) = ctl.charge_facts(exit_added) {
        return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
    }

    // delta := current accumulated contents (exit results + seeds).
    timed(&mut b.t_temp_tables, || -> Result<(), KmError> {
        for (p, tys) in types {
            db.execute(&format!("DROP TABLE IF EXISTS {}", delta_table(ns, p)))?;
            db.execute(&create_table_sql(&delta_table(ns, p), tys))?;
        }
        Ok(())
    })?;
    b.n_temp_ops += 2 * types.len() as u64;
    let t = Instant::now();
    for p in types.keys() {
        db.execute(&format!(
            "INSERT INTO {} SELECT * FROM {}",
            delta_table(ns, p),
            all_table(ns, p)
        ))?;
        b.n_eval_stmts += 1;
    }
    b.t_eval_rhs += t.elapsed();

    // The delta variants read the (stable within an iteration) delta and
    // accumulated tables and append to per-head candidate tables, so they
    // form an independent batch.
    let eval_sqls: Vec<String> = recursive_rules
        .iter()
        .flat_map(|rule| {
            rule.delta_variants
                .iter()
                .map(|variant| format!("INSERT INTO {} {variant}", new_table(ns, &rule.head_pred)))
        })
        .collect();
    let eval_batch: Vec<BatchStmt> = eval_sqls.iter().map(|s| BatchStmt::Sql(s)).collect();

    loop {
        b.iterations += 1;
        if let Err(br) = ctl.check_iters(b.iterations) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        let iter_start = Instant::now();
        let snap = StatSnap::take(db);

        // Fresh candidate tables.
        let t = Instant::now();
        for (p, tys) in types {
            db.execute(&format!("DROP TABLE IF EXISTS {}", new_table(ns, p)))?;
            db.execute(&create_table_sql(&new_table(ns, p), tys))?;
        }
        let mut d_temp = t.elapsed();
        b.n_temp_ops += 2 * types.len() as u64;

        // Evaluate the differential of each recursive rule.
        let t = Instant::now();
        let worker_eval = run_batch(db, &eval_batch, workers)?;
        b.n_eval_stmts += eval_batch.len() as u64;
        let mut d_eval = t.elapsed();

        // Termination check on the differential.
        let mut delta_cards = Vec::with_capacity(types.len());
        let mut new_tuples: Vec<(&str, Vec<Vec<Value>>)> = Vec::new();
        let t = Instant::now();
        for p in types.keys() {
            let rs = db.execute(&format!(
                "SELECT * FROM {} EXCEPT SELECT * FROM {}",
                new_table(ns, p),
                all_table(ns, p)
            ))?;
            b.n_term_checks += 1;
            delta_cards.push((p.to_string(), rs.rows.len() as u64));
            if !rs.rows.is_empty() {
                new_tuples.push((p, rs.rows));
            }
        }
        let d_term = t.elapsed();

        // Drop candidate and (old) delta tables — the per-iteration churn.
        let t = Instant::now();
        for p in types.keys() {
            db.execute(&format!("DROP TABLE {}", new_table(ns, p)))?;
            db.execute(&format!("DROP TABLE {}", delta_table(ns, p)))?;
        }
        d_temp += t.elapsed();
        b.n_temp_ops += 2 * types.len() as u64;

        let done = new_tuples.is_empty();
        let mut fresh = 0u64;
        if !done {
            // New deltas: exactly the new tuples; also fold them into the
            // accumulated tables.
            let t = Instant::now();
            for (p, tys) in types {
                db.execute(&create_table_sql(&delta_table(ns, p), tys))?;
            }
            d_temp += t.elapsed();
            b.n_temp_ops += types.len() as u64;
            let t = Instant::now();
            for (p, rows) in new_tuples {
                let added = db.insert_rows_batched(&all_table(ns, p), rows.clone())?;
                b.tuples_produced += added;
                fresh += added;
                db.insert_rows_batched(&delta_table(ns, p), rows)?;
            }
            d_eval += t.elapsed();
        }
        b.t_temp_tables += d_temp;
        b.t_eval_rhs += d_eval;
        b.t_termination += d_term;
        let mut iter = snap.finish(db);
        iter.iteration = b.iterations;
        iter.delta_cards = delta_cards;
        iter.t_temp = d_temp;
        iter.t_eval = d_eval;
        iter.t_term = d_term;
        iter.t_total = iter_start.elapsed();
        iter.worker_eval = worker_eval;
        traces.push(iter);
        if let Err(br) = ctl.charge_facts(fresh) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        if done {
            return Ok((b, traces));
        }
    }
}

/// Naive LFP in embedded-SQL style: the candidate tables are created once
/// and recycled with TRUNCATE, every per-iteration statement is prepared
/// once (parse + plan) before the loop, and the termination check folds the
/// genuinely new tuples into the accumulated table server-side — only the
/// affected count crosses the SQL boundary. Novelty is decided by probing
/// a full-key index on the accumulated table ([`termination_sql`]), not by
/// re-scanning it.
fn eval_clique_naive_prepared(
    db: &DbHandle,
    ns: &str,
    types: &BTreeMap<&str, &[AttrType]>,
    exit_rules: &[RuleSql],
    recursive_rules: &[RuleSql],
    workers: usize,
    ctl: &EvalCtl,
) -> Result<(LfpBreakdown, Vec<IterationTrace>), KmError> {
    let mut b = LfpBreakdown::default();
    let mut traces = Vec::new();

    // Candidate tables, created once for the whole fixpoint, plus the
    // full-key index each termination check probes.
    timed(&mut b.t_temp_tables, || -> Result<(), KmError> {
        for (p, tys) in types {
            db.execute(&format!("DROP TABLE IF EXISTS {}", new_table(ns, p)))?;
            db.execute(&create_table_sql(&new_table(ns, p), tys))?;
            if !tys.is_empty() {
                db.execute(&term_index_sql(&all_table(ns, p), tys.len()))?;
            }
        }
        Ok(())
    })?;
    b.n_temp_ops += 3 * types.len() as u64;

    // Compile every per-iteration statement once. All DDL for this clique
    // is done, so the cached plans stay valid across the loop (TRUNCATE
    // does not invalidate them).
    let preds: Vec<&str> = types.keys().copied().collect();
    let mut eval_stmts = Vec::new();
    let t = Instant::now();
    for rule in exit_rules.iter().chain(recursive_rules) {
        eval_stmts.push(db.prepare(&format!(
            "INSERT INTO {} {}",
            new_table(ns, &rule.head_pred),
            rule.full_sql
        ))?);
    }
    b.t_eval_rhs += t.elapsed();
    let mut trunc_stmts = Vec::new();
    let t = Instant::now();
    for p in &preds {
        trunc_stmts.push(db.prepare(&format!("TRUNCATE TABLE {}", new_table(ns, p)))?);
    }
    b.t_temp_tables += t.elapsed();
    let mut term_stmts = Vec::new();
    let t = Instant::now();
    for (p, tys) in types {
        term_stmts.push(db.prepare(&termination_sql(
            &all_table(ns, p),
            &new_table(ns, p),
            &all_table(ns, p),
            tys.len(),
        ))?);
    }
    b.t_termination += t.elapsed();
    let eval_batch: Vec<BatchStmt> = eval_stmts
        .iter()
        .map(|id| BatchStmt::Prepared(*id))
        .collect();

    loop {
        b.iterations += 1;
        if let Err(br) = ctl.check_iters(b.iterations) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        let iter_start = Instant::now();
        let snap = StatSnap::take(db);

        // Recycle the candidate tables.
        let t = Instant::now();
        for id in &trunc_stmts {
            db.execute_prepared(*id, &[])?;
        }
        let d_temp = t.elapsed();
        b.t_temp_tables += d_temp;
        b.n_temp_ops += trunc_stmts.len() as u64;

        // Recompute the full RHS: exit rules and recursive rules alike.
        let t = Instant::now();
        let worker_eval = run_batch(db, &eval_batch, workers)?;
        b.n_eval_stmts += eval_batch.len() as u64;
        let d_eval = t.elapsed();
        b.t_eval_rhs += d_eval;

        // Termination check + fold in one server-side statement per
        // predicate.
        let mut delta_cards = Vec::with_capacity(types.len());
        let mut new_tuples = 0;
        let t = Instant::now();
        for (p, id) in preds.iter().zip(&term_stmts) {
            let rs = db.execute_prepared(*id, &[])?;
            b.n_term_checks += 1;
            delta_cards.push((p.to_string(), rs.affected));
            new_tuples += rs.affected;
        }
        let d_term = t.elapsed();
        b.t_termination += d_term;
        b.tuples_produced += new_tuples;

        let mut iter = snap.finish(db);
        iter.iteration = b.iterations;
        iter.delta_cards = delta_cards;
        iter.t_temp = d_temp;
        iter.t_eval = d_eval;
        iter.t_term = d_term;
        iter.t_total = iter_start.elapsed();
        iter.worker_eval = worker_eval;
        traces.push(iter);
        if let Err(br) = ctl.charge_facts(new_tuples) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }

        if new_tuples == 0 {
            break;
        }
    }

    // Drop the recycled temporaries and release the handles.
    timed(&mut b.t_temp_tables, || -> Result<(), KmError> {
        for p in &preds {
            db.execute(&format!("DROP TABLE {}", new_table(ns, p)))?;
        }
        Ok(())
    })?;
    b.n_temp_ops += preds.len() as u64;
    for id in eval_stmts.into_iter().chain(trunc_stmts).chain(term_stmts) {
        db.deallocate(id)?;
    }
    Ok((b, traces))
}

/// Semi-naive LFP in embedded-SQL style. Candidate and delta tables are
/// created once and recycled with TRUNCATE; the delta variants, the
/// termination check and the delta-fold are prepared once before the loop.
/// The termination check ([`termination_sql`]) inserts the genuinely new
/// tuples straight into the next delta via an index-probing `NOT EXISTS`
/// anti-join — only their count crosses the SQL boundary, instead of the
/// tuples being materialized in the client and re-inserted row by row.
fn eval_clique_seminaive_prepared(
    db: &DbHandle,
    ns: &str,
    types: &BTreeMap<&str, &[AttrType]>,
    exit_rules: &[RuleSql],
    recursive_rules: &[RuleSql],
    workers: usize,
    ctl: &EvalCtl,
) -> Result<(LfpBreakdown, Vec<IterationTrace>), KmError> {
    let mut b = LfpBreakdown::default();
    let mut traces = Vec::new();

    // Exit rules populate the accumulated tables (single-shot statements).
    let t = Instant::now();
    let mut exit_added = 0u64;
    for rule in exit_rules {
        let added = insert_new(db, &all_table(ns, &rule.head_pred), &rule.full_sql)?;
        b.tuples_produced += added;
        exit_added += added;
        b.n_eval_stmts += 1;
    }
    b.t_eval_rhs += t.elapsed();
    if let Err(br) = ctl.charge_facts(exit_added) {
        return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
    }

    // Candidate and delta tables, created once for the whole fixpoint,
    // plus the full-key index each termination check probes.
    timed(&mut b.t_temp_tables, || -> Result<(), KmError> {
        for (p, tys) in types {
            db.execute(&format!("DROP TABLE IF EXISTS {}", new_table(ns, p)))?;
            db.execute(&create_table_sql(&new_table(ns, p), tys))?;
            db.execute(&format!("DROP TABLE IF EXISTS {}", delta_table(ns, p)))?;
            db.execute(&create_table_sql(&delta_table(ns, p), tys))?;
            if !tys.is_empty() {
                db.execute(&term_index_sql(&all_table(ns, p), tys.len()))?;
            }
        }
        Ok(())
    })?;
    b.n_temp_ops += 5 * types.len() as u64;

    // delta := current accumulated contents (exit results + seeds).
    let t = Instant::now();
    for p in types.keys() {
        db.execute(&format!(
            "INSERT INTO {} SELECT * FROM {}",
            delta_table(ns, p),
            all_table(ns, p)
        ))?;
        b.n_eval_stmts += 1;
    }
    b.t_eval_rhs += t.elapsed();

    // Compile every per-iteration statement once.
    let preds: Vec<&str> = types.keys().copied().collect();
    let mut eval_stmts = Vec::new();
    let t = Instant::now();
    for rule in recursive_rules {
        for variant in &rule.delta_variants {
            eval_stmts.push(db.prepare(&format!(
                "INSERT INTO {} {variant}",
                new_table(ns, &rule.head_pred)
            ))?);
        }
    }
    b.t_eval_rhs += t.elapsed();
    let mut trunc_new = Vec::new();
    let mut trunc_delta = Vec::new();
    let t = Instant::now();
    for p in &preds {
        trunc_new.push(db.prepare(&format!("TRUNCATE TABLE {}", new_table(ns, p)))?);
        trunc_delta.push(db.prepare(&format!("TRUNCATE TABLE {}", delta_table(ns, p)))?);
    }
    b.t_temp_tables += t.elapsed();
    let mut term_stmts = Vec::new();
    let mut fold_stmts = Vec::new();
    let t = Instant::now();
    for (p, tys) in types {
        term_stmts.push(db.prepare(&termination_sql(
            &delta_table(ns, p),
            &new_table(ns, p),
            &all_table(ns, p),
            tys.len(),
        ))?);
        fold_stmts.push(db.prepare(&format!(
            "INSERT INTO {} SELECT * FROM {}",
            all_table(ns, p),
            delta_table(ns, p)
        ))?);
    }
    b.t_termination += t.elapsed();
    let eval_batch: Vec<BatchStmt> = eval_stmts
        .iter()
        .map(|id| BatchStmt::Prepared(*id))
        .collect();

    loop {
        b.iterations += 1;
        if let Err(br) = ctl.check_iters(b.iterations) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        let iter_start = Instant::now();
        let snap = StatSnap::take(db);

        // Recycle the candidate tables, then evaluate the differential of
        // each recursive rule against the previous delta.
        let t = Instant::now();
        for id in &trunc_new {
            db.execute_prepared(*id, &[])?;
        }
        let mut d_temp = t.elapsed();
        b.n_temp_ops += trunc_new.len() as u64;

        let t = Instant::now();
        let worker_eval = run_batch(db, &eval_batch, workers)?;
        b.n_eval_stmts += eval_batch.len() as u64;
        let mut d_eval = t.elapsed();

        // Recycle the delta, then refill it with exactly the new tuples —
        // the server-side termination check.
        let t = Instant::now();
        for id in &trunc_delta {
            db.execute_prepared(*id, &[])?;
        }
        d_temp += t.elapsed();
        b.n_temp_ops += trunc_delta.len() as u64;

        let mut delta_cards = Vec::with_capacity(types.len());
        let mut new_tuples = 0;
        let t = Instant::now();
        for (p, id) in preds.iter().zip(&term_stmts) {
            let rs = db.execute_prepared(*id, &[])?;
            b.n_term_checks += 1;
            delta_cards.push((p.to_string(), rs.affected));
            new_tuples += rs.affected;
        }
        let d_term = t.elapsed();

        let done = new_tuples == 0;
        if !done {
            // Fold the delta into the accumulated tables.
            let t = Instant::now();
            for id in &fold_stmts {
                let rs = db.execute_prepared(*id, &[])?;
                b.n_eval_stmts += 1;
                b.tuples_produced += rs.affected;
            }
            d_eval += t.elapsed();
        }
        b.t_temp_tables += d_temp;
        b.t_eval_rhs += d_eval;
        b.t_termination += d_term;
        let mut iter = snap.finish(db);
        iter.iteration = b.iterations;
        iter.delta_cards = delta_cards;
        iter.t_temp = d_temp;
        iter.t_eval = d_eval;
        iter.t_term = d_term;
        iter.t_total = iter_start.elapsed();
        iter.worker_eval = worker_eval;
        traces.push(iter);
        if let Err(br) = ctl.charge_facts(new_tuples) {
            return Err(budget_err(br, clique_partial(types, &b, &mut traces)));
        }
        if done {
            break;
        }
    }

    // Drop the recycled temporaries and release the handles.
    timed(&mut b.t_temp_tables, || -> Result<(), KmError> {
        for p in &preds {
            db.execute(&format!("DROP TABLE {}", new_table(ns, p)))?;
            db.execute(&format!("DROP TABLE {}", delta_table(ns, p)))?;
        }
        Ok(())
    })?;
    b.n_temp_ops += 2 * preds.len() as u64;
    for id in eval_stmts
        .into_iter()
        .chain(trunc_new)
        .chain(trunc_delta)
        .chain(term_stmts)
        .chain(fold_stmts)
    {
        db.deallocate(id)?;
    }
    Ok((b, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{generate, CodegenEnv};
    use hornlog::evalgraph::evaluation_order;
    use hornlog::parser::{parse_program, parse_query};
    use hornlog::types::TypeMap;
    use std::collections::BTreeSet;

    /// Build an engine with a `parent` base relation forming a chain
    /// a0 -> a1 -> ... -> a{n-1}.
    fn chain_engine(n: usize) -> Engine {
        let mut db = Engine::new();
        db.execute("CREATE TABLE parent (c0 char, c1 char)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..n - 1)
            .map(|i| {
                vec![
                    Value::from(format!("a{i}")),
                    Value::from(format!("a{}", i + 1)),
                ]
            })
            .collect();
        db.insert_rows("parent", rows).unwrap();
        db
    }

    fn ancestor_program(query: &str) -> (hornlog::Program, hornlog::Clause) {
        let mut program = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let q = parse_query(query).unwrap();
        program.push(q.clone());
        (program, q)
    }

    fn compile(program: &hornlog::Program, db: &Engine) -> EvalProgram {
        compile_ns(program, db, "")
    }

    fn compile_ns(program: &hornlog::Program, db: &Engine, ns: &str) -> EvalProgram {
        let mut types = TypeMap::new();
        types.insert("parent".into(), vec![AttrType::Sym, AttrType::Sym]);
        types.insert("anc".into(), vec![AttrType::Sym, AttrType::Sym]);
        let arity = program
            .clauses
            .iter()
            .find(|c| c.head.predicate == "_query")
            .map(|c| c.head.arity())
            .unwrap_or(0);
        types.insert("_query".into(), vec![AttrType::Sym; arity]);
        let base: BTreeSet<String> = ["parent".to_string()].into();
        let cols: std::collections::BTreeMap<String, Vec<String>> = [(
            "parent".to_string(),
            db.table_schema("parent")
                .unwrap()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
        )]
        .into();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns,
        };
        let order = evaluation_order(program).unwrap();
        generate(&order, &[], "_query", &env).unwrap()
    }

    #[test]
    fn namespaced_program_evaluates_and_cleans_up() {
        let mut db = chain_engine(6);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let namespaced = compile_ns(&program, &db, "s42_");
        let before = db.table_names();
        let out = run_program(&mut db, &namespaced, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(db.table_names(), before, "no leaked namespaced temporaries");
        let plain = compile(&program, &db);
        let base = run_program(&mut db, &plain, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(out.rows, base.rows);
    }

    #[test]
    fn namespaced_deps_still_resolve() {
        // The scheduler's dependency edges come from `d_<ns><pred>` refs
        // in the generated SQL; the namespace must be stripped before the
        // predicate lookup or every namespaced program would appear
        // dependency-free (and race under parallel evaluation).
        let (program, _) = ancestor_program("?- anc(a0, W).");
        let db = chain_engine(4);
        let prog = compile_ns(&program, &db, "s9_");
        let deps = node_deps(&prog);
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[1], vec![0], "_query depends on the anc clique");
    }

    #[test]
    fn seminaive_computes_full_transitive_closure() {
        let mut db = chain_engine(6);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        // Chain of 6 nodes: C(6,2) = 15 ancestor pairs.
        assert_eq!(out.rows.len(), 15);
        assert!(
            out.breakdown.iterations >= 5,
            "chain depth forces iterations"
        );
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (program, _) = ancestor_program("?- anc(a0, W).");
        let mut db1 = chain_engine(8);
        let prog = compile(&program, &db1);
        let naive = run_program(&mut db1, &prog, LfpStrategy::Naive).unwrap();
        let mut db2 = chain_engine(8);
        let semi = run_program(&mut db2, &prog, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(naive.rows, semi.rows);
        assert_eq!(naive.rows.len(), 7, "a0 has 7 descendants");
    }

    #[test]
    fn naive_issues_more_eval_statements() {
        let (program, _) = ancestor_program("?- anc(A, B).");
        let mut db1 = chain_engine(10);
        let prog = compile(&program, &db1);
        let naive = run_program(&mut db1, &prog, LfpStrategy::Naive).unwrap();
        let mut db2 = chain_engine(10);
        let semi = run_program(&mut db2, &prog, LfpStrategy::SemiNaive).unwrap();
        // Naive recomputes everything each round: strictly more tuple work.
        assert!(naive.breakdown.n_eval_stmts >= semi.breakdown.n_eval_stmts);
        assert_eq!(naive.rows, semi.rows);
    }

    #[test]
    fn query_with_constant_restricts_result() {
        let mut db = chain_engine(5);
        let (program, _) = ancestor_program("?- anc(a2, W).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(
            out.rows,
            vec![vec![Value::from("a3")], vec![Value::from("a4")]]
        );
    }

    #[test]
    fn temp_tables_are_cleaned_up() {
        let mut db = chain_engine(4);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let before: Vec<String> = db.table_names();
        run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(db.table_names(), before, "no leaked temporaries");
    }

    #[test]
    fn breakdown_counters_are_populated() {
        let mut db = chain_engine(6);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        let b = &out.breakdown;
        assert!(b.n_temp_ops > 0);
        assert!(b.n_eval_stmts > 0);
        assert!(b.n_term_checks > 0);
        assert!(b.tuples_produced >= 15);
        assert!(b.total_time() > Duration::ZERO);
        assert_eq!(out.node_timings.len(), 2);
        assert!(out.node_timings[0].is_clique);
        assert!(!out.node_timings[0].is_magic);
    }

    #[test]
    fn cyclic_data_terminates() {
        // parent forms a cycle: a -> b -> c -> a.
        let mut db = Engine::new();
        db.execute("CREATE TABLE parent (c0 char, c1 char)")
            .unwrap();
        db.insert_rows(
            "parent",
            vec![
                vec![Value::from("a"), Value::from("b")],
                vec![Value::from("b"), Value::from("c")],
                vec![Value::from("c"), Value::from("a")],
            ],
        )
        .unwrap();
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
            let out = run_program(&mut db, &prog, strategy).unwrap();
            assert_eq!(out.rows.len(), 9, "full 3x3 closure on a cycle");
        }
    }

    #[test]
    fn empty_base_relation_yields_empty_answer() {
        let mut db = Engine::new();
        db.execute("CREATE TABLE parent (c0 char, c1 char)")
            .unwrap();
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn prepared_and_unprepared_lfp_agree() {
        let (program, _) = ancestor_program("?- anc(A, B).");
        for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
            let mut db_p = chain_engine(8);
            let prog = compile(&program, &db_p);
            let prepared = run_program_opts(&mut db_p, &prog, strategy, false, true).unwrap();
            let mut db_u = chain_engine(8);
            let unprepared = run_program_opts(&mut db_u, &prog, strategy, false, false).unwrap();
            assert_eq!(
                prepared.rows, unprepared.rows,
                "{strategy:?}: answers must be byte-identical"
            );
            assert_eq!(prepared.rows.len(), 28, "C(8,2) ancestor pairs");
            assert_eq!(
                prepared.breakdown.tuples_produced,
                unprepared.breakdown.tuples_produced
            );
        }
    }

    #[test]
    fn prepared_lfp_compiles_statements_once() {
        let mut db = chain_engine(8);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        assert!(out.breakdown.iterations >= 6);
        let stats = db.stats().exec;
        // One clique over `anc` with one delta variant: the eval statement,
        // the termination INSERT…EXCEPT and the delta-fold each plan
        // exactly once; every later iteration is a cache hit.
        assert_eq!(
            stats.plan_cache_misses, 3,
            "statements compile once per LFP call"
        );
        // Eval and termination run every iteration, the fold on all but the
        // last: everything after the first round hits the cache.
        assert_eq!(
            stats.plan_cache_hits,
            2 * out.breakdown.iterations + (out.breakdown.iterations - 1) - 3,
            "every re-execution reuses its cached plan"
        );
    }

    #[test]
    fn clique_traces_account_for_wall_time() {
        let (program, _) = ancestor_program("?- anc(A, B).");
        for prepared in [false, true] {
            for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
                let mut db = chain_engine(8);
                let prog = compile(&program, &db);
                let out = run_program_opts(&mut db, &prog, strategy, false, prepared).unwrap();
                assert_eq!(out.clique_traces.len(), 1, "one clique over anc");
                let trace = &out.clique_traces[0];
                assert!(trace.predicates.contains(&"anc".to_string()));
                assert!(!trace.is_magic);
                assert_eq!(trace.iterations.len() as u64, out.breakdown.iterations);
                // Iteration wall times plus setup reconstruct the clique
                // total exactly (t_setup is defined as the remainder).
                let sum: Duration =
                    trace.t_setup + trace.iterations.iter().map(|i| i.t_total).sum::<Duration>();
                assert!(sum <= trace.total);
                assert!(trace.total - sum < Duration::from_millis(1));
                // The last iteration finds nothing new; earlier ones do.
                let cards: Vec<u64> = trace
                    .iterations
                    .iter()
                    .map(|i| i.delta_cards.iter().map(|(_, n)| n).sum())
                    .collect();
                assert_eq!(*cards.last().unwrap(), 0, "final round is empty");
                assert!(cards[..cards.len() - 1].iter().all(|&n| n > 0));
                // Iteration numbers are 1-based and consecutive.
                for (i, iter) in trace.iterations.iter().enumerate() {
                    assert_eq!(iter.iteration, i as u64 + 1);
                    assert!(iter.statements > 0);
                }
                if prepared {
                    // After the first round every statement reuses its plan.
                    assert!(trace.iterations[1..]
                        .iter()
                        .all(|i| i.plan_cache_misses == 0 && i.plan_cache_hits > 0));
                }
            }
        }
    }

    #[test]
    fn prepared_lfp_recycles_temp_tables() {
        let mut db = chain_engine(6);
        let created_before = db.stats().tables_created;
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        let per_run = db.stats().tables_created - created_before;
        // d_anc, d__query, new_anc, delta_anc: one CREATE each, regardless
        // of iteration count — the unprepared path would create new/delta
        // tables every iteration.
        assert_eq!(per_run, 4, "temp tables are recycled, not recreated");
        assert!(out.breakdown.iterations >= 5);
    }

    /// Unwrap a governed failure into its budget fields.
    fn budget_parts(e: KmError) -> (EvalResource, u64, u64, PartialProgress) {
        match e {
            KmError::Eval(boxed) => {
                let EvalError::Budget {
                    resource,
                    limit,
                    used,
                    partial,
                } = *boxed;
                (resource, limit, used, *partial)
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn iteration_budget_trips_with_partial_traces() {
        for prepared in [false, true] {
            for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
                let mut db = chain_engine(10);
                let (program, _) = ancestor_program("?- anc(A, B).");
                let prog = compile(&program, &db);
                let before = db.table_names();
                let limits = EvalLimits {
                    max_iterations: Some(2),
                    ..EvalLimits::default()
                };
                let err = run_program_governed(&mut db, &prog, strategy, false, prepared, &limits)
                    .unwrap_err();
                let (resource, limit, used, partial) = budget_parts(err);
                assert_eq!(
                    resource,
                    EvalResource::Iterations,
                    "{strategy:?}/{prepared}"
                );
                assert_eq!(limit, 2);
                assert_eq!(used, 3, "tripped entering iteration 3");
                // The two admitted iterations are reported via the trace
                // machinery, and they did real work.
                let clique = partial
                    .clique_traces
                    .last()
                    .expect("failing clique contributes a trace");
                assert_eq!(clique.iterations.len(), 2);
                assert!(clique.iterations.iter().all(|i| i.statements > 0));
                assert!(partial.breakdown.tuples_produced > 0);
                // The engine keeps serving and no temporaries leak.
                assert_eq!(db.table_names(), before, "temp tables dropped");
                assert!(db.execute("SELECT * FROM parent").is_ok());
            }
        }
    }

    #[test]
    fn derived_fact_budget_trips() {
        let mut db = chain_engine(10);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let limits = EvalLimits {
            max_derived_facts: Some(12),
            ..EvalLimits::default()
        };
        let err =
            run_program_governed(&mut db, &prog, LfpStrategy::SemiNaive, false, true, &limits)
                .unwrap_err();
        let (resource, limit, used, partial) = budget_parts(err);
        assert_eq!(resource, EvalResource::DerivedFacts);
        assert_eq!(limit, 12);
        assert!(used > 12, "charge observed the overshoot");
        assert!(!partial.clique_traces.is_empty());
        assert!(db.execute("SELECT * FROM parent").is_ok());
    }

    #[test]
    fn zero_deadline_trips_before_divergence() {
        // A deadline of zero must abort on the very first check — whether
        // the km loop or an engine statement observes it first.
        let mut db = chain_engine(6);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        let limits = EvalLimits {
            deadline: Some(Duration::ZERO),
            ..EvalLimits::default()
        };
        let err =
            run_program_governed(&mut db, &prog, LfpStrategy::SemiNaive, false, true, &limits)
                .unwrap_err();
        let (resource, _, _, _) = budget_parts(err);
        assert_eq!(resource, EvalResource::Deadline);
        // The eval deadline is cleared on exit: the engine serves again.
        assert!(db.execute("SELECT * FROM parent").is_ok());
    }

    #[test]
    fn governed_without_limits_matches_ungoverned() {
        let (program, _) = ancestor_program("?- anc(A, B).");
        let mut db1 = chain_engine(8);
        let prog = compile(&program, &db1);
        let plain = run_program(&mut db1, &prog, LfpStrategy::SemiNaive).unwrap();
        let mut db2 = chain_engine(8);
        let governed = run_program_governed(
            &mut db2,
            &prog,
            LfpStrategy::SemiNaive,
            false,
            true,
            &EvalLimits::default(),
        )
        .unwrap();
        assert_eq!(plain.rows, governed.rows);
    }

    #[test]
    fn engine_cancellation_surfaces_as_eval_budget() {
        let mut db = chain_engine(8);
        let (program, _) = ancestor_program("?- anc(A, B).");
        let prog = compile(&program, &db);
        db.cancel();
        let err = run_program_governed(
            &mut db,
            &prog,
            LfpStrategy::SemiNaive,
            false,
            true,
            &EvalLimits::default(),
        )
        .unwrap_err();
        let (resource, _, _, _) = budget_parts(err);
        assert_eq!(resource, EvalResource::Canceled);
        // The governed exit acknowledged the cancellation: a clean re-run
        // succeeds and yields the full answer.
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        assert_eq!(out.rows.len(), 28);
    }

    #[test]
    fn seeds_feed_evaluation() {
        let mut db = chain_engine(3);
        let (mut program, _) = ancestor_program("?- anc(A, B).");
        // Add a workspace fact for a derived-table predicate: an extra
        // parent edge cannot go into the stored base relation here, so
        // seed anc directly.
        program.push(hornlog::parse_clause("anc(zz, a0).").unwrap());
        let mut types = TypeMap::new();
        types.insert("parent".into(), vec![AttrType::Sym, AttrType::Sym]);
        types.insert("anc".into(), vec![AttrType::Sym, AttrType::Sym]);
        types.insert("_query".into(), vec![AttrType::Sym, AttrType::Sym]);
        let base: BTreeSet<String> = ["parent".to_string()].into();
        let cols: std::collections::BTreeMap<String, Vec<String>> = [(
            "parent".to_string(),
            vec!["c0".to_string(), "c1".to_string()],
        )]
        .into();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rules_only = hornlog::Program::new(
            program
                .clauses
                .iter()
                .filter(|c| !c.is_fact())
                .cloned()
                .collect(),
        );
        let order = evaluation_order(&rules_only).unwrap();
        let seeds: Vec<hornlog::Clause> = program
            .clauses
            .iter()
            .filter(|c| c.is_fact())
            .cloned()
            .collect();
        let prog = generate(&order, &seeds, "_query", &env).unwrap();
        let out = run_program(&mut db, &prog, LfpStrategy::SemiNaive).unwrap();
        // The seeded tuple itself is part of the answer (the left-linear
        // rule cannot extend it leftward, since no parent edge leaves zz).
        assert!(out
            .rows
            .contains(&vec![Value::from("zz"), Value::from("a0")]));
        // And ordinary chain pairs are still derived.
        assert!(out
            .rows
            .contains(&vec![Value::from("a0"), Value::from("a2")]));
    }
}
