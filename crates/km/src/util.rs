//! Conversions between the rule-language world (`hornlog`) and the DBMS
//! world (`rdbms`), plus SQL text helpers used by the code generator and
//! the Stored D/KB manager.

use hornlog::types::AttrType;
use hornlog::Const;
use rdbms::{ColType, Value};

/// Map a rule-language attribute type to a DBMS column type.
pub fn attr_to_coltype(t: AttrType) -> ColType {
    match t {
        AttrType::Int => ColType::Int,
        AttrType::Sym => ColType::Str,
    }
}

/// Map a DBMS column type to a rule-language attribute type.
pub fn coltype_to_attr(t: ColType) -> AttrType {
    match t {
        ColType::Int => AttrType::Int,
        ColType::Str => AttrType::Sym,
    }
}

/// Map a rule-language constant to a DBMS value.
pub fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Int(i) => Value::Int(*i),
        Const::Str(s) => Value::Str(s.clone()),
    }
}

/// Map a DBMS value back to a rule-language constant.
pub fn value_to_const(v: &Value) -> Const {
    match v {
        Value::Int(i) => Const::Int(*i),
        Value::Str(s) => Const::Str(s.clone()),
    }
}

/// Convert a ground atom's arguments to an engine row. Panics on
/// variables — callers pass facts only.
pub fn fact_row(atom: &hornlog::Atom) -> Vec<Value> {
    atom.args
        .iter()
        .map(|t| match t {
            hornlog::Term::Const(c) => const_to_value(c),
            hornlog::Term::Var(_) => unreachable!("facts are ground"),
        })
        .collect()
}

/// Render a string as a SQL string literal (single quotes doubled).
pub fn sql_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for c in s.chars() {
        if c == '\'' {
            out.push('\'');
        }
        out.push(c);
    }
    out.push('\'');
    out
}

/// Render a constant as a SQL literal.
pub fn sql_const(c: &Const) -> String {
    match c {
        Const::Int(i) => i.to_string(),
        Const::Str(s) => sql_quote(s),
    }
}

/// Render a value as a SQL literal.
pub fn sql_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => sql_quote(s),
    }
}

/// Render an `IN` list of strings.
pub fn sql_in_list<'a>(items: impl Iterator<Item = &'a str>) -> String {
    let parts: Vec<String> = items.map(sql_quote).collect();
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_mapping_roundtrips() {
        for t in [AttrType::Int, AttrType::Sym] {
            assert_eq!(coltype_to_attr(attr_to_coltype(t)), t);
        }
    }

    #[test]
    fn const_value_roundtrip() {
        for c in [Const::Int(-3), Const::Str("it's".into())] {
            assert_eq!(value_to_const(&const_to_value(&c)), c);
        }
    }

    #[test]
    fn quoting_escapes_single_quotes() {
        assert_eq!(sql_quote("john"), "'john'");
        assert_eq!(sql_quote("it's"), "'it''s'");
        assert_eq!(sql_const(&Const::Int(7)), "7");
        assert_eq!(sql_const(&Const::Str("a'b".into())), "'a''b'");
    }

    #[test]
    fn in_list_rendering() {
        assert_eq!(sql_in_list(["p", "q"].into_iter()), "'p', 'q'");
        assert_eq!(sql_in_list(std::iter::empty()), "");
    }
}
