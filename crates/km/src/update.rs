//! The Stored D/KB update algorithm (§4.3).
//!
//! Updating the stored rule base with the workspace rules recomputes the
//! transitive closure *incrementally*: only the composite of the workspace
//! rules and the stored rules relevant to them is re-closed, never the
//! whole stored rule base. The paper's Test 8/9 measure exactly the three
//! phases broken out in [`UpdateTimings`].

use crate::backend::Storage;
use crate::semantics;
use crate::stored::{KmError, StoredDkb};
use crate::workspace::Workspace;
use hornlog::pcg::Pcg;
use hornlog::types::TypeMap;
use hornlog::Program;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Phase timings and counters of one stored-D/KB update.
#[derive(Debug, Clone, Default)]
pub struct UpdateTimings {
    /// Extracting the relevant rules from the Stored D/KB.
    pub t_extract: Duration,
    /// Computing the (incremental) transitive closure of the composite PCG
    /// and running the type check.
    pub t_tc: Duration,
    /// Updating the compiled structures: the intensional dictionary and
    /// `reachablepreds` (the paper's t_u2).
    pub t_compiled_store: Duration,
    /// Storing the source form of the rules (the paper's t_u3).
    pub t_source_store: Duration,
    /// Materializing workspace facts into stored base relations (§3.1's
    /// "updates the stored D/KB with these rules and facts"; not part of
    /// the paper's t_u breakdown, which §4.3 limits to intensional
    /// structures).
    pub t_facts: Duration,
    pub total: Duration,
    /// Workspace rules newly stored.
    pub rules_stored: usize,
    /// Workspace facts materialized into base relations.
    pub facts_stored: u64,
    /// Edges in the composite transitive closure.
    pub tc_edges: usize,
    /// `reachablepreds` rows actually added.
    pub reachable_added: u64,
    /// Pure fact predicates materialized into base relations this commit.
    pub fact_predicates: BTreeSet<String>,
}

/// Update the Stored D/KB with the workspace rules. `base_types` supplies
/// extensional dictionary types for the type check (pass the EDB dictionary
/// contents). Only intensional structures are written, as in the testbed.
pub fn update_stored(
    db: &mut impl Storage,
    stored: &StoredDkb,
    workspace: &Workspace,
    base_types: &TypeMap,
) -> Result<UpdateTimings, KmError> {
    let start = Instant::now();
    let mut timings = UpdateTimings::default();

    // Step 1: extract the stored rules relevant to the workspace rules.
    // In the source-only configuration the paper stores just the source
    // form — no extraction and no closure maintenance happen at all.
    let t = Instant::now();
    let mut mentioned: BTreeSet<String> = BTreeSet::new();
    for rule in workspace.rules().rules() {
        mentioned.insert(rule.head.predicate.clone());
        for atom in rule.all_body_atoms() {
            mentioned.insert(atom.predicate.clone());
        }
    }
    let extracted = if stored.compiled_storage {
        stored.extract_relevant_rules(db, &mentioned)?
    } else {
        Program::default()
    };
    timings.t_extract = t.elapsed();

    // Step 2/3: composite PCG and its transitive closure.
    let t = Instant::now();
    let mut composite = Program::new(workspace.rules().clauses.to_vec());
    composite.extend(extracted);
    let closure = if stored.compiled_storage {
        Pcg::build(&composite).transitive_closure()
    } else {
        Vec::new()
    };
    timings.tc_edges = closure.len();

    // Step 4: type check the composite against the dictionaries. Workspace
    // facts participate so fact-defined predicates type-check.
    let mut check_program = composite.clone();
    for fact in workspace.facts().clauses.iter() {
        check_program.push(fact.clone());
    }
    let mut dict = base_types.clone();
    let referenced: BTreeSet<String> = composite
        .clauses
        .iter()
        .flat_map(|c| {
            std::iter::once(c.head.predicate.clone())
                .chain(c.all_body_atoms().map(|a| a.predicate.clone()))
        })
        // Workspace fact predicates participate too: a fact conflicting
        // with an existing base relation's schema must fail the semantic
        // check here, before anything is written.
        .chain(
            workspace
                .facts()
                .clauses
                .iter()
                .map(|c| c.head.predicate.clone()),
        )
        .collect();
    for (pred, types) in stored.read_edb_dictionary(db, &referenced)? {
        dict.entry(pred).or_insert(types);
    }
    // Previously registered derived predicates type-check through the
    // intensional dictionary (essential in source-only mode, where no
    // stored rules are extracted to define them).
    for (pred, types) in stored.read_idb_dictionary(db, &referenced)? {
        dict.entry(pred).or_insert(types);
    }
    let info = semantics::check(&check_program, &dict)?;
    timings.t_tc = t.elapsed();

    // Steps 5-6: update the dictionary and compiled structures.
    let t = Instant::now();
    let derived: BTreeSet<&str> = composite.derived_predicates();
    let entries: Vec<(String, Vec<hornlog::types::AttrType>)> = derived
        .iter()
        .map(|p| (p.to_string(), info.types[*p].clone()))
        .collect();
    stored.register_derived_bulk(db, &entries)?;
    // Only closure edges rooted at a derived predicate are stored (base
    // predicates reach nothing).
    let mut pairs: Vec<(String, String)> = closure
        .into_iter()
        .filter(|(from, _)| derived.contains(from.as_str()))
        .collect();
    // The composite closure covers everything reachable *from* the
    // workspace rules, but extraction only looks down from them: a stored
    // predicate that already reached one of their heads now transitively
    // reaches the new targets too. Pull those ancestors from the compiled
    // form and extend their rows, or the stored closure drifts from the
    // true one whenever a commit adds a rule to an existing head.
    if stored.compiled_storage {
        let heads: BTreeSet<String> = workspace
            .rules()
            .rules()
            .map(|r| r.head.predicate.clone())
            .collect();
        let ancestors = stored.reaching_to(db, &heads)?;
        if !ancestors.is_empty() {
            let mut downstream: std::collections::BTreeMap<&str, Vec<&str>> =
                std::collections::BTreeMap::new();
            for (from, to) in &pairs {
                if heads.contains(from) {
                    downstream
                        .entry(from.as_str())
                        .or_default()
                        .push(to.as_str());
                }
            }
            let mut extended = Vec::new();
            for (from, head) in &ancestors {
                for to in downstream.get(head.as_str()).into_iter().flatten() {
                    extended.push((from.clone(), (*to).to_string()));
                }
            }
            pairs.extend(extended);
        }
    }
    timings.reachable_added = stored.insert_reachable(db, &pairs)?;
    timings.t_compiled_store = t.elapsed();

    // Step 7: store the source form of the new rules.
    let t = Instant::now();
    let heads: BTreeSet<String> = workspace
        .rules()
        .rules()
        .map(|r| r.head.predicate.clone())
        .collect();
    let already = stored.stored_rule_texts(db, &heads)?;
    for rule in workspace.rules().rules() {
        if !already.contains(&rule.to_string()) {
            stored.store_rule_source(db, rule)?;
            timings.rules_stored += 1;
        }
    }
    timings.t_source_store = t.elapsed();

    // Extensional phase (§3.1): facts for *pure* fact predicates — not
    // defined by any rule here or in the stored dictionary — become rows
    // of stored base relations, created on first commit.
    let t = Instant::now();
    let mut fact_preds: BTreeSet<String> = workspace
        .facts()
        .clauses
        .iter()
        .map(|c| c.head.predicate.clone())
        .collect();
    fact_preds.retain(|p| !derived.contains(p.as_str()));
    if !fact_preds.is_empty() {
        let already_derived = stored.read_idb_dictionary(db, &fact_preds)?;
        fact_preds.retain(|p| !already_derived.contains_key(p));
    }
    if !fact_preds.is_empty() {
        let existing_base = stored.base_relations(db)?;
        for pred in &fact_preds {
            let rows: Vec<Vec<rdbms::Value>> = workspace
                .facts()
                .clauses
                .iter()
                .filter(|c| &c.head.predicate == pred)
                .map(|c| crate::util::fact_row(&c.head))
                .collect();
            if !existing_base.contains(pred) {
                stored.create_base_relation(db, pred, &info.types[pred])?;
            }
            // Deduplicate against the rows already stored; the common
            // first-commit case (empty relation) skips the scan entirely.
            let fresh: Vec<Vec<rdbms::Value>> = if db.table_len(pred)? == 0 {
                let mut seen = BTreeSet::new();
                rows.into_iter()
                    .filter(|r| seen.insert(r.clone()))
                    .collect()
            } else {
                let mut seen: BTreeSet<Vec<rdbms::Value>> =
                    db.scan_all(pred)?.into_iter().collect();
                rows.into_iter()
                    .filter(|r| seen.insert(r.clone()))
                    .collect()
            };
            timings.facts_stored += stored.load_facts(db, pred, fresh)?;
        }
    }
    timings.t_facts = t.elapsed();
    // Report which predicates were materialized so the caller can drain
    // them from the workspace.
    timings.fact_predicates = fact_preds;

    timings.total = start.elapsed();
    Ok(timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::types::AttrType;
    use rdbms::Engine;

    fn setup(compiled: bool) -> (Engine, StoredDkb) {
        let mut db = Engine::new();
        let stored = StoredDkb::new(compiled);
        stored.init(&mut db).unwrap();
        stored
            .create_base_relation(&mut db, "parent", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        (db, stored)
    }

    fn base_types() -> TypeMap {
        [("parent".to_string(), vec![AttrType::Sym, AttrType::Sym])].into()
    }

    #[test]
    fn first_update_stores_rules_and_closure() {
        let (mut db, stored) = setup(true);
        let mut ws = Workspace::new();
        ws.load(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let t = update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        assert_eq!(t.rules_stored, 2);
        assert_eq!(stored.rule_count(&mut db).unwrap(), 2);
        // anc reaches parent and anc (self-recursive): 2 edges.
        assert_eq!(t.reachable_added, 2);
        assert_eq!(stored.derived_count(&mut db).unwrap(), 1);
    }

    #[test]
    fn repeated_update_is_idempotent() {
        let (mut db, stored) = setup(true);
        let mut ws = Workspace::new();
        ws.load("anc(X, Y) :- parent(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        let t2 = update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        assert_eq!(t2.rules_stored, 0);
        assert_eq!(t2.reachable_added, 0);
        assert_eq!(stored.rule_count(&mut db).unwrap(), 1);
    }

    #[test]
    fn incremental_closure_spans_old_and_new_rules() {
        let (mut db, stored) = setup(true);
        // First commit: b depends on parent.
        let mut ws = Workspace::new();
        ws.load("b(X, Y) :- parent(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        // Second commit: a depends on b — the closure must record
        // a -> b, a -> parent through the extracted stored rule.
        let mut ws2 = Workspace::new();
        ws2.load("a(X, Y) :- b(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws2, &base_types()).unwrap();
        let reach = stored
            .reachable_from(&mut db, &["a".to_string()].into())
            .unwrap();
        assert!(reach.contains("b"));
        assert!(
            reach.contains("parent"),
            "closure goes through stored rules"
        );
    }

    #[test]
    fn closure_propagates_to_ancestors_of_updated_heads() {
        let (mut db, stored) = setup(true);
        stored
            .create_base_relation(&mut db, "other", &[AttrType::Sym, AttrType::Sym])
            .unwrap();
        let mut ws = Workspace::new();
        ws.load("b(X, Y) :- parent(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        let mut ws2 = Workspace::new();
        ws2.load("a(X, Y) :- b(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws2, &base_types()).unwrap();
        // Third commit adds a rule to the *existing* head b. a already
        // reached b, so a must now also reach b's new target.
        let mut ws3 = Workspace::new();
        ws3.load("b(X, Y) :- other(X, Y).\n").unwrap();
        update_stored(&mut db, &stored, &ws3, &base_types()).unwrap();
        let reach = stored
            .reachable_from(&mut db, &["a".to_string()].into())
            .unwrap();
        assert!(reach.contains("other"), "ancestor rows extended: {reach:?}");
        stored.verify_integrity(&mut db).unwrap();
    }

    #[test]
    fn update_without_compiled_storage_skips_closure() {
        let (mut db, stored) = setup(false);
        let mut ws = Workspace::new();
        ws.load("anc(X, Y) :- parent(X, Y).\n").unwrap();
        let t = update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        assert_eq!(t.rules_stored, 1);
        assert_eq!(t.reachable_added, 0);
        assert!(!db.has_table("reachablepreds"));
    }

    #[test]
    fn type_error_aborts_before_store() {
        let (mut db, stored) = setup(true);
        let mut ws = Workspace::new();
        // parent columns are char; 42 is integer.
        ws.load("bad(X) :- parent(X, 42).\n").unwrap();
        assert!(update_stored(&mut db, &stored, &ws, &base_types()).is_err());
        assert_eq!(stored.rule_count(&mut db).unwrap(), 0, "nothing stored");
    }

    #[test]
    fn undefined_body_predicate_aborts() {
        let (mut db, stored) = setup(true);
        let mut ws = Workspace::new();
        ws.load("bad(X) :- nosuch(X).\n").unwrap();
        assert!(update_stored(&mut db, &stored, &ws, &base_types()).is_err());
    }

    #[test]
    fn fact_defined_predicates_type_check() {
        let (mut db, stored) = setup(true);
        let mut ws = Workspace::new();
        ws.load(
            "likes(X, Y) :- knows(X, Y).\n\
             knows(ann, bob).\n",
        )
        .unwrap();
        let t = update_stored(&mut db, &stored, &ws, &base_types()).unwrap();
        assert_eq!(t.rules_stored, 1);
    }
}
