//! The Code Generator.
//!
//! The paper's code generator emits a C program segment that loads
//! query-specific data structures: per evaluation-order node, the predicate
//! schemas and the SQL query evaluating each rule body. We generate the
//! same thing as a plain data structure, [`EvalProgram`], which the Run
//! Time Library interprets. For each recursive rule we additionally
//! generate the *differential* SQL variants semi-naive evaluation needs
//! (one per occurrence of a clique predicate in the body, reading that
//! occurrence from the delta table).

use crate::stored::KmError;
use crate::util::sql_const;
use hornlog::evalgraph::EvalNode;
use hornlog::types::{AttrType, TypeMap};
use hornlog::{Clause, Term};
use rdbms::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Table holding the accumulated extension of derived predicate `pred`.
///
/// `ns` is the session's temporary namespace (empty on a private
/// backend). Namespacing the scratch tables is what lets two sessions
/// of a shared engine run semi-naive LFPs concurrently: their
/// `all_/new_/delta_` temporaries never collide by name.
pub fn all_table(ns: &str, pred: &str) -> String {
    format!("d_{ns}{pred}")
}

/// Per-iteration delta table of a clique predicate.
pub fn delta_table(ns: &str, pred: &str) -> String {
    format!("delta_{ns}{pred}")
}

/// Scratch table collecting one iteration's new tuples.
pub fn new_table(ns: &str, pred: &str) -> String {
    format!("new_{ns}{pred}")
}

/// The SQL generated for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSql {
    /// Head predicate (table `d_<head>` receives the rows).
    pub head_pred: String,
    /// The rule's source text (for tracing / EXPLAIN-style output).
    pub source: String,
    /// SQL evaluating the body against the accumulated tables.
    pub full_sql: String,
    /// Differential variants for semi-naive evaluation: one per body
    /// occurrence of a clique predicate, that occurrence reading the delta
    /// table. Empty for non-recursive rules.
    pub delta_variants: Vec<String>,
}

/// One entry of the evaluation order list, compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgNode {
    /// Non-recursive derived predicate: evaluate each rule once.
    Predicate { pred: String, rules: Vec<RuleSql> },
    /// Clique: LFP evaluation of the recursive rules, seeded by the exit
    /// rules.
    Clique {
        preds: Vec<String>,
        exit_rules: Vec<RuleSql>,
        recursive_rules: Vec<RuleSql>,
        /// When the clique is a plain transitive closure of one binary
        /// relation, the source table — so the runtime can use the
        /// engine's specialized TC operator (paper conclusion #8) instead
        /// of the generic SQL loop.
        tc_of: Option<String>,
    },
}

impl ProgNode {
    pub fn is_clique(&self) -> bool {
        matches!(self, ProgNode::Clique { .. })
    }

    pub fn predicates(&self) -> Vec<&str> {
        match self {
            ProgNode::Predicate { pred, .. } => vec![pred.as_str()],
            ProgNode::Clique { preds, .. } => preds.iter().map(String::as_str).collect(),
        }
    }
}

/// The generated program: what the paper's code fragment loads before the
/// run-time library takes over.
#[derive(Debug, Clone)]
pub struct EvalProgram {
    /// Temporary-table namespace every scratch-table name carries (the
    /// [`CodegenEnv::ns`] the program was generated under). The runtime
    /// must create/drop the program's temporaries through this.
    pub ns: String,
    /// Derived tables to create: predicate → column types.
    pub tables: BTreeMap<String, Vec<AttrType>>,
    /// Ground facts to seed, grouped by predicate (magic seeds and
    /// workspace facts for predicates without a stored base relation).
    pub seeds: Vec<(String, Vec<Vec<Value>>)>,
    /// Evaluation-order nodes.
    pub nodes: Vec<ProgNode>,
    /// Predicate whose table holds the query answer.
    pub result_pred: String,
    /// Column types of the answer.
    pub result_types: Vec<AttrType>,
}

impl EvalProgram {
    /// Total number of generated SQL statements (a size metric for t_gen).
    pub fn sql_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                ProgNode::Predicate { rules, .. } => rules.len(),
                ProgNode::Clique {
                    exit_rules,
                    recursive_rules,
                    ..
                } => {
                    exit_rules.len()
                        + recursive_rules
                            .iter()
                            .map(|r| 1 + r.delta_variants.len())
                            .sum::<usize>()
                }
            })
            .sum()
    }
}

/// Everything codegen needs to know about where predicates live.
pub struct CodegenEnv<'a> {
    /// Types of every predicate (base, derived, adorned, magic).
    pub types: &'a TypeMap,
    /// Predicates backed by stored base relations (table name = predicate).
    pub base_preds: &'a BTreeSet<String>,
    /// Column names of the base relations.
    pub base_columns: &'a BTreeMap<String, Vec<String>>,
    /// Temporary-table namespace baked into every generated scratch-table
    /// name (empty for a private session, `s<id>_` for shared sessions).
    pub ns: &'a str,
}

impl<'a> CodegenEnv<'a> {
    fn table_of(&self, pred: &str) -> String {
        if self.base_preds.contains(pred) {
            pred.to_string()
        } else {
            all_table(self.ns, pred)
        }
    }

    fn columns_of(&self, pred: &str) -> Result<Vec<String>, KmError> {
        if self.base_preds.contains(pred) {
            self.base_columns
                .get(pred)
                .cloned()
                .ok_or_else(|| KmError::Internal(format!("no columns for base {pred}")))
        } else {
            let arity = self
                .types
                .get(pred)
                .map(Vec::len)
                .ok_or_else(|| KmError::Internal(format!("no types for {pred}")))?;
            Ok((0..arity).map(|i| format!("c{i}")).collect())
        }
    }
}

/// Generate the SQL for one rule body. `table_override` substitutes the
/// table read by one body occurrence (index into `rule.body`) — this is how
/// delta variants are produced.
pub fn rule_to_sql(
    rule: &Clause,
    env: &CodegenEnv<'_>,
    table_override: Option<(usize, String)>,
) -> Result<String, KmError> {
    if rule.body.is_empty() {
        return Err(KmError::Internal(format!(
            "cannot generate SQL for bodyless clause: {rule}"
        )));
    }
    if rule.head.arity() == 0 {
        return Err(KmError::Semantic(format!(
            "nullary derived predicates are not supported: {rule}"
        )));
    }
    if !rule.is_range_restricted() {
        return Err(KmError::Semantic(format!(
            "rule is not range-restricted (unsafe): {rule}"
        )));
    }
    // Negated atoms cannot read a delta table: stratification guarantees
    // they refer to lower (already complete) strata.
    if let Some((idx, _)) = &table_override {
        debug_assert!(*idx < rule.body.len(), "override targets a positive atom");
    }

    // FROM list with one alias per occurrence.
    let mut from = Vec::with_capacity(rule.body.len());
    let mut occurrence_cols = Vec::with_capacity(rule.body.len());
    for (i, atom) in rule.body.iter().enumerate() {
        let table = match &table_override {
            Some((idx, t)) if *idx == i => t.clone(),
            _ => env.table_of(&atom.predicate),
        };
        from.push(format!("{table} t{i}"));
        occurrence_cols.push(env.columns_of(&atom.predicate)?);
    }

    // WHERE: constants and variable-equality chains.
    let mut conds = Vec::new();
    let mut first_occurrence: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (i, atom) in rule.body.iter().enumerate() {
        for (j, term) in atom.args.iter().enumerate() {
            let col = &occurrence_cols[i][j];
            match term {
                Term::Const(c) => conds.push(format!("t{i}.{col} = {}", sql_const(c))),
                Term::Var(v) => match first_occurrence.get(v.as_str()) {
                    None => {
                        first_occurrence.insert(v, (i, j));
                    }
                    Some(&(fi, fj)) => {
                        let fcol = &occurrence_cols[fi][fj];
                        conds.push(format!("t{fi}.{fcol} = t{i}.{col}"));
                    }
                },
            }
        }
    }

    // SELECT: head arguments.
    let mut select = Vec::with_capacity(rule.head.arity());
    for term in &rule.head.args {
        match term {
            Term::Const(c) => select.push(sql_const(c)),
            Term::Var(v) => {
                let (i, j) = first_occurrence[v.as_str()];
                let col = &occurrence_cols[i][j];
                select.push(format!("t{i}.{col}"));
            }
        }
    }

    // Negated atoms become correlated NOT EXISTS subqueries (the
    // stratified-negation extension). Safety guarantees every variable of
    // a negated atom already has a positive first occurrence.
    for (k, atom) in rule.negative_body.iter().enumerate() {
        let table = env.table_of(&atom.predicate);
        let cols = env.columns_of(&atom.predicate)?;
        let alias = format!("n{k}");
        let mut inner = Vec::with_capacity(atom.arity());
        for (j, term) in atom.args.iter().enumerate() {
            let col = &cols[j];
            match term {
                Term::Const(c) => inner.push(format!("{alias}.{col} = {}", sql_const(c))),
                Term::Var(v) => {
                    let (fi, fj) = first_occurrence[v.as_str()];
                    let fcol = &occurrence_cols[fi][fj];
                    inner.push(format!("{alias}.{col} = t{fi}.{fcol}"));
                }
            }
        }
        let mut sub = format!("NOT EXISTS (SELECT * FROM {table} {alias}");
        if !inner.is_empty() {
            sub.push_str(" WHERE ");
            sub.push_str(&inner.join(" AND "));
        }
        sub.push(')');
        conds.push(sub);
    }

    let mut sql = format!(
        "SELECT DISTINCT {} FROM {}",
        select.join(", "),
        from.join(", ")
    );
    if !conds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    Ok(sql)
}

/// Recognize the transitive-closure clique shape: a single binary
/// predicate `p`, one exit rule `p(X, Y) :- b(X, Y)` copying a binary
/// relation, and one recursive rule composing `b`/`p` linearly or `p`
/// non-linearly (`p(X, Y) :- q(X, Z), r(Z, Y)` with `q`, `r` ∈ {b, p}).
/// Returns the source table to close over.
fn detect_transitive_closure(clique: &hornlog::Clique, env: &CodegenEnv<'_>) -> Option<String> {
    use hornlog::Term;

    if clique.predicates.len() != 1
        || clique.exit_rules.len() != 1
        || clique.recursive_rules.len() != 1
    {
        return None;
    }
    let p = clique.predicates.iter().next().expect("one predicate");

    // Exit rule: p(X, Y) :- b(X, Y) with distinct variables.
    let exit = &clique.exit_rules[0];
    if exit.has_negation() || exit.body.len() != 1 || exit.head.arity() != 2 {
        return None;
    }
    let [Term::Var(x), Term::Var(y)] = exit.head.args.as_slice() else {
        return None;
    };
    if x == y || exit.body[0].args != exit.head.args {
        return None;
    }
    let base = &exit.body[0].predicate;
    if base == p {
        return None;
    }

    // Recursive rule: p(Hx, Hy) :- q(Hx, Z), r(Z, Hy), q/r ∈ {b, p}.
    let rec = &clique.recursive_rules[0];
    if rec.has_negation() || rec.body.len() != 2 || rec.head.arity() != 2 {
        return None;
    }
    let [Term::Var(hx), Term::Var(hy)] = rec.head.args.as_slice() else {
        return None;
    };
    if hx == hy {
        return None;
    }
    let (first, second) = (&rec.body[0], &rec.body[1]);
    for atom in [first, second] {
        if atom.predicate != *base && atom.predicate != *p {
            return None;
        }
    }
    let [Term::Var(fx), Term::Var(fz)] = first.args.as_slice() else {
        return None;
    };
    let [Term::Var(sz), Term::Var(sy)] = second.args.as_slice() else {
        return None;
    };
    if fx != hx || sy != hy || fz != sz || fz == hx || fz == hy {
        return None;
    }
    Some(env.table_of(base))
}

/// Compile one rule into [`RuleSql`], generating delta variants for each
/// occurrence of a predicate in `clique_preds`.
fn compile_rule(
    rule: &Clause,
    env: &CodegenEnv<'_>,
    clique_preds: &BTreeSet<String>,
) -> Result<RuleSql, KmError> {
    let full_sql = rule_to_sql(rule, env, None)?;
    let mut delta_variants = Vec::new();
    for (i, atom) in rule.body.iter().enumerate() {
        if clique_preds.contains(&atom.predicate) {
            delta_variants.push(rule_to_sql(
                rule,
                env,
                Some((i, delta_table(env.ns, &atom.predicate))),
            )?);
        }
    }
    Ok(RuleSql {
        head_pred: rule.head.predicate.clone(),
        source: rule.to_string(),
        full_sql,
        delta_variants,
    })
}

/// Generate the full evaluation program from an evaluation order list.
///
/// `facts` are the ground clauses to seed (workspace facts and magic seed
/// facts); `result_pred` names the predicate holding the answer.
pub fn generate(
    order: &[EvalNode],
    facts: &[Clause],
    result_pred: &str,
    env: &CodegenEnv<'_>,
) -> Result<EvalProgram, KmError> {
    // Tables: every derived predicate appearing in the order list plus
    // every fact-seeded predicate that is not a stored base relation.
    let mut tables: BTreeMap<String, Vec<AttrType>> = BTreeMap::new();
    let mut want_table = |pred: &str| -> Result<(), KmError> {
        if env.base_preds.contains(pred) || tables.contains_key(pred) {
            return Ok(());
        }
        let types = env
            .types
            .get(pred)
            .ok_or_else(|| KmError::Internal(format!("no types for {pred}")))?;
        tables.insert(pred.to_string(), types.clone());
        Ok(())
    };

    let mut seeds: BTreeMap<String, Vec<Vec<Value>>> = BTreeMap::new();
    for fact in facts {
        if !fact.is_fact() {
            return Err(KmError::Internal(format!("non-ground seed: {fact}")));
        }
        want_table(&fact.head.predicate)?;
        seeds
            .entry(fact.head.predicate.clone())
            .or_default()
            .push(crate::util::fact_row(&fact.head));
    }

    let mut nodes = Vec::with_capacity(order.len());
    for node in order {
        // Every body predicate that is derived (fact-defined predicates
        // included) needs a table before its SQL can run.
        for rule in node.rules() {
            want_table(&rule.head.predicate)?;
            for atom in rule.all_body_atoms() {
                want_table(&atom.predicate)?;
            }
        }
        match node {
            EvalNode::Pred { name, rules } => {
                let compiled: Result<Vec<RuleSql>, KmError> = rules
                    .iter()
                    .filter(|r| !r.body.is_empty())
                    .map(|r| compile_rule(r, env, &BTreeSet::new()))
                    .collect();
                nodes.push(ProgNode::Predicate {
                    pred: name.clone(),
                    rules: compiled?,
                });
            }
            EvalNode::Clique(clique) => {
                let clique_preds: BTreeSet<String> = clique.predicates.clone();
                let exit: Result<Vec<RuleSql>, KmError> = clique
                    .exit_rules
                    .iter()
                    .filter(|r| !r.body.is_empty())
                    .map(|r| compile_rule(r, env, &BTreeSet::new()))
                    .collect();
                let rec: Result<Vec<RuleSql>, KmError> = clique
                    .recursive_rules
                    .iter()
                    .map(|r| compile_rule(r, env, &clique_preds))
                    .collect();
                nodes.push(ProgNode::Clique {
                    preds: clique.predicates.iter().cloned().collect(),
                    exit_rules: exit?,
                    recursive_rules: rec?,
                    tc_of: detect_transitive_closure(clique, env),
                });
            }
        }
    }

    let result_types = env
        .types
        .get(result_pred)
        .cloned()
        .ok_or_else(|| KmError::Internal(format!("no types for result {result_pred}")))?;
    want_table(result_pred)?;

    Ok(EvalProgram {
        ns: env.ns.to_string(),
        tables,
        seeds: seeds.into_iter().collect(),
        nodes,
        result_pred: result_pred.to_string(),
        result_types,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hornlog::parse_clause;

    fn env_fixture() -> (TypeMap, BTreeSet<String>, BTreeMap<String, Vec<String>>) {
        let mut types = TypeMap::new();
        types.insert("parent".into(), vec![AttrType::Sym, AttrType::Sym]);
        types.insert("anc".into(), vec![AttrType::Sym, AttrType::Sym]);
        types.insert("m_anc".into(), vec![AttrType::Sym]);
        let base: BTreeSet<String> = ["parent".to_string()].into();
        let mut cols = BTreeMap::new();
        cols.insert(
            "parent".to_string(),
            vec!["par".to_string(), "child".to_string()],
        );
        (types, base, cols)
    }

    #[test]
    fn simple_rule_sql() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(X, Y) :- parent(X, Y).").unwrap();
        let sql = rule_to_sql(&rule, &env, None).unwrap();
        assert_eq!(sql, "SELECT DISTINCT t0.par, t0.child FROM parent t0");
    }

    #[test]
    fn join_rule_sql_chains_variables() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(X, Y) :- parent(X, Z), anc(Z, Y).").unwrap();
        let sql = rule_to_sql(&rule, &env, None).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT t0.par, t1.c1 FROM parent t0, d_anc t1 \
             WHERE t0.child = t1.c0"
        );
    }

    #[test]
    fn constants_become_equality_filters_and_literals() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(adam, Y) :- parent(adam, Y).").unwrap();
        let sql = rule_to_sql(&rule, &env, None).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT 'adam', t0.child FROM parent t0 WHERE t0.par = 'adam'"
        );
    }

    #[test]
    fn repeated_variable_within_one_atom() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(X, X) :- parent(X, X).").unwrap();
        let sql = rule_to_sql(&rule, &env, None).unwrap();
        assert!(sql.contains("t0.par = t0.child"));
    }

    #[test]
    fn delta_override_replaces_one_occurrence() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(X, Y) :- anc(X, Z), anc(Z, Y).").unwrap();
        let v0 = rule_to_sql(&rule, &env, Some((0, delta_table("", "anc")))).unwrap();
        let v1 = rule_to_sql(&rule, &env, Some((1, delta_table("", "anc")))).unwrap();
        assert!(v0.contains("FROM delta_anc t0, d_anc t1"));
        assert!(v1.contains("FROM d_anc t0, delta_anc t1"));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("anc(X, Y) :- parent(X, X).").unwrap();
        assert!(matches!(
            rule_to_sql(&rule, &env, None),
            Err(KmError::Semantic(_))
        ));
    }

    #[test]
    fn generate_ancestor_program() {
        use hornlog::evalgraph::evaluation_order;
        use hornlog::parser::{parse_program, parse_query};

        let mut program = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let query = parse_query("?- anc(adam, W).").unwrap();
        program.push(query.clone());

        let (mut types, base, cols) = env_fixture();
        types.insert("_query".into(), vec![AttrType::Sym]);
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let order = evaluation_order(&program).unwrap();
        let prog = generate(&order, &[], "_query", &env).unwrap();

        assert_eq!(prog.nodes.len(), 2);
        assert!(prog.nodes[0].is_clique());
        assert_eq!(prog.result_pred, "_query");
        assert_eq!(prog.result_types, vec![AttrType::Sym]);
        assert!(prog.tables.contains_key("anc"));
        assert!(prog.tables.contains_key("_query"));
        assert!(
            !prog.tables.contains_key("parent"),
            "base tables not recreated"
        );

        let ProgNode::Clique {
            exit_rules,
            recursive_rules,
            ..
        } = &prog.nodes[0]
        else {
            panic!("expected clique");
        };
        assert_eq!(exit_rules.len(), 1);
        assert!(exit_rules[0].delta_variants.is_empty());
        assert_eq!(recursive_rules.len(), 1);
        assert_eq!(recursive_rules[0].delta_variants.len(), 1);
        assert!(recursive_rules[0].delta_variants[0].contains("delta_anc"));
        assert!(prog.sql_count() >= 3);
    }

    #[test]
    fn seeds_are_grouped_by_predicate() {
        let (mut types, base, cols) = env_fixture();
        types.insert("m_anc".into(), vec![AttrType::Sym]);
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let seeds = vec![
            parse_clause("m_anc(adam).").unwrap(),
            parse_clause("m_anc(bob).").unwrap(),
        ];
        let prog = generate(&[], &seeds, "m_anc", &env).unwrap();
        assert_eq!(prog.seeds.len(), 1);
        assert_eq!(prog.seeds[0].0, "m_anc");
        assert_eq!(prog.seeds[0].1.len(), 2);
        assert!(prog.tables.contains_key("m_anc"));
    }

    #[test]
    fn namespace_prefixes_every_scratch_table() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "s7_",
        };
        let rule = parse_clause("anc(X, Y) :- parent(X, Z), anc(Z, Y).").unwrap();
        let sql = rule_to_sql(&rule, &env, None).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT t0.par, t1.c1 FROM parent t0, d_s7_anc t1 \
             WHERE t0.child = t1.c0"
        );
        let v = rule_to_sql(&rule, &env, Some((1, delta_table(env.ns, "anc")))).unwrap();
        assert!(v.contains("FROM parent t0, delta_s7_anc t1"));
        assert_eq!(new_table("s7_", "anc"), "new_s7_anc");
    }

    #[test]
    fn generated_program_records_its_namespace() {
        use hornlog::evalgraph::evaluation_order;
        use hornlog::parser::{parse_program, parse_query};

        let mut program = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let query = parse_query("?- anc(adam, W).").unwrap();
        program.push(query.clone());

        let (mut types, base, cols) = env_fixture();
        types.insert("_query".into(), vec![AttrType::Sym]);
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "s3_",
        };
        let order = evaluation_order(&program).unwrap();
        let prog = generate(&order, &[], "_query", &env).unwrap();
        assert_eq!(prog.ns, "s3_");
        // Table keys stay un-namespaced predicates; only the generated
        // SQL carries the prefix.
        assert!(prog.tables.contains_key("anc"));
        let ProgNode::Clique {
            recursive_rules, ..
        } = &prog.nodes[0]
        else {
            panic!("expected clique");
        };
        assert!(recursive_rules[0].full_sql.contains("d_s3_anc"));
        assert!(recursive_rules[0].delta_variants[0].contains("delta_s3_anc"));
    }

    #[test]
    fn nullary_head_rejected() {
        let (types, base, cols) = env_fixture();
        let env = CodegenEnv {
            types: &types,
            base_preds: &base,
            base_columns: &cols,
            ns: "",
        };
        let rule = parse_clause("halt :- parent(X, Y).").unwrap();
        assert!(matches!(
            rule_to_sql(&rule, &env, None),
            Err(KmError::Semantic(_))
        ));
    }
}
