//! Knowledge-Manager scenario tests: the paper's Figure 1 rule base end to
//! end, explain output, multi-clique evaluation orders, and configuration
//! permutations over non-trivial programs.

use km::session::{binary_sym, Session, SessionConfig};
use km::LfpStrategy;
use rdbms::Value;
use std::collections::BTreeSet;

/// The paper's Figure 1 shape: p and q mutually recursive, p1 and p2
/// independently recursive, b1 and b2 base.
fn figure1_session() -> Session {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("b1", &binary_sym()).unwrap();
    s.define_base("b2", &binary_sym()).unwrap();
    // b1: chain x0 -> x1 -> x2 -> x3; b2: same nodes, reversed edges.
    let chain: Vec<Vec<Value>> = (0..3)
        .map(|i| {
            vec![
                Value::from(format!("x{i}")),
                Value::from(format!("x{}", i + 1)),
            ]
        })
        .collect();
    let reversed: Vec<Vec<Value>> = (0..3)
        .map(|i| {
            vec![
                Value::from(format!("x{}", i + 1)),
                Value::from(format!("x{i}")),
            ]
        })
        .collect();
    s.load_facts("b1", chain).unwrap();
    s.load_facts("b2", reversed).unwrap();
    s.load_rules(
        "p(X, Y) :- p1(X, Z), q(Z, Y).\n\
         q(X, Y) :- p2(X, Y).\n\
         q(X, Y) :- p(X, Y), p2(X, Y).\n\
         p1(X, Y) :- b1(X, Y).\n\
         p1(X, Y) :- b1(X, Z), p1(Z, Y).\n\
         p2(X, Y) :- b2(X, Y).\n\
         p2(X, Y) :- b2(X, Z), p2(Z, Y).\n",
    )
    .unwrap();
    s
}

#[test]
fn figure1_multi_clique_program_evaluates() {
    let mut s = figure1_session();
    let (compiled, result) = s.query("?- p(x0, W).").unwrap();
    assert_eq!(compiled.relevant_rules, 7);
    assert_eq!(compiled.relevant_derived, 4);
    // p(x0, W): p1 from x0 reaches x1..x3; q(Z, Y) via p2 (reverse chain)
    // reaches anything below Z. Just assert consistency across strategies.
    assert!(!result.rows.is_empty());
    let mut naive = figure1_session();
    naive.config.strategy = LfpStrategy::Naive;
    let (_, r2) = naive.query("?- p(x0, W).").unwrap();
    assert_eq!(result.rows, r2.rows);
}

#[test]
fn figure1_evaluation_order_respects_dependencies() {
    let mut s = figure1_session();
    let listing = s.explain("?- p(x0, W).").unwrap();
    let text = listing.join("\n");
    // p1 and p2 cliques precede the p/q clique in the listing.
    let pos = |needle: &str| text.find(needle).unwrap_or(usize::MAX);
    let pq = pos("clique {p, q}");
    assert!(pq != usize::MAX, "p/q clique present:\n{text}");
    assert!(pos("clique {p1}") < pq, "p1 before p/q:\n{text}");
    assert!(pos("clique {p2}") < pq, "p2 before p/q:\n{text}");
    assert!(pos("predicate _query") > pq, "query node last:\n{text}");
}

#[test]
fn explain_lists_sql_and_delta_variants() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    let listing = s.explain("?- anc(a, W).").unwrap();
    let text = listing.join("\n");
    assert!(text.contains("SELECT DISTINCT"), "SQL shown:\n{text}");
    assert!(text.contains("Δ:"), "delta variant shown:\n{text}");
    assert!(text.contains("exit:"), "exit rule labeled:\n{text}");
}

#[test]
fn explain_marks_tc_cliques() {
    let mut s = Session::new(SessionConfig {
        special_tc: true,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    let listing = s.explain("?- anc(V, W).").unwrap();
    let text = listing.join("\n");
    assert!(
        text.contains("transitive closure of parent"),
        "TC detection surfaced:\n{text}"
    );
}

#[test]
fn magic_program_visible_in_explain() {
    let mut s = Session::new(SessionConfig {
        optimize: true,
        ..SessionConfig::default()
    })
    .unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    let listing = s.explain("?- anc(a, W).").unwrap();
    let text = listing.join("\n");
    assert!(text.contains("magic sets: true"));
    assert!(text.contains("m_anc__bf"), "magic predicate shown:\n{text}");
    assert!(
        text.contains("seed m_anc__bf: 1 fact(s)"),
        "seed shown:\n{text}"
    );
}

#[test]
fn deep_view_stack_compiles_and_runs() {
    // 30 stacked non-recursive views over one base relation.
    let mut s = Session::with_defaults().unwrap();
    s.define_base("base", &binary_sym()).unwrap();
    s.load_facts("base", vec![vec![Value::from("a"), Value::from("b")]])
        .unwrap();
    let mut rules = String::from("v0(X, Y) :- base(X, Y).\n");
    for i in 1..30 {
        rules.push_str(&format!("v{i}(X, Y) :- v{}(X, Y).\n", i - 1));
    }
    s.load_rules(&rules).unwrap();
    let (compiled, result) = s.query("?- v29(a, W).").unwrap();
    assert_eq!(compiled.relevant_rules, 30);
    assert_eq!(result.rows, vec![vec![Value::from("b")]]);
}

#[test]
fn wide_union_of_rules_for_one_predicate() {
    // One predicate defined by 20 rules over 20 base relations.
    let mut s = Session::with_defaults().unwrap();
    let mut rules = String::new();
    for i in 0..20 {
        s.define_base(&format!("src{i}"), &binary_sym()).unwrap();
        s.load_facts(
            &format!("src{i}"),
            vec![vec![Value::from("k"), Value::from(format!("v{i}"))]],
        )
        .unwrap();
        rules.push_str(&format!("merged(X, Y) :- src{i}(X, Y).\n"));
    }
    s.load_rules(&rules).unwrap();
    let (_, result) = s.query("?- merged(k, W).").unwrap();
    assert_eq!(result.rows.len(), 20);
}

#[test]
fn mutual_recursion_through_three_predicates() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base("step", &binary_sym()).unwrap();
    s.load_facts(
        "step",
        (0..9)
            .map(|i| {
                vec![
                    Value::from(format!("s{i}")),
                    Value::from(format!("s{}", i + 1)),
                ]
            })
            .collect(),
    )
    .unwrap();
    // Path length ≡ 0, 1, 2 (mod 3).
    s.load_rules(
        "mod1(X, Y) :- step(X, Y).\n\
         mod1(X, Y) :- mod0(X, Z), step(Z, Y).\n\
         mod2(X, Y) :- mod1(X, Z), step(Z, Y).\n\
         mod0(X, Y) :- mod2(X, Z), step(Z, Y).\n",
    )
    .unwrap();
    for strategy in [LfpStrategy::Naive, LfpStrategy::SemiNaive] {
        s.config.strategy = strategy;
        let (compiled, result) = s.query("?- mod0(s0, W).").unwrap();
        assert_eq!(compiled.relevant_derived, 3);
        // Distances divisible by 3 from s0: s3, s6, s9.
        let got: BTreeSet<&str> = result.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(
            got,
            ["s3", "s6", "s9"].into_iter().collect(),
            "{strategy:?}"
        );
    }
}

#[test]
fn integers_flow_through_the_pipeline() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base(
        "succ",
        &[hornlog::types::AttrType::Int, hornlog::types::AttrType::Int],
    )
    .unwrap();
    s.load_facts(
        "succ",
        (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i + 1)])
            .collect(),
    )
    .unwrap();
    s.load_rules(
        "lt(X, Y) :- succ(X, Y).\n\
         lt(X, Y) :- succ(X, Z), lt(Z, Y).\n",
    )
    .unwrap();
    let (_, result) = s.query("?- lt(3, W).").unwrap();
    assert_eq!(result.rows.len(), 7, "4..10");
    assert_eq!(result.rows[0], vec![Value::Int(4)]);
    // Boolean integer query.
    let (_, yes) = s.query("?- lt(0, 9).").unwrap();
    assert!(!yes.rows.is_empty());
}

#[test]
fn mixed_type_predicates() {
    let mut s = Session::with_defaults().unwrap();
    s.define_base(
        "aged",
        &[hornlog::types::AttrType::Sym, hornlog::types::AttrType::Int],
    )
    .unwrap();
    s.load_facts(
        "aged",
        vec![
            vec![Value::from("ann"), Value::Int(30)],
            vec![Value::from("bob"), Value::Int(30)],
            vec![Value::from("cay"), Value::Int(41)],
        ],
    )
    .unwrap();
    s.load_rules("samesage(X, Y) :- aged(X, A), aged(Y, A).\n")
        .unwrap();
    let (_, result) = s.query("?- samesage(ann, W).").unwrap();
    assert_eq!(result.rows.len(), 2, "ann and bob (incl. ann herself)");
}

#[test]
fn user_temp_tables_survive_query_runs() {
    // The runtime must clean up exactly its own temporaries.
    let mut s = Session::with_defaults().unwrap();
    s.define_base("parent", &binary_sym()).unwrap();
    s.load_facts("parent", vec![vec![Value::from("a"), Value::from("b")]])
        .unwrap();
    s.engine_mut()
        .execute("CREATE TEMP TABLE user_scratch (x integer)")
        .unwrap();
    s.engine_mut()
        .execute("INSERT INTO user_scratch VALUES (7)")
        .unwrap();
    s.load_rules(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
    )
    .unwrap();
    s.query("?- anc(a, W).").unwrap();
    let rs = s
        .engine_mut()
        .execute("SELECT COUNT(*) FROM user_scratch")
        .unwrap();
    assert_eq!(rs.scalar_int(), Some(1), "user temp table untouched");
}
