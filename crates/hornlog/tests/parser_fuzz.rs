//! Robustness properties of the Horn clause front end: the parser and the
//! downstream analyses never panic, whatever the input.

use hornlog::parser::{parse_clause, parse_program, parse_query};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary printable text never panics any parser entry point.
    #[test]
    fn parsers_never_panic(input in "[ -~\\n]{0,150}") {
        let _ = parse_program(&input);
        let _ = parse_clause(&input);
        let _ = parse_query(&input);
    }

    /// Whatever parses also survives the whole analysis pipeline: PCG,
    /// SCC/cliques, stratification, evaluation order, type inference.
    #[test]
    fn analyses_never_panic_on_parsed_programs(input in "[ -~\\n]{0,150}") {
        if let Ok(program) = parse_program(&input) {
            let pcg = hornlog::Pcg::build(&program);
            let _ = pcg.transitive_closure();
            let _ = hornlog::scc::tarjan_scc(&pcg);
            let _ = hornlog::find_cliques(&program);
            let _ = hornlog::stratify(&program);
            let _ = hornlog::evalgraph::evaluation_order(&program);
            let _ = hornlog::types::infer_types(&program, &Default::default());
        }
    }

    /// Parse errors carry offsets inside (or one past) the input.
    #[test]
    fn error_offsets_are_in_range(input in "[ -~]{1,100}") {
        if let Err(e) = parse_clause(&input) {
            prop_assert!(e.offset <= input.len() || e.offset == usize::MAX);
        }
    }
}

#[test]
fn deeply_nested_inputs_do_not_overflow() {
    // Very long bodies and very long programs parse iteratively.
    let long_body: String = (0..5000)
        .map(|i| format!("p{i}(X)"))
        .collect::<Vec<_>>()
        .join(", ");
    let clause = format!("big(X) :- {long_body}.");
    let parsed = parse_clause(&clause).unwrap();
    assert_eq!(parsed.body.len(), 5000);

    let long_program: String = (0..5000).map(|i| format!("q{i}(a).\n")).collect();
    assert_eq!(parse_program(&long_program).unwrap().len(), 5000);
}
