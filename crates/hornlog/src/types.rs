//! Type inference and checking for derived predicates.
//!
//! The paper's Semantic Checker performs two checks: (1) every derived
//! predicate reachable from the query has a defining rule, and (2) the
//! column types of each derived predicate, inferred from the rules that
//! define it, agree across all those rules. This module implements both;
//! the Knowledge Manager drives them with base-predicate types read from
//! the extensional data dictionary.

use crate::clause::Program;
use crate::term::{Const, Term};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Attribute types, matching the DBMS column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    Int,
    Sym,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Int => write!(f, "integer"),
            AttrType::Sym => write!(f, "char"),
        }
    }
}

impl AttrType {
    pub fn of_const(c: &Const) -> AttrType {
        match c {
            Const::Int(_) => AttrType::Int,
            Const::Str(_) => AttrType::Sym,
        }
    }
}

/// Predicate name → column types.
pub type TypeMap = BTreeMap<String, Vec<AttrType>>;

/// Type-checking failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Two rules (or a rule and the dictionary) disagree on a column type.
    ColumnConflict {
        predicate: String,
        column: usize,
        first: AttrType,
        second: AttrType,
    },
    /// One variable is used at two positions with different types.
    VariableConflict {
        rule: String,
        variable: String,
        first: AttrType,
        second: AttrType,
    },
    /// Arity of a predicate differs between uses.
    ArityConflict {
        predicate: String,
        first: usize,
        second: usize,
    },
    /// A head variable never receives a type (not range-restricted, or the
    /// predicate's rules bottom out in nothing typable).
    Uninferable { predicate: String },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::ColumnConflict {
                predicate,
                column,
                first,
                second,
            } => write!(
                f,
                "type conflict on {predicate} column {column}: {first} vs {second}"
            ),
            TypeError::VariableConflict {
                rule,
                variable,
                first,
                second,
            } => write!(
                f,
                "variable {variable} in rule '{rule}' used as both {first} and {second}"
            ),
            TypeError::ArityConflict {
                predicate,
                first,
                second,
            } => {
                write!(f, "arity conflict on {predicate}: {first} vs {second}")
            }
            TypeError::Uninferable { predicate } => {
                write!(f, "cannot infer column types of {predicate}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Definedness check: body predicates that are neither derived (defined by
/// a rule in `program`) nor listed in `known_base`. Sorted, deduplicated.
pub fn undefined_predicates(program: &Program, known_base: &BTreeSet<String>) -> Vec<String> {
    let derived = program.derived_predicates();
    let fact_defined: BTreeSet<&str> = program.facts().map(|c| c.head.predicate.as_str()).collect();
    let mut missing = BTreeSet::new();
    for rule in program.rules() {
        for atom in rule.all_body_atoms() {
            let p = atom.predicate.as_str();
            if !derived.contains(p) && !fact_defined.contains(p) && !known_base.contains(p) {
                missing.insert(p.to_string());
            }
        }
    }
    missing.into_iter().collect()
}

/// Infer column types for every derived predicate of `program`, seeded with
/// `base` (the extensional dictionary). Returns the combined map (base +
/// derived). Runs to fixpoint so mutual recursion converges; conflicting
/// inferences error out.
pub fn infer_types(program: &Program, base: &TypeMap) -> Result<TypeMap, TypeError> {
    let mut types: TypeMap = base.clone();

    // Facts contribute types directly.
    for fact in program.facts() {
        let inferred: Vec<AttrType> = fact
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => AttrType::of_const(c),
                Term::Var(_) => unreachable!("facts are ground"),
            })
            .collect();
        merge_pred(&mut types, &fact.head.predicate, &inferred)?;
    }

    // Fixpoint over rules.
    loop {
        let mut changed = false;
        for rule in program.rules() {
            // 1. Collect variable types from body atoms (positive and
            //    negated) with known predicate types.
            let mut var_types: BTreeMap<&str, AttrType> = BTreeMap::new();
            for atom in rule.all_body_atoms() {
                let Some(cols) = types.get(&atom.predicate) else {
                    continue;
                };
                if cols.len() != atom.arity() {
                    return Err(TypeError::ArityConflict {
                        predicate: atom.predicate.clone(),
                        first: cols.len(),
                        second: atom.arity(),
                    });
                }
                for (i, term) in atom.args.iter().enumerate() {
                    let ty = cols[i];
                    match term {
                        Term::Var(v) => {
                            if let Some(prev) = var_types.insert(v, ty) {
                                if prev != ty {
                                    return Err(TypeError::VariableConflict {
                                        rule: rule.to_string(),
                                        variable: v.clone(),
                                        first: prev,
                                        second: ty,
                                    });
                                }
                            }
                        }
                        Term::Const(c) => {
                            let cty = AttrType::of_const(c);
                            if cty != ty {
                                return Err(TypeError::ColumnConflict {
                                    predicate: atom.predicate.clone(),
                                    column: i,
                                    first: ty,
                                    second: cty,
                                });
                            }
                        }
                    }
                }
            }

            // 2. Derive the head type vector; defer if any head variable is
            //    still untyped.
            let mut head_types = Vec::with_capacity(rule.head.arity());
            let mut complete = true;
            for term in &rule.head.args {
                match term {
                    Term::Const(c) => head_types.push(AttrType::of_const(c)),
                    Term::Var(v) => match var_types.get(v.as_str()) {
                        Some(ty) => head_types.push(*ty),
                        None => {
                            complete = false;
                            break;
                        }
                    },
                }
            }
            if !complete {
                continue;
            }
            if merge_new(&mut types, &rule.head.predicate, &head_types)? {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Every derived predicate must have ended up typed.
    for pred in program.derived_predicates() {
        if !types.contains_key(pred) {
            return Err(TypeError::Uninferable {
                predicate: pred.to_string(),
            });
        }
    }
    Ok(types)
}

/// Merge `inferred` into `types[pred]`, erroring on conflicts.
fn merge_pred(types: &mut TypeMap, pred: &str, inferred: &[AttrType]) -> Result<(), TypeError> {
    merge_new(types, pred, inferred).map(|_| ())
}

/// Like [`merge_pred`] but reports whether an entry was newly added.
fn merge_new(types: &mut TypeMap, pred: &str, inferred: &[AttrType]) -> Result<bool, TypeError> {
    match types.get(pred) {
        None => {
            types.insert(pred.to_string(), inferred.to_vec());
            Ok(true)
        }
        Some(existing) => {
            if existing.len() != inferred.len() {
                return Err(TypeError::ArityConflict {
                    predicate: pred.to_string(),
                    first: existing.len(),
                    second: inferred.len(),
                });
            }
            for (i, (a, b)) in existing.iter().zip(inferred).enumerate() {
                if a != b {
                    return Err(TypeError::ColumnConflict {
                        predicate: pred.to_string(),
                        column: i,
                        first: *a,
                        second: *b,
                    });
                }
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn base_types(pairs: &[(&str, &[AttrType])]) -> TypeMap {
        pairs
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_vec()))
            .collect()
    }

    #[test]
    fn infers_through_recursion() {
        let p = parse_program(
            "ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n",
        )
        .unwrap();
        let base = base_types(&[("parent", &[AttrType::Sym, AttrType::Sym])]);
        let types = infer_types(&p, &base).unwrap();
        assert_eq!(types["ancestor"], vec![AttrType::Sym, AttrType::Sym]);
    }

    #[test]
    fn infers_through_mutual_recursion() {
        let p = parse_program(
            "even(X) :- zero(X).\n\
             even(X) :- succ2(Y, X), odd(Y).\n\
             odd(X) :- succ2(Y, X), even(Y).\n",
        )
        .unwrap();
        let base = base_types(&[
            ("zero", &[AttrType::Int]),
            ("succ2", &[AttrType::Int, AttrType::Int]),
        ]);
        let types = infer_types(&p, &base).unwrap();
        assert_eq!(types["even"], vec![AttrType::Int]);
        assert_eq!(types["odd"], vec![AttrType::Int]);
    }

    #[test]
    fn constants_type_head_columns() {
        let p = parse_program("labeled(X, tag) :- item(X).\n").unwrap();
        let base = base_types(&[("item", &[AttrType::Int])]);
        let types = infer_types(&p, &base).unwrap();
        assert_eq!(types["labeled"], vec![AttrType::Int, AttrType::Sym]);
    }

    #[test]
    fn facts_seed_types() {
        let p = parse_program("parent(adam, bob).\nage(adam, 30).\n").unwrap();
        let types = infer_types(&p, &TypeMap::new()).unwrap();
        assert_eq!(types["parent"], vec![AttrType::Sym, AttrType::Sym]);
        assert_eq!(types["age"], vec![AttrType::Sym, AttrType::Int]);
    }

    #[test]
    fn conflicting_rules_detected() {
        // p typed (Sym) by one rule and (Int) by another.
        let p = parse_program(
            "p(X) :- names(X).\n\
             p(X) :- nums(X).\n",
        )
        .unwrap();
        let base = base_types(&[("names", &[AttrType::Sym]), ("nums", &[AttrType::Int])]);
        let err = infer_types(&p, &base).unwrap_err();
        assert!(matches!(err, TypeError::ColumnConflict { .. }));
    }

    #[test]
    fn variable_conflict_within_rule() {
        let p = parse_program("p(X) :- names(X), nums(X).\n").unwrap();
        let base = base_types(&[("names", &[AttrType::Sym]), ("nums", &[AttrType::Int])]);
        let err = infer_types(&p, &base).unwrap_err();
        assert!(matches!(err, TypeError::VariableConflict { .. }));
    }

    #[test]
    fn constant_against_wrong_column_type() {
        let p = parse_program("p(X) :- nums(X), nums(notanum).\n").unwrap();
        let base = base_types(&[("nums", &[AttrType::Int])]);
        let err = infer_types(&p, &base).unwrap_err();
        assert!(matches!(err, TypeError::ColumnConflict { .. }));
    }

    #[test]
    fn arity_conflict_detected() {
        let p = parse_program("p(X) :- q(X, X).\n").unwrap();
        let base = base_types(&[("q", &[AttrType::Int])]);
        let err = infer_types(&p, &base).unwrap_err();
        assert!(matches!(err, TypeError::ArityConflict { .. }));
    }

    #[test]
    fn uninferable_when_no_exit_path() {
        // p defined only in terms of itself: no types can be established.
        let p = parse_program("p(X) :- p(X).\n").unwrap();
        let err = infer_types(&p, &TypeMap::new()).unwrap_err();
        assert_eq!(
            err,
            TypeError::Uninferable {
                predicate: "p".to_string()
            }
        );
    }

    #[test]
    fn undefined_predicates_found() {
        let p = parse_program("a(X) :- b(X), c(X).\n").unwrap();
        let base: BTreeSet<String> = ["b".to_string()].into();
        assert_eq!(undefined_predicates(&p, &base), vec!["c".to_string()]);
        let all: BTreeSet<String> = ["b".to_string(), "c".to_string()].into();
        assert!(undefined_predicates(&p, &all).is_empty());
    }

    #[test]
    fn fact_defined_predicates_are_not_undefined() {
        let p = parse_program("a(X) :- parent(X, X).\nparent(adam, adam).\n").unwrap();
        assert!(undefined_predicates(&p, &BTreeSet::new()).is_empty());
    }
}
