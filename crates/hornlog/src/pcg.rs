//! The Predicate Connection Graph (PCG).
//!
//! Nodes are predicates; for every rule `p :- q1, ..., qn` there is a
//! directed edge from each `qi` to `p` (the paper's convention). The
//! *reachability* relation the testbed stores and queries is the inverse:
//! `q` is reachable from `p` when `q` occurs (transitively) in the body of
//! rules defining `p` — i.e. following PCG edges backwards.

use crate::clause::{Clause, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The PCG over a set of clauses.
#[derive(Debug, Clone, Default)]
pub struct Pcg {
    /// All predicate names appearing anywhere.
    nodes: BTreeSet<String>,
    /// `depends_on[p]` = predicates in the bodies of rules defining `p`
    /// (PCG edges point the other way; this orientation is what
    /// reachability needs). Includes negated dependencies.
    depends_on: BTreeMap<String, BTreeSet<String>>,
    /// The subset of dependencies that occur under negation — what the
    /// stratification check inspects.
    neg_depends_on: BTreeMap<String, BTreeSet<String>>,
}

impl Pcg {
    /// Build the PCG of a program (facts contribute nodes only).
    pub fn build(program: &Program) -> Pcg {
        Pcg::from_clauses(program.clauses.iter())
    }

    /// Build from an explicit clause iterator.
    pub fn from_clauses<'a>(clauses: impl Iterator<Item = &'a Clause>) -> Pcg {
        let mut pcg = Pcg::default();
        for clause in clauses {
            pcg.add_clause(clause);
        }
        pcg
    }

    /// Add one clause's nodes and edges.
    pub fn add_clause(&mut self, clause: &Clause) {
        self.nodes.insert(clause.head.predicate.clone());
        for atom in clause.all_body_atoms() {
            self.nodes.insert(atom.predicate.clone());
            self.depends_on
                .entry(clause.head.predicate.clone())
                .or_default()
                .insert(atom.predicate.clone());
        }
        for atom in &clause.negative_body {
            self.neg_depends_on
                .entry(clause.head.predicate.clone())
                .or_default()
                .insert(atom.predicate.clone());
        }
    }

    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Direct dependencies of `pred` (body predicates of its rules).
    pub fn direct_deps(&self, pred: &str) -> impl Iterator<Item = &str> {
        self.depends_on
            .get(pred)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// PCG edges in the paper's direction (body predicate → head
    /// predicate), sorted.
    pub fn edges(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .depends_on
            .iter()
            .flat_map(|(head, deps)| deps.iter().map(move |d| (d.as_str(), head.as_str())))
            .collect();
        out.sort_unstable();
        out
    }

    /// All predicates reachable from `start` (excluding `start` itself
    /// unless it is reachable through a cycle): breadth-first over
    /// `depends_on`.
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        self.reachable_from_all(std::iter::once(start))
    }

    /// Union of `reachable_from` over several start predicates.
    pub fn reachable_from_all<'a>(
        &self,
        starts: impl Iterator<Item = &'a str>,
    ) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<&str> = starts.collect();
        let mut visited: BTreeSet<&str> = queue.iter().copied().collect();
        while let Some(p) = queue.pop_front() {
            for dep in self.direct_deps(p) {
                out.insert(dep.to_string());
                if visited.insert(dep) {
                    queue.push_back(dep);
                }
            }
        }
        out
    }

    /// A predicate is recursive iff it is reachable from itself.
    pub fn is_recursive(&self, pred: &str) -> bool {
        self.reachable_from(pred).contains(pred)
    }

    /// Negative dependencies of `pred` (predicates it negates).
    pub fn neg_deps(&self, pred: &str) -> impl Iterator<Item = &str> {
        self.neg_depends_on
            .get(pred)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// All negative dependency pairs `(head, negated)`.
    pub fn neg_edges(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .neg_depends_on
            .iter()
            .flat_map(|(h, deps)| deps.iter().map(move |d| (h.as_str(), d.as_str())))
            .collect();
        out.sort_unstable();
        out
    }

    /// The full transitive closure as sorted `(from, to)` pairs — the
    /// contents of the Stored D/KB's `reachablepreds` relation. Uses an
    /// index-based BFS per node (no string allocation in the inner loop).
    pub fn transitive_closure(&self) -> Vec<(String, String)> {
        let nodes: Vec<&str> = self.nodes.iter().map(String::as_str).collect();
        let index_of: BTreeMap<&str, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|&n| self.direct_deps(n).map(|d| index_of[d]).collect())
            .collect();
        let n = nodes.len();
        let mut out = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut visited = vec![false; n];
        for start in 0..n {
            visited.iter_mut().for_each(|v| *v = false);
            queue.clear();
            queue.push_back(start);
            // The start node itself joins its own closure only through a
            // cycle, so it is not pre-marked.
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if !visited[w] {
                        visited[w] = true;
                        out.push((nodes[start].to_string(), nodes[w].to_string()));
                        queue.push_back(w);
                    }
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn figure1() -> Program {
        parse_program(
            "p(X, Y) :- p1(X, Z), q(Z, Y).\n\
             q(X, Y) :- p(X, Y), p2(X, Y).\n\
             p1(X, Y) :- b1(X, Y).\n\
             p1(X, Y) :- b1(X, Z), p1(Z, Y).\n\
             p2(X, Y) :- b2(X, Y).\n\
             p2(X, Y) :- b2(X, Z), p2(Z, Y).\n",
        )
        .unwrap()
    }

    #[test]
    fn nodes_and_edges() {
        let pcg = Pcg::build(&figure1());
        assert_eq!(pcg.node_count(), 6);
        let edges = pcg.edges();
        assert!(edges.contains(&("p1", "p")));
        assert!(edges.contains(&("q", "p")));
        assert!(edges.contains(&("p", "q")));
        assert!(edges.contains(&("b1", "p1")));
        assert!(edges.contains(&("p1", "p1")));
    }

    #[test]
    fn reachability_matches_paper() {
        let pcg = Pcg::build(&figure1());
        let from_p = pcg.reachable_from("p");
        // Everything is reachable from p (p itself via the p<->q cycle).
        for pred in ["p", "q", "p1", "p2", "b1", "b2"] {
            assert!(from_p.contains(pred), "{pred} reachable from p");
        }
        let from_p1 = pcg.reachable_from("p1");
        assert_eq!(
            from_p1.into_iter().collect::<Vec<_>>(),
            vec!["b1".to_string(), "p1".to_string()]
        );
        // Base predicates reach nothing.
        assert!(pcg.reachable_from("b1").is_empty());
    }

    #[test]
    fn recursive_predicates() {
        let pcg = Pcg::build(&figure1());
        assert!(pcg.is_recursive("p"));
        assert!(pcg.is_recursive("q"));
        assert!(pcg.is_recursive("p1"));
        assert!(pcg.is_recursive("p2"));
        assert!(!pcg.is_recursive("b1"));
    }

    #[test]
    fn nonrecursive_chain() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\n").unwrap();
        let pcg = Pcg::build(&p);
        assert!(!pcg.is_recursive("a"));
        assert_eq!(
            pcg.reachable_from("a").into_iter().collect::<Vec<_>>(),
            vec!["b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn reachable_from_all_unions() {
        let p = parse_program("a(X) :- b(X).\nc(X) :- d(X).\n").unwrap();
        let pcg = Pcg::build(&p);
        let r = pcg.reachable_from_all(["a", "c"].into_iter());
        assert_eq!(
            r.into_iter().collect::<Vec<_>>(),
            vec!["b".to_string(), "d".to_string()]
        );
    }

    #[test]
    fn transitive_closure_contains_all_pairs() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\n").unwrap();
        let pcg = Pcg::build(&p);
        let tc = pcg.transitive_closure();
        assert_eq!(
            tc,
            vec![
                ("a".to_string(), "b".to_string()),
                ("a".to_string(), "c".to_string()),
                ("b".to_string(), "c".to_string()),
            ]
        );
    }

    #[test]
    fn facts_contribute_nodes_only() {
        let p = parse_program("parent(adam, bob).").unwrap();
        let pcg = Pcg::build(&p);
        assert_eq!(pcg.node_count(), 1);
        assert!(pcg.edges().is_empty());
    }
}
