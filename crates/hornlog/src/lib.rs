//! # dkbms-hornlog — the rule language layer of the D/KBMS testbed
//!
//! Pure, function-free Horn clauses (Datalog) as in Ramnarayan & Lu
//! (SIGMOD 1988): the AST ([`term`], [`atom`], [`clause`]), a Prolog-like
//! [`parser`], the Predicate Connection Graph with reachability ([`pcg`]),
//! clique detection via strongly connected components ([`scc`]), the
//! evaluation graph and evaluation order list ([`evalgraph`]), type
//! inference and semantic checks ([`types`]), and adornments with sideways
//! information passing ([`adorn`]) feeding the magic-sets optimizer.
//!
//! ## Example
//!
//! ```
//! use hornlog::parser::{parse_program, parse_query};
//! use hornlog::evalgraph::evaluation_order;
//!
//! let mut program = parse_program(
//!     "ancestor(X, Y) :- parent(X, Y).\n\
//!      ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n",
//! ).unwrap();
//! program.push(parse_query("?- ancestor(adam, W).").unwrap());
//! let order = evaluation_order(&program).unwrap();
//! assert_eq!(order.len(), 2); // the ancestor clique, then the query node
//! assert!(order[0].is_clique());
//! ```

pub mod adorn;
pub mod atom;
pub mod clause;
pub mod evalgraph;
pub mod parser;
pub mod pcg;
pub mod scc;
pub mod strat;
pub mod term;
pub mod types;

pub use atom::Atom;
pub use clause::{Clause, Program};
pub use parser::{parse_clause, parse_program, parse_query, ParseError, QUERY_PREDICATE};
pub use pcg::Pcg;
pub use scc::{find_cliques, Clique};
pub use strat::{is_stratified, stratify, StratificationError};
pub use term::{Const, Term};
