//! Terms: the arguments of atomic formulas.
//!
//! The testbed handles *pure, function-free* Horn clauses, so a term is
//! either a variable or a constant — never a compound term.

use std::fmt;

/// A constant value: integer or symbol/string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    Int(i64),
    Str(String),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(i) => write!(f, "{i}"),
            Const::Str(s) => {
                // Symbols that look like identifiers print bare; anything
                // else is quoted so parsing round-trips.
                if is_plain_symbol(s) {
                    write!(f, "{s}")
                } else {
                    write!(f, "\"{s}\"")
                }
            }
        }
    }
}

/// Whether `s` can print as a bare lowercase symbol.
pub fn is_plain_symbol(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Str(v.to_string())
    }
}

/// A term: variable or constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable; by convention names start with an uppercase letter or
    /// underscore.
    Var(String),
    Const(Const),
}

impl Term {
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    pub fn int(v: i64) -> Term {
        Term::Const(Const::Int(v))
    }

    pub fn sym(s: impl Into<String>) -> Term {
        Term::Const(Const::Str(s.into()))
    }

    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    pub fn as_const(&self) -> Option<&Const> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Term::var("X");
        let i = Term::int(3);
        let s = Term::sym("john");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("X"));
        assert_eq!(v.as_const(), None);
        assert_eq!(i.as_const(), Some(&Const::Int(3)));
        assert_eq!(s.as_const(), Some(&Const::Str("john".into())));
        assert_eq!(s.as_var(), None);
    }

    #[test]
    fn display_plain_vs_quoted_symbols() {
        assert_eq!(Term::sym("john").to_string(), "john");
        assert_eq!(Term::sym("John Smith").to_string(), "\"John Smith\"");
        assert_eq!(Term::sym("Upper").to_string(), "\"Upper\"");
        assert_eq!(Term::sym("").to_string(), "\"\"");
        assert_eq!(Term::int(-5).to_string(), "-5");
        assert_eq!(Term::var("X1").to_string(), "X1");
    }

    #[test]
    fn plain_symbol_predicate() {
        assert!(is_plain_symbol("abc_12"));
        assert!(!is_plain_symbol("1abc"));
        assert!(!is_plain_symbol("_x"));
        assert!(!is_plain_symbol("a-b"));
    }
}
