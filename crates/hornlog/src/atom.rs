//! Atomic formulas: a predicate applied to terms.

use crate::term::{Const, Term};
use std::collections::BTreeSet;
use std::fmt;

/// An atomic formula `p(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub predicate: String,
    pub args: Vec<Term>,
}

impl Atom {
    pub fn new(predicate: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            args,
        }
    }

    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }

    /// The distinct variables appearing in this atom, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// The constants appearing in this atom.
    pub fn constants(&self) -> Vec<&Const> {
        self.args.iter().filter_map(Term::as_const).collect()
    }

    /// Rename the predicate, keeping the arguments.
    pub fn with_predicate(&self, predicate: impl Into<String>) -> Atom {
        Atom {
            predicate: predicate.into(),
            args: self.args.clone(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.predicate)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Atom {
        Atom::new(
            "p",
            vec![
                Term::var("X"),
                Term::sym("a"),
                Term::var("X"),
                Term::var("Y"),
            ],
        )
    }

    #[test]
    fn variables_are_distinct_in_order() {
        assert_eq!(atom().variables(), vec!["X", "Y"]);
    }

    #[test]
    fn groundness() {
        assert!(!atom().is_ground());
        assert!(Atom::new("f", vec![Term::sym("a"), Term::int(1)]).is_ground());
        assert!(Atom::new("nullary", vec![]).is_ground());
    }

    #[test]
    fn constants_extracted() {
        assert_eq!(atom().constants(), vec![&Const::Str("a".into())]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(atom().to_string(), "p(X, a, X, Y)");
        assert_eq!(Atom::new("done", vec![]).to_string(), "done");
    }

    #[test]
    fn with_predicate_renames() {
        let a = atom().with_predicate("magic_p");
        assert_eq!(a.predicate, "magic_p");
        assert_eq!(a.args, atom().args);
    }
}
