//! Strongly connected components and cliques.
//!
//! Mutually recursive predicates form the strongly connected components of
//! the PCG. Following the paper's broader definition (§2.2), a *clique* is
//! such a component together with the rules defining its predicates,
//! partitioned into *recursive rules* (some body predicate is mutually
//! recursive with the head) and *exit rules* (the rest).

use crate::clause::{Clause, Program};
use crate::pcg::Pcg;
use std::collections::{BTreeMap, BTreeSet};

/// A clique: mutually recursive predicates plus their defining rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clique {
    pub predicates: BTreeSet<String>,
    pub recursive_rules: Vec<Clause>,
    pub exit_rules: Vec<Clause>,
}

impl Clique {
    /// All rules of the clique, exit rules first (the order naive LFP
    /// initialization wants).
    pub fn all_rules(&self) -> impl Iterator<Item = &Clause> {
        self.exit_rules.iter().chain(&self.recursive_rules)
    }
}

/// Iterative Tarjan SCC over the PCG's dependency orientation. Components
/// are returned in reverse topological order of `depends_on` edges —
/// i.e. a component appears before any component that depends on it.
pub fn tarjan_scc(pcg: &Pcg) -> Vec<Vec<String>> {
    let nodes: Vec<&str> = pcg.nodes().collect();
    let index_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&n| pcg.direct_deps(n).map(|d| index_of[d]).collect())
        .collect();

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0;
    let mut components: Vec<Vec<String>> = Vec::new();

    // Explicit DFS state: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        component.push(nodes[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Find all cliques of a program: SCCs of size > 1, plus singleton SCCs
/// with a direct self-dependency. Rules are cloned out of the program.
pub fn find_cliques(program: &Program) -> Vec<Clique> {
    let pcg = Pcg::build(program);
    let components = tarjan_scc(&pcg);
    let mut cliques = Vec::new();
    for component in components {
        let is_clique = component.len() > 1 || {
            let p = &component[0];
            pcg.direct_deps(p).any(|d| d == p)
        };
        if !is_clique {
            continue;
        }
        let preds: BTreeSet<String> = component.into_iter().collect();
        let mut recursive_rules = Vec::new();
        let mut exit_rules = Vec::new();
        for rule in program.rules() {
            if !preds.contains(&rule.head.predicate) {
                continue;
            }
            if rule.body.iter().any(|a| preds.contains(&a.predicate)) {
                recursive_rules.push(rule.clone());
            } else {
                exit_rules.push(rule.clone());
            }
        }
        cliques.push(Clique {
            predicates: preds,
            recursive_rules,
            exit_rules,
        });
    }
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn figure1() -> Program {
        parse_program(
            "p(X, Y) :- p1(X, Z), q(Z, Y).\n\
             q(X, Y) :- p(X, Y), p2(X, Y).\n\
             p1(X, Y) :- b1(X, Y).\n\
             p1(X, Y) :- b1(X, Z), p1(Z, Y).\n\
             p2(X, Y) :- b2(X, Y).\n\
             p2(X, Y) :- b2(X, Z), p2(Z, Y).\n",
        )
        .unwrap()
    }

    #[test]
    fn figure1_has_three_cliques() {
        let cliques = find_cliques(&figure1());
        assert_eq!(cliques.len(), 3);
        let mut pred_sets: Vec<Vec<&str>> = cliques
            .iter()
            .map(|c| c.predicates.iter().map(String::as_str).collect())
            .collect();
        pred_sets.sort();
        assert_eq!(pred_sets, vec![vec!["p", "q"], vec!["p1"], vec!["p2"]]);
    }

    #[test]
    fn figure1_rule_partition() {
        let cliques = find_cliques(&figure1());
        let pq = cliques
            .iter()
            .find(|c| c.predicates.len() == 2)
            .expect("p/q clique");
        // Both p's rule and q's rule are recursive (each references the
        // other); there are no exit rules in the p/q clique.
        assert_eq!(pq.recursive_rules.len(), 2);
        assert!(pq.exit_rules.is_empty());

        let p1 = cliques
            .iter()
            .find(|c| c.predicates.contains("p1"))
            .expect("p1 clique");
        assert_eq!(p1.recursive_rules.len(), 1);
        assert_eq!(p1.exit_rules.len(), 1);
        assert!(p1.exit_rules[0].body[0].predicate == "b1");
    }

    #[test]
    fn ancestor_is_a_singleton_clique() {
        let p = parse_program(
            "ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n",
        )
        .unwrap();
        let cliques = find_cliques(&p);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].predicates.len(), 1);
        assert_eq!(cliques[0].exit_rules.len(), 1);
        assert_eq!(cliques[0].recursive_rules.len(), 1);
    }

    #[test]
    fn nonrecursive_program_has_no_cliques() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\n").unwrap();
        assert!(find_cliques(&p).is_empty());
    }

    #[test]
    fn scc_handles_long_chains_iteratively() {
        // A 2000-rule chain must not overflow the stack.
        let mut src = String::new();
        for i in 0..2000 {
            src.push_str(&format!("p{}(X) :- p{}(X).\n", i, i + 1));
        }
        let p = parse_program(&src).unwrap();
        let pcg = Pcg::build(&p);
        let comps = tarjan_scc(&pcg);
        assert_eq!(comps.len(), 2001);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(find_cliques(&p).is_empty());
    }

    #[test]
    fn scc_components_in_dependency_order() {
        let p = parse_program("a(X) :- b(X).\nb(X) :- c(X).\n").unwrap();
        let comps = tarjan_scc(&Pcg::build(&p));
        let pos = |name: &str| comps.iter().position(|c| c[0] == name).unwrap();
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn all_rules_yields_exit_first() {
        let p = parse_program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- t(X, Z), e(Z, Y).\n",
        )
        .unwrap();
        let cliques = find_cliques(&p);
        let rules: Vec<_> = cliques[0].all_rules().collect();
        assert_eq!(rules.len(), 2);
        assert!(rules[0].body.len() == 1, "exit rule first");
    }
}
