//! Adornments and sideways information passing (SIP).
//!
//! The generalized magic sets strategy of Beeri & Ramakrishnan first
//! *adorns* the rules relevant to a query: each derived predicate
//! occurrence is annotated with a binding pattern (`b`ound / `f`ree per
//! argument) describing which arguments will carry bindings at evaluation
//! time. Bindings propagate left-to-right through rule bodies (the
//! textbook full-SIP), starting from the constants in the query.
//!
//! Adorned predicates are materialized as renamed predicates
//! (`p__bf`), which keeps the downstream pipeline — magic rule
//! generation, code generation, LFP evaluation — uniform.

use crate::atom::Atom;
use crate::clause::{Clause, Program};
use crate::term::Term;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A binding pattern: `true` = bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![false; arity])
    }

    /// Adornment of `atom` given the currently bound variables: constants
    /// and bound variables are `b`, everything else `f`.
    pub fn of_atom(atom: &Atom, bound_vars: &BTreeSet<&str>) -> Adornment {
        Adornment(
            atom.args
                .iter()
                .map(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound_vars.contains(v.as_str()),
                })
                .collect(),
        )
    }

    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }

    /// Indexes of the bound positions.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.then_some(i))
            .collect()
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{}", if *b { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

/// Name of the adorned version of `pred` under `adornment`.
pub fn adorned_name(pred: &str, adornment: &Adornment) -> String {
    format!("{pred}__{adornment}")
}

/// Result of adorning a program for one query.
#[derive(Debug, Clone)]
pub struct AdornResult {
    /// Adorned rules: derived predicates renamed to their adorned versions.
    pub rules: Vec<Clause>,
    /// The query clause with adorned body predicates.
    pub query: Clause,
    /// Adorned name → (original predicate, adornment).
    pub origin: BTreeMap<String, (String, Adornment)>,
}

/// Adorn `program`'s rules for `query`. `derived` says which predicates
/// are derived (and hence get adorned); all other predicates are base and
/// keep their names. Only rules reachable from the query under the chosen
/// SIP are emitted.
pub fn adorn_program(program: &Program, query: &Clause, derived: &BTreeSet<String>) -> AdornResult {
    let mut origin: BTreeMap<String, (String, Adornment)> = BTreeMap::new();
    let mut worklist: VecDeque<(String, Adornment)> = VecDeque::new();
    let mut seen: BTreeSet<(String, Adornment)> = BTreeSet::new();

    // Adorn the query body left-to-right. The query's head variables are
    // free; constants in query atoms provide the initial bindings.
    let mut bound_vars: BTreeSet<&str> = BTreeSet::new();
    let mut query_body = Vec::with_capacity(query.body.len());
    for atom in &query.body {
        let new_atom = adorn_occurrence(
            atom,
            &bound_vars,
            derived,
            &mut origin,
            &mut worklist,
            &mut seen,
        );
        query_body.push(new_atom);
        for v in atom.variables() {
            bound_vars.insert(v);
        }
    }
    let adorned_query = Clause {
        head: query.head.clone(),
        body: query_body,
        negative_body: query.negative_body.clone(),
    };

    // Process (predicate, adornment) pairs.
    let mut rules = Vec::new();
    while let Some((pred, adornment)) = worklist.pop_front() {
        for rule in program.rules_for(&pred) {
            // Head variables at bound positions are bound at entry.
            let mut bound_vars: BTreeSet<&str> = BTreeSet::new();
            for (i, term) in rule.head.args.iter().enumerate() {
                if adornment.0.get(i).copied().unwrap_or(false) {
                    if let Term::Var(v) = term {
                        bound_vars.insert(v);
                    }
                }
            }
            let mut body = Vec::with_capacity(rule.body.len());
            for atom in &rule.body {
                let new_atom = adorn_occurrence(
                    atom,
                    &bound_vars,
                    derived,
                    &mut origin,
                    &mut worklist,
                    &mut seen,
                );
                body.push(new_atom);
                for v in atom.variables() {
                    bound_vars.insert(v);
                }
            }
            let head = rule.head.with_predicate(adorned_name(&pred, &adornment));
            // Negated atoms refer to lower strata and are never adorned.
            rules.push(Clause {
                head,
                body,
                negative_body: rule.negative_body.clone(),
            });
        }
    }

    AdornResult {
        rules,
        query: adorned_query,
        origin,
    }
}

/// Adorn one body-atom occurrence, scheduling the (pred, adornment) pair
/// for rule generation if it is new.
fn adorn_occurrence(
    atom: &Atom,
    bound_vars: &BTreeSet<&str>,
    derived: &BTreeSet<String>,
    origin: &mut BTreeMap<String, (String, Adornment)>,
    worklist: &mut VecDeque<(String, Adornment)>,
    seen: &mut BTreeSet<(String, Adornment)>,
) -> Atom {
    if !derived.contains(&atom.predicate) {
        return atom.clone();
    }
    let adornment = Adornment::of_atom(atom, bound_vars);
    let name = adorned_name(&atom.predicate, &adornment);
    origin
        .entry(name.clone())
        .or_insert_with(|| (atom.predicate.clone(), adornment.clone()));
    if seen.insert((atom.predicate.clone(), adornment.clone())) {
        worklist.push_back((atom.predicate.clone(), adornment));
    }
    atom.with_predicate(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};

    fn derived(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn adornment_display_and_counts() {
        let a = Adornment(vec![true, false, true]);
        assert_eq!(a.to_string(), "bfb");
        assert_eq!(a.bound_count(), 2);
        assert_eq!(a.bound_positions(), vec![0, 2]);
        assert!(!a.is_all_free());
        assert!(Adornment::all_free(2).is_all_free());
    }

    #[test]
    fn ancestor_bf_adornment() {
        let p = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let q = parse_query("?- anc(adam, W).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["anc"]));

        // Query references anc__bf.
        assert_eq!(result.query.body[0].predicate, "anc__bf");
        // Two adorned rules, both for anc__bf (SIP keeps Z bound in the
        // recursive call because parent(X, Z) precedes it).
        assert_eq!(result.rules.len(), 2);
        assert!(result.rules.iter().all(|r| r.head.predicate == "anc__bf"));
        let recursive = result
            .rules
            .iter()
            .find(|r| r.body.len() == 2)
            .expect("recursive rule");
        assert_eq!(recursive.body[0].predicate, "parent");
        assert_eq!(recursive.body[1].predicate, "anc__bf");
        // Origin map records the original name and pattern.
        let (orig, adn) = &result.origin["anc__bf"];
        assert_eq!(orig, "anc");
        assert_eq!(adn.to_string(), "bf");
    }

    #[test]
    fn all_free_query_generates_ff() {
        let p = parse_program("anc(X, Y) :- parent(X, Y).\n").unwrap();
        let q = parse_query("?- anc(A, B).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["anc"]));
        assert_eq!(result.query.body[0].predicate, "anc__ff");
        assert!(result.origin["anc__ff"].1.is_all_free());
    }

    #[test]
    fn sip_binds_later_atoms_in_query_body() {
        // ?- p(a, X), q(X, Y): q sees X bound by p.
        let p = parse_program(
            "p(X, Y) :- b1(X, Y).\n\
             q(X, Y) :- b2(X, Y).\n",
        )
        .unwrap();
        let q = parse_query("?- p(a, X), q(X, Y).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["p", "q"]));
        assert_eq!(result.query.body[0].predicate, "p__bf");
        assert_eq!(result.query.body[1].predicate, "q__bf");
    }

    #[test]
    fn multiple_adornments_of_same_predicate() {
        // p appears with bf (from the query) and ff (from r's body where
        // nothing is bound).
        let p = parse_program(
            "p(X, Y) :- b1(X, Y).\n\
             r(X, Y) :- p(V, W), b2(X, Y).\n",
        )
        .unwrap();
        let q = parse_query("?- p(a, X), r(X, Y).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["p", "r"]));
        let heads: BTreeSet<&str> = result
            .rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .collect();
        assert!(heads.contains("p__bf"));
        assert!(heads.contains("p__ff"));
        assert!(heads.contains("r__bf"));
    }

    #[test]
    fn base_predicates_not_adorned() {
        let p = parse_program("p(X) :- base(X).\n").unwrap();
        let q = parse_query("?- p(a).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["p"]));
        assert_eq!(result.rules[0].body[0].predicate, "base");
    }

    #[test]
    fn unreachable_rules_are_dropped() {
        let p = parse_program(
            "p(X) :- b(X).\n\
             orphan(X) :- b(X).\n",
        )
        .unwrap();
        let q = parse_query("?- p(a).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["p", "orphan"]));
        assert_eq!(result.rules.len(), 1);
        assert_eq!(result.rules[0].head.predicate, "p__b");
    }

    #[test]
    fn head_constant_counts_as_bound_downstream() {
        // Rule head has a constant at a bound position: no variable to
        // bind, but adornment processing must not panic.
        let p = parse_program("p(a, Y) :- b(Y).\n").unwrap();
        let q = parse_query("?- p(a, W).").unwrap();
        let result = adorn_program(&p, &q, &derived(&["p"]));
        assert_eq!(result.rules.len(), 1);
        assert_eq!(result.rules[0].head.predicate, "p__bf");
    }
}
