//! Parser for Horn clause programs and queries.
//!
//! Syntax (Prolog-like, matching the paper's examples):
//!
//! ```text
//! ancestor(X, Y) :- parent(X, Y).        % rule
//! ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
//! parent(adam, bob).                     % fact
//! ?- ancestor(adam, X).                  % query
//! ```
//!
//! Variables start with an uppercase letter or `_`; bare lowercase
//! identifiers and quoted strings are symbol constants; integers are
//! numeric constants. `%` starts a line comment. As the stratified-negation
//! extension, body atoms may be negated with `not`:
//! `bachelor(X) :- person(X), not married(X).`

use crate::atom::Atom;
use crate::clause::{Clause, Program};
use crate::term::Term;
use std::fmt;

/// Parse errors with a message and byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The synthetic head predicate given to parsed queries.
pub const QUERY_PREDICATE: &str = "_query";

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String), // lowercase-leading: predicate or symbol
    Var(String),   // uppercase/underscore-leading
    Int(i64),
    Str(String), // quoted symbol
    LParen,
    RParen,
    Comma,
    Dot,
    Implies,   // :-
    QueryMark, // ?-
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn next_token(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        loop {
            match self.src.get(self.pos) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'%') => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let start = self.pos;
        let Some(&c) = self.src.get(self.pos) else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b':' => {
                if self.src.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Tok::Implies
                } else {
                    return Err(self.err("expected ':-'"));
                }
            }
            b'?' => {
                if self.src.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Tok::QueryMark
                } else {
                    return Err(self.err("expected '?-'"));
                }
            }
            b'"' => {
                self.pos += 1;
                let s_start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string"));
                }
                let s = std::str::from_utf8(&self.src[s_start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?
                    .to_string();
                self.pos += 1;
                Tok::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let neg = c == b'-';
                if neg {
                    self.pos += 1;
                    if !self.src.get(self.pos).is_some_and(u8::is_ascii_digit) {
                        return Err(self.err("expected digits after '-'"));
                    }
                }
                let n_start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[n_start..self.pos]).unwrap();
                let n: i64 = text
                    .parse()
                    .map_err(|_| self.err(format!("integer out of range: {text}")))?;
                Tok::Int(if neg { -n } else { n })
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let w_start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let word = std::str::from_utf8(&self.src[w_start..self.pos])
                    .unwrap()
                    .to_string();
                if c.is_ascii_uppercase() || c == b'_' {
                    Tok::Var(word)
                } else {
                    Tok::Ident(word)
                }
            }
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        };
        Ok(Some((tok, start)))
    }
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(usize::MAX)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(s)) => s,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected predicate name"));
            }
        };
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                args.push(self.term()?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return Err(self.err("expected ',' or ')'"));
                    }
                }
            }
        }
        Ok(Atom::new(name, args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(Term::var(v)),
            Some(Tok::Ident(s)) => Ok(Term::sym(s)),
            Some(Tok::Str(s)) => Ok(Term::sym(s)),
            Some(Tok::Int(i)) => Ok(Term::int(i)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected a term"))
            }
        }
    }

    /// Whether the next tokens start a negated atom: the keyword `not`
    /// followed by a predicate name (so a predicate named `not` used as
    /// `not(X)` still parses as an atom).
    fn at_negation(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w == "not")
            && matches!(self.tokens.get(self.pos + 1), Some((Tok::Ident(_), _)))
    }

    /// Parse a body: positive and negated atoms, in source order.
    fn body(&mut self) -> Result<(Vec<Atom>, Vec<Atom>), ParseError> {
        let mut positive = Vec::new();
        let mut negative = Vec::new();
        loop {
            if self.at_negation() {
                self.pos += 1;
                negative.push(self.atom()?);
            } else {
                positive.push(self.atom()?);
            }
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok((positive, negative))
    }

    /// One clause or query, consuming the trailing dot.
    fn clause(&mut self) -> Result<Clause, ParseError> {
        if self.peek() == Some(&Tok::QueryMark) {
            self.pos += 1;
            let (body, negative) = self.body()?;
            self.expect(&Tok::Dot, "'.' after query")?;
            return Ok(make_query_clause_with_negation(body, negative));
        }
        let head = self.atom()?;
        let (body, negative_body) = if self.peek() == Some(&Tok::Implies) {
            self.pos += 1;
            self.body()?
        } else {
            (Vec::new(), Vec::new())
        };
        self.expect(&Tok::Dot, "'.' after clause")?;
        Ok(Clause {
            head,
            body,
            negative_body,
        })
    }
}

/// Build the synthetic query clause `_query(V1, ..., Vn) :- body` where the
/// Vi are the distinct variables of the body in first-occurrence order.
pub fn make_query_clause(body: Vec<Atom>) -> Clause {
    make_query_clause_with_negation(body, Vec::new())
}

/// [`make_query_clause`] with negated query atoms. Only variables of the
/// positive atoms become answer variables (safe negation).
pub fn make_query_clause_with_negation(body: Vec<Atom>, negative_body: Vec<Atom>) -> Clause {
    let mut seen = std::collections::BTreeSet::new();
    let mut vars = Vec::new();
    for atom in &body {
        for v in atom.variables() {
            if seen.insert(v.to_string()) {
                vars.push(Term::var(v));
            }
        }
    }
    Clause {
        head: Atom::new(QUERY_PREDICATE, vars),
        body,
        negative_body,
    }
}

/// Parse a whole program (clauses and/or queries).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer {
        src: src.as_bytes(),
        pos: 0,
    }
    .tokens()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut clauses = Vec::new();
    while p.peek().is_some() {
        clauses.push(p.clause()?);
    }
    Ok(Program::new(clauses))
}

/// Parse a single clause (rule or fact).
pub fn parse_clause(src: &str) -> Result<Clause, ParseError> {
    let tokens = Lexer {
        src: src.as_bytes(),
        pos: 0,
    }
    .tokens()?;
    let mut p = Parser { tokens, pos: 0 };
    let c = p.clause()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after clause"));
    }
    Ok(c)
}

/// Parse a query: either `?- body.` or a bare body `p(X), q(X).`.
pub fn parse_query(src: &str) -> Result<Clause, ParseError> {
    let tokens = Lexer {
        src: src.as_bytes(),
        pos: 0,
    }
    .tokens()?;
    let mut p = Parser { tokens, pos: 0 };
    if p.peek() == Some(&Tok::QueryMark) {
        p.pos += 1;
    }
    let (body, negative) = p.body()?;
    // The trailing dot is optional for queries.
    if p.peek() == Some(&Tok::Dot) {
        p.pos += 1;
    }
    if p.peek().is_some() {
        return Err(p.err("trailing input after query"));
    }
    Ok(make_query_clause_with_negation(body, negative))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Const;

    #[test]
    fn parses_rule_fact_query_program() {
        let p = parse_program(
            "% the classic\n\
             ancestor(X, Y) :- parent(X, Y).\n\
             ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n\
             parent(adam, bob).\n\
             ?- ancestor(adam, W).\n",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert!(p.clauses[2].is_fact());
        assert_eq!(p.clauses[3].head.predicate, QUERY_PREDICATE);
        assert_eq!(p.clauses[3].head.args, vec![Term::var("W")]);
    }

    #[test]
    fn roundtrips_through_display() {
        let src = "p(X, Y) :- q(X, Z), r(Z, Y).";
        let c = parse_clause(src).unwrap();
        assert_eq!(c.to_string(), src);
        let again = parse_clause(&c.to_string()).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn parses_all_term_kinds() {
        let c = parse_clause("p(X, john, \"Mrs. Smith\", 42, -7).").unwrap();
        assert_eq!(
            c.head.args,
            vec![
                Term::var("X"),
                Term::sym("john"),
                Term::sym("Mrs. Smith"),
                Term::int(42),
                Term::int(-7),
            ]
        );
    }

    #[test]
    fn underscore_leading_is_variable() {
        let c = parse_clause("p(_x, Y) :- q(_x, Y).").unwrap();
        assert_eq!(c.head.args[0], Term::var("_x"));
    }

    #[test]
    fn nullary_predicates() {
        let c = parse_clause("halt :- condition.").unwrap();
        assert_eq!(c.head.arity(), 0);
        assert_eq!(c.body[0].arity(), 0);
    }

    #[test]
    fn query_variable_order_is_first_occurrence() {
        let q = parse_query("?- p(Y, X), q(X, Z).").unwrap();
        assert_eq!(
            q.head.args,
            vec![Term::var("Y"), Term::var("X"), Term::var("Z")]
        );
    }

    #[test]
    fn bare_query_without_mark_or_dot() {
        let q = parse_query("ancestor(adam, X)").unwrap();
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.head.args, vec![Term::var("X")]);
    }

    #[test]
    fn ground_query_has_empty_head() {
        let q = parse_query("?- ancestor(adam, bob).").unwrap();
        assert!(q.head.args.is_empty());
        assert_eq!(
            q.body[0].constants(),
            vec![&Const::Str("adam".into()), &Const::Str("bob".into())]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse_clause("p(X) :- q(X)").unwrap_err(); // missing dot
        assert!(err.message.contains("'.'"));
        assert!(parse_clause("p(X) :-").is_err());
        assert!(parse_clause("p(X").is_err());
        assert!(parse_clause("p(X,) .").is_err());
        assert!(parse_clause(": q(X).").is_err());
        assert!(parse_program("p(x). trailing ?").is_err());
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let p = parse_program("  % nothing\n\n p(a). % trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn paper_figure_1_rule_set_parses() {
        // The sample D/KB of Figure 1 (cleaned of OCR noise): p and q are
        // mutually recursive, p1/p2 recursive, b1/b2 base.
        let p = parse_program(
            "p(X, Y) :- p1(X, Z), q(Z, Y).\n\
             q(X, Y) :- p(X, Y), p2(X, Y).\n\
             p1(X, Y) :- b1(X, Y).\n\
             p1(X, Y) :- b1(X, Z), p1(Z, Y).\n\
             p2(X, Y) :- b2(X, Y).\n\
             p2(X, Y) :- b2(X, Z), p2(Z, Y).\n",
        )
        .unwrap();
        assert_eq!(p.rules().count(), 6);
        let derived: Vec<_> = p.derived_predicates().into_iter().collect();
        assert_eq!(derived, vec!["p", "p1", "p2", "q"]);
    }
}
