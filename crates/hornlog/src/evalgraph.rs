//! The evaluation graph and evaluation order list.
//!
//! Collapsing each clique of the PCG to a single node yields an acyclic
//! graph over cliques and non-recursive derived predicates. A topological
//! sort of this graph is the *evaluation order list*: the order in which
//! the generated program evaluates cliques (by LFP computation) and
//! non-recursive predicates (by plain relational algebra).

use crate::clause::{Clause, Program};
use crate::scc::{find_cliques, Clique};
use std::collections::{BTreeMap, BTreeSet};

/// A node of the evaluation graph, carrying the rules the code generator
/// needs (mirroring the paper's generated data structures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalNode {
    /// A clique of mutually recursive predicates, evaluated by LFP.
    Clique(Clique),
    /// A non-recursive derived predicate with its defining rules.
    Pred { name: String, rules: Vec<Clause> },
}

impl EvalNode {
    /// The predicates this node defines.
    pub fn defined_predicates(&self) -> Vec<&str> {
        match self {
            EvalNode::Clique(c) => c.predicates.iter().map(String::as_str).collect(),
            EvalNode::Pred { name, .. } => vec![name.as_str()],
        }
    }

    /// All rules attached to this node.
    pub fn rules(&self) -> Vec<&Clause> {
        match self {
            EvalNode::Clique(c) => c.all_rules().collect(),
            EvalNode::Pred { rules, .. } => rules.iter().collect(),
        }
    }

    pub fn is_clique(&self) -> bool {
        matches!(self, EvalNode::Clique(_))
    }
}

/// Errors from evaluation-graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalGraphError {
    /// The condensed graph had a cycle — impossible for a correct SCC
    /// collapse; indicates corrupted input.
    Cycle,
}

impl std::fmt::Display for EvalGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalGraphError::Cycle => write!(f, "evaluation graph contains a cycle"),
        }
    }
}

impl std::error::Error for EvalGraphError {}

/// Build the evaluation order list for `program`: every clique and
/// non-recursive derived predicate, topologically sorted so each node
/// appears after everything it depends on. The order is deterministic
/// (ties broken by first-defined predicate name).
pub fn evaluation_order(program: &Program) -> Result<Vec<EvalNode>, EvalGraphError> {
    let cliques = find_cliques(program);
    let clique_preds: BTreeSet<String> = cliques
        .iter()
        .flat_map(|c| c.predicates.iter().cloned())
        .collect();

    // Nodes: cliques first, then non-recursive derived predicates.
    let mut nodes: Vec<EvalNode> = cliques.into_iter().map(EvalNode::Clique).collect();
    let derived = program.derived_predicates();
    for pred in &derived {
        if !clique_preds.contains(*pred) {
            nodes.push(EvalNode::Pred {
                name: pred.to_string(),
                rules: program.rules_for(pred).into_iter().cloned().collect(),
            });
        }
    }

    // Map each derived predicate to its node.
    let mut node_of: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        for p in node.defined_predicates() {
            node_of.insert(p, i);
        }
    }

    // Edges: dependency → dependent, between distinct nodes.
    let n = nodes.len();
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, node) in nodes.iter().enumerate() {
        for rule in node.rules() {
            for atom in rule.all_body_atoms() {
                if let Some(&dep) = node_of.get(atom.predicate.as_str()) {
                    if dep != i && succs[dep].insert(i) {
                        indegree[i] += 1;
                    }
                }
            }
        }
    }

    // Kahn's algorithm with deterministic tie-breaking by node index
    // (nodes are ordered clique-discovery then predicate name).
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &succs[i] {
            indegree[j] -= 1;
            if indegree[j] == 0 {
                ready.insert(j);
            }
        }
    }
    if order.len() != n {
        return Err(EvalGraphError::Cycle);
    }

    // Emit nodes in topological order.
    let mut slots: Vec<Option<EvalNode>> = nodes.into_iter().map(Some).collect();
    Ok(order
        .into_iter()
        .map(|i| slots[i].take().expect("each node emitted once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query, QUERY_PREDICATE};

    fn figure1_with_query() -> Program {
        let mut p = parse_program(
            "p(X, Y) :- p1(X, Z), q(Z, Y).\n\
             q(X, Y) :- p(X, Y), p2(X, Y).\n\
             p1(X, Y) :- b1(X, Y).\n\
             p1(X, Y) :- b1(X, Z), p1(Z, Y).\n\
             p2(X, Y) :- b2(X, Y).\n\
             p2(X, Y) :- b2(X, Z), p2(Z, Y).\n",
        )
        .unwrap();
        p.push(parse_query("?- p(a, Y).").unwrap());
        p
    }

    fn position_of(order: &[EvalNode], pred: &str) -> usize {
        order
            .iter()
            .position(|n| n.defined_predicates().contains(&pred))
            .unwrap_or_else(|| panic!("{pred} not in order"))
    }

    #[test]
    fn figure4_evaluation_order() {
        let order = evaluation_order(&figure1_with_query()).unwrap();
        // Nodes: 3 cliques + the query predicate.
        assert_eq!(order.len(), 4);
        // p1 and p2 cliques precede the p/q clique; query last.
        let c_pq = position_of(&order, "p");
        assert!(position_of(&order, "p1") < c_pq);
        assert!(position_of(&order, "p2") < c_pq);
        assert_eq!(position_of(&order, QUERY_PREDICATE), 3);
    }

    #[test]
    fn nonrecursive_pipeline_orders_by_dependency() {
        let p = parse_program(
            "a(X) :- b(X).\n\
             b(X) :- c(X).\n\
             c(X) :- base(X).\n",
        )
        .unwrap();
        let order = evaluation_order(&p).unwrap();
        assert_eq!(order.len(), 3);
        assert!(order.iter().all(|n| !n.is_clique()));
        assert!(position_of(&order, "c") < position_of(&order, "b"));
        assert!(position_of(&order, "b") < position_of(&order, "a"));
    }

    #[test]
    fn mixed_cliques_and_predicates() {
        let p = parse_program(
            "top(X) :- t(X, X).\n\
             t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- t(X, Z), e(Z, Y).\n",
        )
        .unwrap();
        let order = evaluation_order(&p).unwrap();
        assert_eq!(order.len(), 2);
        assert!(order[0].is_clique());
        assert!(matches!(&order[1], EvalNode::Pred { name, .. } if name == "top"));
    }

    #[test]
    fn base_predicates_are_not_nodes() {
        let p = parse_program("a(X) :- base1(X), base2(X).\n").unwrap();
        let order = evaluation_order(&p).unwrap();
        assert_eq!(order.len(), 1);
    }

    #[test]
    fn node_accessors() {
        let p = parse_program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- t(X, Z), e(Z, Y).\n",
        )
        .unwrap();
        let order = evaluation_order(&p).unwrap();
        let node = &order[0];
        assert_eq!(node.defined_predicates(), vec!["t"]);
        assert_eq!(node.rules().len(), 2);
    }

    #[test]
    fn empty_program_is_empty_order() {
        let order = evaluation_order(&Program::default()).unwrap();
        assert!(order.is_empty());
    }
}
