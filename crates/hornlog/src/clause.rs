//! Horn clauses and programs.

use crate::atom::Atom;
use std::collections::BTreeSet;
use std::fmt;

/// A Horn clause `head :- body`. A clause with an empty body and a ground
/// head is a *fact*; anything else is a *rule*.
///
/// As the stratified-negation extension (the paper lists negation as
/// future work), a clause may also carry *negated* body atoms
/// (`head :- p(X), not q(X).`); `body` always holds the positive atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    pub head: Atom,
    /// Positive body atoms.
    pub body: Vec<Atom>,
    /// Negated body atoms (`not q(...)`), empty for pure Horn clauses.
    pub negative_body: Vec<Atom>,
}

impl Clause {
    pub fn rule(head: Atom, body: Vec<Atom>) -> Clause {
        Clause {
            head,
            body,
            negative_body: Vec::new(),
        }
    }

    pub fn rule_with_negation(head: Atom, body: Vec<Atom>, negative_body: Vec<Atom>) -> Clause {
        Clause {
            head,
            body,
            negative_body,
        }
    }

    pub fn fact(head: Atom) -> Clause {
        Clause {
            head,
            body: Vec::new(),
            negative_body: Vec::new(),
        }
    }

    /// A fact per the paper: empty body, no variables in the head.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.negative_body.is_empty() && self.head.is_ground()
    }

    /// Whether the clause uses negation.
    pub fn has_negation(&self) -> bool {
        !self.negative_body.is_empty()
    }

    /// Distinct variables of the whole clause in first-occurrence order
    /// (head first, then positive body, then negated atoms).
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in std::iter::once(&self.head)
            .chain(&self.body)
            .chain(&self.negative_body)
        {
            for v in atom.variables() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Range restriction (the paper's safety condition for bottom-up
    /// evaluation): every variable in the head — and, for safe negation,
    /// every variable in a negated atom — must occur in the positive body.
    /// Facts are trivially safe since their heads are ground.
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: BTreeSet<&str> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().iter().all(|v| body_vars.contains(v))
            && self
                .negative_body
                .iter()
                .flat_map(|a| a.variables())
                .all(|v| body_vars.contains(v))
    }

    /// Predicates referenced in the positive body, deduplicated, in order.
    pub fn body_predicates(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.body {
            if seen.insert(atom.predicate.as_str()) {
                out.push(atom.predicate.as_str());
            }
        }
        out
    }

    /// All body atoms, positive first, then negated.
    pub fn all_body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().chain(&self.negative_body)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.negative_body.is_empty() {
            write!(f, " :- ")?;
            let mut first = true;
            for a in &self.body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{a}")?;
            }
            for a in &self.negative_body {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "not {a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A set of Horn clauses: the unit the Workspace D/KB holds and the
/// Knowledge Manager analyzes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    pub clauses: Vec<Clause>,
}

impl Program {
    pub fn new(clauses: Vec<Clause>) -> Program {
        Program { clauses }
    }

    /// Rules only (clauses that are not facts).
    pub fn rules(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter().filter(|c| !c.is_fact())
    }

    /// Facts only.
    pub fn facts(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter().filter(|c| c.is_fact())
    }

    /// All rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: &str) -> Vec<&Clause> {
        self.rules().filter(|c| c.head.predicate == pred).collect()
    }

    /// Predicates defined by at least one rule (derived predicates).
    pub fn derived_predicates(&self) -> BTreeSet<&str> {
        self.rules().map(|c| c.head.predicate.as_str()).collect()
    }

    /// Predicates that appear only in bodies or as fact heads (base
    /// predicates, relative to this program).
    pub fn base_predicates(&self) -> BTreeSet<&str> {
        let derived = self.derived_predicates();
        let mut base: BTreeSet<&str> = self
            .clauses
            .iter()
            .flat_map(|c| c.body.iter().map(|a| a.predicate.as_str()))
            .collect();
        base.extend(self.facts().map(|c| c.head.predicate.as_str()));
        base.retain(|p| !derived.contains(p));
        base
    }

    /// Arity of `pred` as used anywhere in the program, if consistent.
    /// Returns `Err` with the conflicting arities when inconsistent.
    pub fn arity_of(&self, pred: &str) -> Result<Option<usize>, (usize, usize)> {
        let mut arity = None;
        for atom in self
            .clauses
            .iter()
            .flat_map(|c| std::iter::once(&c.head).chain(&c.body))
            .filter(|a| a.predicate == pred)
        {
            match arity {
                None => arity = Some(atom.arity()),
                Some(a) if a != atom.arity() => return Err((a, atom.arity())),
                Some(_) => {}
            }
        }
        Ok(arity)
    }

    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    pub fn push(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    pub fn extend(&mut self, other: Program) {
        self.clauses.extend(other.clauses);
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn anc_program() -> Program {
        // ancestor(X,Y) :- parent(X,Y).
        // ancestor(X,Y) :- parent(X,Z), ancestor(Z,Y).
        // parent(adam, bob).
        Program::new(vec![
            Clause::rule(
                Atom::new("ancestor", vec![Term::var("X"), Term::var("Y")]),
                vec![Atom::new("parent", vec![Term::var("X"), Term::var("Y")])],
            ),
            Clause::rule(
                Atom::new("ancestor", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Atom::new("parent", vec![Term::var("X"), Term::var("Z")]),
                    Atom::new("ancestor", vec![Term::var("Z"), Term::var("Y")]),
                ],
            ),
            Clause::fact(Atom::new(
                "parent",
                vec![Term::sym("adam"), Term::sym("bob")],
            )),
        ])
    }

    #[test]
    fn fact_vs_rule() {
        let p = anc_program();
        assert_eq!(p.rules().count(), 2);
        assert_eq!(p.facts().count(), 1);
        // A bodyless clause with head variables is NOT a fact.
        let c = Clause::fact(Atom::new("p", vec![Term::var("X")]));
        assert!(!c.is_fact());
    }

    #[test]
    fn base_and_derived_partition() {
        let p = anc_program();
        assert_eq!(
            p.derived_predicates().into_iter().collect::<Vec<_>>(),
            vec!["ancestor"]
        );
        assert_eq!(
            p.base_predicates().into_iter().collect::<Vec<_>>(),
            vec!["parent"]
        );
    }

    #[test]
    fn range_restriction() {
        let safe = &anc_program().clauses[0];
        assert!(safe.is_range_restricted());
        let unsafe_clause = Clause::rule(
            Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            vec![Atom::new("q", vec![Term::var("X")])],
        );
        assert!(!unsafe_clause.is_range_restricted());
    }

    #[test]
    fn clause_variables_in_order() {
        let c = &anc_program().clauses[1];
        assert_eq!(c.variables(), vec!["X", "Y", "Z"]);
    }

    #[test]
    fn arity_checking() {
        let p = anc_program();
        assert_eq!(p.arity_of("ancestor"), Ok(Some(2)));
        assert_eq!(p.arity_of("nope"), Ok(None));
        let mut bad = anc_program();
        bad.push(Clause::fact(Atom::new("parent", vec![Term::sym("x")])));
        assert_eq!(bad.arity_of("parent"), Err((2, 1)));
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = anc_program();
        let text = p.to_string();
        assert!(text.contains("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y)."));
        assert!(text.contains("parent(adam, bob)."));
    }

    #[test]
    fn rules_for_selects_by_head() {
        let p = anc_program();
        assert_eq!(p.rules_for("ancestor").len(), 2);
        assert!(p.rules_for("parent").is_empty());
    }
}
