//! Stratification for negation.
//!
//! A program with negated body atoms is evaluable bottom-up iff it is
//! *stratified*: the predicates can be assigned strata such that a rule's
//! positive dependencies live in the same stratum or below, and its
//! negated dependencies live strictly below. Equivalently, no cycle of the
//! PCG passes through a negative edge.
//!
//! This module computes the stratum assignment by fixpoint (the standard
//! algorithm) and reports the offending predicate pair when the program is
//! not stratifiable.

use crate::clause::Program;
use std::collections::BTreeMap;
use std::fmt;

/// Failure: `head` negates `negated`, but they are mutually recursive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratificationError {
    pub head: String,
    pub negated: String,
}

impl fmt::Display for StratificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program is not stratified: {} negates {} inside a recursive cycle",
            self.head, self.negated
        )
    }
}

impl std::error::Error for StratificationError {}

/// Compute the stratum of every predicate (base predicates sit in
/// stratum 0). Errors if the program is not stratifiable.
pub fn stratify(program: &Program) -> Result<BTreeMap<String, usize>, StratificationError> {
    let mut stratum: BTreeMap<String, usize> = BTreeMap::new();
    for clause in &program.clauses {
        stratum.entry(clause.head.predicate.clone()).or_insert(0);
        for atom in clause.all_body_atoms() {
            stratum.entry(atom.predicate.clone()).or_insert(0);
        }
    }

    // Fixpoint: raise strata until stable. Any stratum exceeding the
    // number of predicates proves a cycle through negation.
    let limit = stratum.len() + 1;
    loop {
        let mut changed = false;
        for rule in program.rules() {
            let head = rule.head.predicate.clone();
            for atom in &rule.body {
                let need = stratum[&atom.predicate];
                if stratum[&head] < need {
                    stratum.insert(head.clone(), need);
                    changed = true;
                }
            }
            for atom in &rule.negative_body {
                let need = stratum[&atom.predicate] + 1;
                if stratum[&head] < need {
                    if need > limit {
                        return Err(StratificationError {
                            head: head.clone(),
                            negated: atom.predicate.clone(),
                        });
                    }
                    stratum.insert(head.clone(), need);
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(stratum);
        }
    }
}

/// Convenience: just check stratifiability.
pub fn is_stratified(program: &Program) -> bool {
    stratify(program).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn pure_horn_programs_sit_in_stratum_zero_and_up() {
        let p = parse_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata["parent"], 0);
        assert_eq!(strata["anc"], 0);
    }

    #[test]
    fn negation_forces_a_higher_stratum() {
        let p = parse_program(
            "reach(X, Y) :- edge(X, Y).\n\
             reach(X, Y) :- edge(X, Z), reach(Z, Y).\n\
             unreach(X, Y) :- node(X), node(Y), not reach(X, Y).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata["reach"], 0);
        assert_eq!(strata["unreach"], 1);
        assert!(is_stratified(&p));
    }

    #[test]
    fn stacked_negation_stacks_strata() {
        let p = parse_program(
            "a(X) :- base(X).\n\
             b(X) :- base(X), not a(X).\n\
             c(X) :- base(X), not b(X).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata["a"], 0);
        assert_eq!(strata["b"], 1);
        assert_eq!(strata["c"], 2);
    }

    #[test]
    fn negation_through_recursion_is_rejected() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).\n").unwrap();
        let err = stratify(&p).unwrap_err();
        assert_eq!(err.head, "win");
        assert_eq!(err.negated, "win");
        assert!(!is_stratified(&p));
    }

    #[test]
    fn mutual_negation_cycle_is_rejected() {
        let p = parse_program(
            "a(X) :- base(X), not b(X).\n\
             b(X) :- base(X), not a(X).\n",
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn positive_recursion_within_a_stratum_is_fine() {
        let p = parse_program(
            "odd(X) :- succ(Y, X), even(Y).\n\
             even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             noteven(X) :- num(X), not even(X).\n",
        )
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata["even"], strata["odd"]);
        assert_eq!(strata["noteven"], strata["even"] + 1);
    }
}
